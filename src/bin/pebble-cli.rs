//! `pebble-cli` — interactive front-end for the Pebble reproduction (the
//! paper names a user-friendly provenance front-end as future work).
//!
//! ```text
//! pebble-cli generate twitter --n 1000 --seed 7 --out tweets.ndjson
//! pebble-cli generate dblp --n 2000 --out-dir data/
//! pebble-cli scenario T3 --size 2000
//! pebble-cli trace T3 --size 2000
//! pebble-cli trace T3 --size 2000 --query '//id_str = "u3"'
//! pebble-cli heatmap --size 2000
//! pebble-cli audit --size 2000
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use pebble::core::analysis::AuditReport;
use pebble::core::{backtrace, run_captured, Heatmap, TreePattern};
use pebble::dataflow::{Context, ExecConfig};
use pebble::nested::fmt::render_table;
use pebble::nested::json;
use pebble::workloads::{
    dblp, dblp_context, dblp_scenarios, twitter, twitter_context, twitter_scenarios, DblpConfig,
    Scenario, TwitterConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pebble-cli generate twitter [--n N] [--seed S] [--out FILE]
  pebble-cli generate dblp    [--n N] [--seed S] [--out-dir DIR]
  pebble-cli scenario NAME    [--size N]       run one of T1-T5 / D1-D5
  pebble-cli trace NAME       [--size N] [--query PATTERN]
  pebble-cli heatmap          [--size N]
  pebble-cli audit            [--size N]
  pebble-cli list                               list scenarios";

fn dispatch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("scenario") => scenario_cmd(&args[1..], false),
        Some("trace") => scenario_cmd(&args[1..], true),
        Some("heatmap") => heatmap_cmd(&args[1..]),
        Some("audit") => audit_cmd(&args[1..]),
        Some("list") => {
            for s in twitter_scenarios().iter().chain(dblp_scenarios().iter()) {
                println!("{:<4} {}", s.name, s.description);
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
        None => Ok(default),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("generate needs `twitter` or `dblp`")?;
    let n = flag_usize(args, "--n", 1000)?;
    let seed = flag_usize(args, "--seed", 42)? as u64;
    match kind.as_str() {
        "twitter" => {
            let items = twitter::generate(&TwitterConfig {
                seed,
                ..TwitterConfig::sized(n)
            });
            let out = flag(args, "--out").unwrap_or_else(|| "tweets.ndjson".into());
            let mut f = std::fs::File::create(&out).map_err(|e| e.to_string())?;
            for item in &items {
                writeln!(f, "{}", json::item_to_string(item)).map_err(|e| e.to_string())?;
            }
            println!("wrote {} tweets to {out}", items.len());
            Ok(())
        }
        "dblp" => {
            let data = dblp::generate(&DblpConfig {
                seed,
                ..DblpConfig::sized(n)
            });
            let dir = flag(args, "--out-dir").unwrap_or_else(|| ".".into());
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            for (name, items) in [
                ("articles", &data.articles),
                ("inproceedings", &data.inproceedings),
                ("proceedings", &data.proceedings),
                ("persons", &data.persons),
                ("other_records", &data.other),
            ] {
                let path = format!("{dir}/{name}.ndjson");
                let mut f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
                for item in items {
                    writeln!(f, "{}", json::item_to_string(item)).map_err(|e| e.to_string())?;
                }
                println!("wrote {} {name} to {path}", items.len());
            }
            Ok(())
        }
        other => Err(format!("unknown dataset `{other}`")),
    }
}

fn find_scenario(name: &str) -> Result<(Scenario, bool), String> {
    let upper = name.to_ascii_uppercase();
    if let Some(s) = twitter_scenarios().into_iter().find(|s| s.name == upper) {
        return Ok((s, true));
    }
    if let Some(s) = dblp_scenarios().into_iter().find(|s| s.name == upper) {
        return Ok((s, false));
    }
    Err(format!(
        "unknown scenario `{name}` (expected T1-T5 or D1-D5)"
    ))
}

fn scenario_context(is_twitter: bool, size: usize) -> Context {
    if is_twitter {
        twitter_context(size)
    } else {
        dblp_context(size)
    }
}

fn scenario_cmd(args: &[String], trace: bool) -> Result<(), String> {
    let name = args.first().ok_or("missing scenario name")?;
    let size = flag_usize(args, "--size", 1000)?;
    let (scenario, is_twitter) = find_scenario(name)?;
    let ctx = scenario_context(is_twitter, size);
    let run =
        run_captured(&scenario.program, &ctx, ExecConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "{}: {} — {} result items",
        scenario.name,
        scenario.description,
        run.output.rows.len()
    );
    let sample: Vec<_> = run.output.items().into_iter().take(5).collect();
    println!("{}", render_table(&sample));
    println!(
        "provenance: {} lineage bytes, {} structural bytes",
        run.lineage_bytes(),
        run.structural_bytes()
    );
    if !trace {
        return Ok(());
    }
    let query = match flag(args, "--query") {
        Some(text) => TreePattern::parse(&text).map_err(|e| e.to_string())?,
        None => scenario.query.clone(),
    };
    let matched = query.match_rows(&run.output.rows);
    println!("query matched {} result items", matched.entries.len());
    let sources = backtrace(&run, matched).map_err(|e| e.to_string())?;
    for source in &sources {
        println!(
            "\nsource `{}` (read #{}): {} traced items",
            source.source,
            source.read_op,
            source.entries.len()
        );
        for entry in source.entries.iter().take(3) {
            println!("  input position {}:", entry.index);
            for line in entry.tree.to_string().lines() {
                println!("    {line}");
            }
        }
        if source.entries.len() > 3 {
            println!("  … and {} more", source.entries.len() - 3);
        }
    }
    Ok(())
}

fn heatmap_cmd(args: &[String]) -> Result<(), String> {
    let size = flag_usize(args, "--size", 1000)?;
    let ctx = dblp_context(size);
    let mut heatmap = Heatmap::new();
    for s in dblp_scenarios() {
        let run =
            run_captured(&s.program, &ctx, ExecConfig::default()).map_err(|e| e.to_string())?;
        let b = s.query.match_rows(&run.output.rows);
        for source in backtrace(&run, b).map_err(|e| e.to_string())? {
            if source.source == "inproceedings" {
                heatmap.absorb(&source);
            }
        }
    }
    let attributes: Vec<String> = [
        "key",
        "type",
        "title",
        "year",
        "crossref",
        "authors",
        "pages",
        "booktitle",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", heatmap.render(25, &attributes));
    println!(
        "cold attributes: {:?}",
        heatmap.cold_attributes(&attributes)
    );
    Ok(())
}

fn audit_cmd(args: &[String]) -> Result<(), String> {
    let size = flag_usize(args, "--size", 1000)?;
    let ctx = dblp_context(size);
    let mut report = AuditReport::default();
    for s in dblp_scenarios() {
        let run =
            run_captured(&s.program, &ctx, ExecConfig::default()).map_err(|e| e.to_string())?;
        let b = s.query.match_rows(&run.output.rows);
        for source in backtrace(&run, b).map_err(|e| e.to_string())? {
            if source.source == "inproceedings" {
                report.merge(AuditReport::from_provenance(&source));
            }
        }
    }
    println!(
        "{} inproceedings records leaked at least one attribute",
        report.leaked.len()
    );
    for (idx, paths) in report.leaked.iter().take(10) {
        let mut attrs: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        attrs.sort();
        attrs.dedup();
        println!("  record #{idx}: {}", attrs.join(", "));
    }
    Ok(())
}
