//! # Pebble — structural provenance for nested data analytics
//!
//! Facade crate of the EDBT 2020 reproduction ("Tracing nested data with
//! structural provenance for big data analytics", Diestelkämper &
//! Herschel). Re-exports the workspace crates:
//!
//! * [`nested`] — the nested data model: values, types, access paths;
//! * [`dataflow`] — the partition-parallel dataflow engine (the Spark
//!   substitute) with plan optimization and NDJSON I/O;
//! * [`core`] — structural provenance: lightweight capture, tree-pattern
//!   queries (with a textual syntax), the backtracing algorithm,
//!   persistence, and the use-case analyses;
//! * [`obs`] — runtime telemetry: per-operator metrics, tracing spans,
//!   the structured run report, and the leveled diagnostics facade;
//! * [`baselines`] — the comparison systems: Titian-style lineage,
//!   PROVision-style lazy querying and how-provenance polynomials,
//!   Lipstick-style per-value annotations, and where-provenance;
//! * [`workloads`] — synthetic Twitter/DBLP generators, the paper's
//!   running example, and evaluation scenarios T1–T5 / D1–D5.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use pebble_baselines as baselines;
pub use pebble_core as core;
pub use pebble_dataflow as dataflow;
pub use pebble_nested as nested;
pub use pebble_obs as obs;
pub use pebble_workloads as workloads;
