//! Engine edge cases: empty inputs through every operator, null join
//! keys, schema widening across unions, deeply nested paths, large
//! fan-out flatten, and fusion boundaries (fused vs unfused execution
//! compared bit-for-bit, identifiers included).

use std::sync::Arc;

use pebble_dataflow::{
    context::items_of, run, run_unfused, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey,
    MapUdf, NamedExpr, NoSink, Program, ProgramBuilder, SelectExpr,
};
use pebble_nested::{DataItem, DataType, Path, Value};

fn cfg() -> ExecConfig {
    ExecConfig::with_partitions(3)
}

fn empty_ctx() -> Context {
    let mut c = Context::new();
    c.register_with_schema(
        "empty",
        vec![],
        DataType::item([
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("xs", DataType::bag(DataType::Int)),
        ]),
    );
    c
}

#[test]
fn every_operator_handles_empty_input() {
    let ctx = empty_ctx();
    // filter → select → flatten → group over an empty source.
    let mut b = ProgramBuilder::new();
    let r = b.read("empty");
    let f = b.filter(r, Expr::col("v").ge(Expr::lit(0i64)));
    let s = b.select(f, vec![NamedExpr::path("k"), NamedExpr::path("xs")]);
    let fl = b.flatten(s, "xs", "x");
    let g = b.group_aggregate(
        fl,
        vec![GroupKey::new("k")],
        vec![AggSpec::new(AggFunc::CollectList, "x", "vals")],
    );
    let out = run(&b.build(g), &ctx, cfg(), &NoSink).unwrap();
    assert!(out.rows.is_empty());

    // join and union of two empty inputs.
    let mut b = ProgramBuilder::new();
    let l = b.read("empty");
    let r = b.read("empty");
    let j = b.join(l, r, vec![(Path::attr("k"), Path::attr("k"))]);
    let out = run(&b.build(j), &ctx, cfg(), &NoSink).unwrap();
    assert!(out.rows.is_empty());

    let mut b = ProgramBuilder::new();
    let l = b.read("empty");
    let r = b.read("empty");
    let u = b.union(l, r);
    let out = run(&b.build(u), &ctx, cfg(), &NoSink).unwrap();
    assert!(out.rows.is_empty());
}

#[test]
fn null_join_keys_never_match() {
    let mut c = Context::new();
    c.register(
        "l",
        items_of(vec![
            vec![("k", Value::Int(1)), ("a", Value::str("x"))],
            vec![("k", Value::Null), ("a", Value::str("y"))],
        ]),
    );
    c.register(
        "r",
        items_of(vec![vec![("k", Value::Int(1))], vec![("k", Value::Null)]]),
    );
    let mut b = ProgramBuilder::new();
    let l = b.read("l");
    let r = b.read("r");
    let j = b.join(l, r, vec![(Path::attr("k"), Path::attr("k"))]);
    let out = run(&b.build(j), &c, cfg(), &NoSink).unwrap();
    // Only the 1 = 1 pair joins; Null never equals Null in a join.
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].item.get("a"), Some(&Value::str("x")));
}

#[test]
fn union_widens_int_to_double() {
    let mut c = Context::new();
    c.register("ints", items_of(vec![vec![("x", Value::Int(1))]]));
    c.register("dbls", items_of(vec![vec![("x", Value::Double(2.5))]]));
    let mut b = ProgramBuilder::new();
    let l = b.read("ints");
    let r = b.read("dbls");
    let u = b.union(l, r);
    let out = run(&b.build(u), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.schema().field("x"), Some(&DataType::Double));
}

#[test]
fn missing_flatten_column_produces_no_rows() {
    let mut c = Context::new();
    // Second item lacks the collection entirely (heterogeneous source →
    // wildcard schema).
    c.register(
        "t",
        vec![
            DataItem::from_fields([
                ("id", Value::Int(1)),
                ("xs", Value::Bag(vec![Value::Int(9)])),
            ]),
            DataItem::from_fields([("id", Value::Int(2))]),
        ],
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.flatten(r, "xs", "x");
    let out = run(&b.build(f), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].item.get("x"), Some(&Value::Int(9)));
}

#[test]
fn group_by_missing_key_groups_under_null() {
    let mut c = Context::new();
    c.register(
        "t",
        vec![
            DataItem::from_fields([("k", Value::Int(1)), ("v", Value::Int(10))]),
            DataItem::from_fields([("v", Value::Int(20))]),
            DataItem::from_fields([("v", Value::Int(30))]),
        ],
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let g = b.group_aggregate(
        r,
        vec![GroupKey::new("k")],
        vec![AggSpec::new(AggFunc::Sum, "v", "s")],
    );
    let out = run(&b.build(g), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 2);
    let null_group = out
        .rows
        .iter()
        .find(|r| r.item.get("k") == Some(&Value::Null))
        .expect("null group");
    assert_eq!(null_group.item.get("s"), Some(&Value::Int(50)));
}

#[test]
fn aggregates_over_all_null_inputs() {
    let mut c = Context::new();
    c.register(
        "t",
        vec![DataItem::from_fields([
            ("k", Value::Int(1)),
            ("v", Value::Null),
        ])],
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let g = b.group_aggregate(
        r,
        vec![GroupKey::new("k")],
        vec![
            AggSpec::new(AggFunc::Sum, "v", "s"),
            AggSpec::new(AggFunc::Min, "v", "mn"),
            AggSpec::new(AggFunc::Avg, "v", "av"),
            AggSpec::new(AggFunc::Count, "v", "nonnull"),
            AggSpec::new(AggFunc::Count, "", "all"),
            AggSpec::new(AggFunc::CollectSet, "v", "set"),
        ],
    );
    let out = run(&b.build(g), &c, cfg(), &NoSink).unwrap();
    let row = &out.rows[0].item;
    assert_eq!(row.get("s"), Some(&Value::Null));
    assert_eq!(row.get("mn"), Some(&Value::Null));
    assert_eq!(row.get("av"), Some(&Value::Null));
    assert_eq!(row.get("nonnull"), Some(&Value::Int(0)));
    assert_eq!(row.get("all"), Some(&Value::Int(1)));
    assert_eq!(row.get("set"), Some(&Value::Set(vec![])));
}

#[test]
fn deep_nested_paths_resolve_through_pipeline() {
    let deep = DataItem::from_fields([(
        "a",
        Value::Item(DataItem::from_fields([(
            "b",
            Value::Bag(vec![Value::Item(DataItem::from_fields([(
                "c",
                Value::Item(DataItem::from_fields([("d", Value::Int(42))])),
            )]))]),
        )])),
    )]);
    let mut c = Context::new();
    c.register("t", vec![deep]);
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let fl = b.flatten(r, "a.b", "elem");
    let s = b.select(fl, vec![NamedExpr::aliased("found", "elem.c.d")]);
    let f = b.filter(s, Expr::col("found").eq(Expr::lit(42i64)));
    let out = run(&b.build(f), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn large_flatten_fanout() {
    let mut c = Context::new();
    c.register(
        "t",
        vec![DataItem::from_fields([(
            "xs",
            Value::Bag((0..1200).map(Value::Int).collect()),
        )])],
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.flatten(r, "xs", "x");
    let out = run(&b.build(f), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 1200);
    // Positions are 1-based and dense — check a few.
    assert_eq!(out.rows[0].item.get("x"), Some(&Value::Int(0)));
    assert_eq!(out.rows[1199].item.get("x"), Some(&Value::Int(1199)));
}

#[test]
fn map_with_declared_schema_validates_downstream() {
    let mut c = Context::new();
    c.register("t", items_of(vec![vec![("v", Value::Int(3))]]));
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let m = b.map(
        r,
        MapUdf {
            name: "wrap".into(),
            f: Arc::new(|d| DataItem::from_fields([("wrapped", Value::Item(d.clone()))])),
            output_schema: Some(DataType::item([(
                "wrapped",
                DataType::item([("v", DataType::Int)]),
            )])),
        },
    );
    // Downstream select resolves against the declared schema.
    let s = b.select(m, vec![NamedExpr::aliased("v2", "wrapped.v")]);
    let out = run(&b.build(s), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows[0].item.get("v2"), Some(&Value::Int(3)));

    // A bad downstream path is rejected at validation time.
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let m = b.map(
        r,
        MapUdf {
            name: "wrap".into(),
            f: Arc::new(Clone::clone),
            output_schema: Some(DataType::item([("v", DataType::Int)])),
        },
    );
    let s = b.select(m, vec![NamedExpr::aliased("oops", "nonexistent")]);
    assert!(run(&b.build(s), &c, cfg(), &NoSink).is_err());
}

#[test]
fn select_struct_of_struct() {
    let mut c = Context::new();
    c.register(
        "t",
        items_of(vec![vec![("a", Value::Int(1)), ("b", Value::Int(2))]]),
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let s = b.select(
        r,
        vec![NamedExpr::new(
            "outer",
            SelectExpr::strct([
                ("inner", SelectExpr::strct([("a", SelectExpr::path("a"))])),
                ("b", SelectExpr::path("b")),
            ]),
        )],
    );
    let out = run(&b.build(s), &c, cfg(), &NoSink).unwrap();
    assert_eq!(
        Path::parse("outer.inner.a").eval(&out.rows[0].item),
        Some(&Value::Int(1))
    );
}

#[test]
fn nest_collects_whole_items() {
    let mut c = Context::new();
    c.register(
        "t",
        items_of(vec![
            vec![("k", Value::Int(1)), ("v", Value::Int(10))],
            vec![("k", Value::Int(1)), ("v", Value::Int(20))],
            vec![("k", Value::Int(2)), ("v", Value::Int(30))],
        ]),
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let n = b.nest(r, vec![GroupKey::new("k")], "members");
    let out = run(&b.build(n), &c, cfg(), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 2);
    let g1 = out
        .rows
        .iter()
        .find(|r| r.item.get("k") == Some(&Value::Int(1)))
        .unwrap();
    let members = g1.item.get("members").unwrap().as_collection().unwrap();
    assert_eq!(members.len(), 2);
    // Whole input items are nested, including the grouping key.
    let first = members[0].as_item().unwrap();
    assert_eq!(first.get("k"), Some(&Value::Int(1)));
    assert_eq!(first.get("v"), Some(&Value::Int(10)));
    // Schema reflects the nesting: {{⟨k, v⟩}}.
    assert_eq!(
        out.schema().field("members").unwrap().to_string(),
        "{{⟨k: Int, v: Int⟩}}"
    );
}

// ---------------------------------------------------------------------------
// Fusion boundaries: `run` (operator fusion on) and `run_unfused` must be
// indistinguishable — same rows, same identifiers — exactly where the
// fusion logic has to make a decision.

/// Runs fused and unfused at several partition counts and asserts
/// bit-identical outputs (ids included: fused chains must assign the same
/// identifiers the stage-by-stage execution assigns).
fn assert_fusion_invisible(p: &Program, c: &Context) {
    for parts in [1, 2, 3, 8] {
        let config = ExecConfig::with_partitions(parts);
        let fused = run(p, c, config, &NoSink).unwrap();
        let unfused = run_unfused(p, c, config, &NoSink).unwrap();
        assert_eq!(fused.rows, unfused.rows, "rows/ids differ at p={parts}");
        assert_eq!(
            fused.op_counts, unfused.op_counts,
            "op_counts differ at p={parts}"
        );
    }
}

fn small_ctx() -> Context {
    let mut c = Context::new();
    c.register(
        "t",
        items_of(vec![
            vec![("k", Value::Int(1)), ("v", Value::Int(10))],
            vec![("k", Value::Int(2)), ("v", Value::Int(20))],
            vec![("k", Value::Int(1)), ("v", Value::Int(30))],
        ]),
    );
    c
}

/// Length-1 chain: a single per-row operator after a read — the shortest
/// possible "fusable chain", which must behave as if fusion never happened.
#[test]
fn fusion_boundary_length_one_chain() {
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("v").ge(Expr::lit(15i64)));
    assert_fusion_invisible(&b.build(f), &small_ctx());
}

/// Multi-consumer intermediate: a self-union makes the filter feed two
/// consumers, so the chain must break *at* the filter — its rows get
/// materialized once and must carry identical ids into both union sides.
#[test]
fn fusion_boundary_multi_consumer_intermediate() {
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("v").ge(Expr::lit(15i64)));
    let s = b.select(f, vec![NamedExpr::path("k"), NamedExpr::path("v")]);
    let u = b.union(s, s);
    let f2 = b.filter(u, Expr::col("k").eq(Expr::lit(1i64)));
    assert_fusion_invisible(&b.build(f2), &small_ctx());
}

/// More partitions than rows: most partitions are empty, and per-partition
/// sequence numbering must still line up between fused and unfused runs.
#[test]
fn fusion_boundary_empty_partitions() {
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("v").ge(Expr::lit(0i64)));
    let s = b.select(f, vec![NamedExpr::aliased("key", "k")]);
    let p = b.build(s);
    let c = small_ctx();
    for parts in [4, 8, 64] {
        let config = ExecConfig::with_partitions(parts);
        let fused = run(&p, &c, config, &NoSink).unwrap();
        let unfused = run_unfused(&p, &c, config, &NoSink).unwrap();
        assert_eq!(fused.rows, unfused.rows, "p={parts}");
        assert_eq!(fused.rows.len(), 3, "p={parts}");
    }
}

/// Zero-row operators mid-chain: the first filter drops everything, and
/// the rest of the fused chain (select, second filter) runs over nothing.
#[test]
fn fusion_boundary_zero_row_chain() {
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("v").gt(Expr::lit(1000i64)));
    let s = b.select(f, vec![NamedExpr::path("k")]);
    let f2 = b.filter(s, Expr::col("k").eq(Expr::lit(1i64)));
    let p = b.build(f2);
    let c = small_ctx();
    assert_fusion_invisible(&p, &c);
    let out = run(&p, &c, ExecConfig::with_partitions(3), &NoSink).unwrap();
    assert!(out.rows.is_empty());
    assert_eq!(out.op_counts, vec![3, 0, 0, 0]);
}

/// A chain interrupted by a non-fusable operator (flatten): the per-row
/// stages on either side fuse separately, and the whole must equal the
/// stage-by-stage execution.
#[test]
fn fusion_boundary_chain_interrupted_by_flatten() {
    let mut c = Context::new();
    c.register(
        "t",
        items_of(vec![
            vec![
                ("k", Value::Int(1)),
                ("xs", Value::Bag(vec![Value::Int(1), Value::Int(2)])),
            ],
            vec![("k", Value::Int(2)), ("xs", Value::Bag(vec![]))],
            vec![
                ("k", Value::Int(3)),
                ("xs", Value::Bag(vec![Value::Int(3)])),
            ],
        ]),
    );
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("k").ge(Expr::lit(1i64)));
    let s = b.select(f, vec![NamedExpr::path("k"), NamedExpr::path("xs")]);
    let fl = b.flatten(s, "xs", "x");
    let f2 = b.filter(fl, Expr::col("x").ge(Expr::lit(2i64)));
    let s2 = b.select(f2, vec![NamedExpr::aliased("val", "x")]);
    assert_fusion_invisible(&b.build(s2), &c);
}

/// The sink operator itself can sit inside a fused chain; its rows are the
/// run output and must be identical either way.
#[test]
fn fusion_boundary_sink_inside_chain() {
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("v").ge(Expr::lit(15i64)));
    let s = b.select(f, vec![NamedExpr::aliased("doubled", "v")]);
    let p = b.build(s);
    let c = small_ctx();
    assert_fusion_invisible(&p, &c);
    let out = run(&p, &c, ExecConfig::with_partitions(2), &NoSink).unwrap();
    assert_eq!(out.rows.len(), 2);
}
