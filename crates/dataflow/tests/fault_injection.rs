//! Panic-/error-injection harness (own binary: the fault plan is
//! process-global, so these tests must not share a process with other
//! engine executions).
//!
//! Arms deterministic faults via `pebble_dataflow::fault` and checks the
//! containment contract end to end: a row-level injected error or an
//! injected panic inside a morsel surfaces as the same typed
//! `EngineError` from the morsel-pool executor and the legacy spawn
//! executor, at several partition/worker shapes, and the engine runs the
//! next pipeline normally afterwards.

use std::sync::{Mutex, PoisonError};

use pebble_dataflow::fault::{arm, disarm, FaultKind, FaultPlan};
use pebble_dataflow::{
    context::items_of, run, run_spawn, Context, EngineError, ExecConfig, Expr, NoSink,
    ProgramBuilder,
};
use pebble_nested::Value;

/// Serializes tests in this binary: the fault plan is process-wide.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn ctx(rows: i64) -> Context {
    let mut c = Context::new();
    c.register(
        "t",
        items_of((0..rows).map(|i| vec![("v", Value::Int(i))]).collect()),
    );
    c
}

/// `read → filter` with an always-true predicate; returns the program and
/// the filter's operator id (the unit head the faults target).
fn program() -> (pebble_dataflow::Program, u32) {
    let mut b = ProgramBuilder::new();
    let r = b.read("t");
    let f = b.filter(r, Expr::col("v").ge(Expr::lit(0i64)));
    (b.build(f), f)
}

/// Partition/worker shapes exercised, with tiny morsels so the pool path
/// actually dispatches many morsels per partition.
const SHAPES: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 3), (8, 8)];

fn config(parts: usize, workers: usize) -> ExecConfig {
    ExecConfig::with_partitions(parts)
        .workers(workers)
        .morsel_rows(3)
}

/// An injected row-level error is attributed to the same `(operator,
/// row)` by both executors at every shape: sequence numbers restart per
/// partition and the lowest task wins, so the winning row is partition
/// 0's row 1 everywhere.
#[test]
fn injected_error_is_identical_across_executors() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (program, filter_op) = program();
    let c = ctx(32);
    arm(FaultPlan {
        op: filter_op,
        seq: 1,
        kind: FaultKind::Error,
    });
    for (parts, workers) in SHAPES {
        let cfg = config(parts, workers);
        let pool = run(&program, &c, cfg, &NoSink)
            .err()
            .expect("pool run must fail");
        let spawn = run_spawn(&program, &c, cfg, &NoSink)
            .err()
            .expect("spawn run must fail");
        assert_eq!(pool, spawn, "p={parts} w={workers}");
        assert_eq!(
            pool.to_string(),
            "operator #1: row 0x1: injected fault at sequence 1",
            "p={parts} w={workers}"
        );
    }
    disarm();
}

/// An injected morsel panic is contained by the `catch_unwind` boundary,
/// converted to `EngineError::WorkerPanic` with the panic payload, and
/// reported identically by both executors; after disarming, the very next
/// run succeeds — no worker died, no morsel queue was left hanging.
#[test]
fn injected_panic_is_contained_and_engine_recovers() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (program, filter_op) = program();
    let c = ctx(32);
    arm(FaultPlan {
        op: filter_op,
        seq: 1,
        kind: FaultKind::Panic,
    });
    for (parts, workers) in SHAPES {
        let cfg = config(parts, workers);
        let pool = run(&program, &c, cfg, &NoSink)
            .err()
            .expect("pool run must fail");
        let spawn = run_spawn(&program, &c, cfg, &NoSink)
            .err()
            .expect("spawn run must fail");
        assert_eq!(pool, spawn, "p={parts} w={workers}");
        assert_eq!(
            pool,
            EngineError::WorkerPanic {
                payload: "injected fault: operator #1 poisoned at sequence 1".into(),
            },
            "p={parts} w={workers}"
        );
    }
    disarm();
    for (parts, workers) in SHAPES {
        let cfg = config(parts, workers);
        let out = run(&program, &c, cfg, &NoSink).expect("post-fault pool run succeeds");
        assert_eq!(out.rows.len(), 32, "p={parts} w={workers}");
        let out = run_spawn(&program, &c, cfg, &NoSink).expect("post-fault spawn run succeeds");
        assert_eq!(out.rows.len(), 32, "p={parts} w={workers}");
    }
}

/// Back-to-back failing and succeeding runs interleave cleanly: the
/// process-global plan can be re-armed after a recovery without residue.
#[test]
fn rearming_after_recovery_fires_again() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (program, filter_op) = program();
    let c = ctx(16);
    let cfg = config(4, 4);
    for round in 0..3 {
        arm(FaultPlan {
            op: filter_op,
            seq: 0,
            kind: FaultKind::Panic,
        });
        assert!(
            run(&program, &c, cfg, &NoSink).is_err(),
            "round {round} armed run fails"
        );
        disarm();
        let out = run(&program, &c, cfg, &NoSink).expect("disarmed run succeeds");
        assert_eq!(out.rows.len(), 16, "round {round}");
    }
}
