//! Scheduler determinism properties.
//!
//! The morsel-driven executor specifies that row identifiers, association
//! tables, *and the order of emitted provenance batches* are byte-identical
//! at every worker count and morsel size — and identical to the legacy
//! per-operator spawning executor. These tests pin that contract on
//! representative pipelines over the full matrix
//! workers {1, 2, 7} × morsel sizes {1, 64, whole-partition}.

use std::sync::Mutex;

use pebble_dataflow::context::items_of;
use pebble_dataflow::{
    run, run_spawn, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, ItemId, NamedExpr, OpId,
    Program, ProgramBuilder, ProvenanceSink,
};
use pebble_nested::{Path, Value};

/// One provenance batch exactly as the executor emitted it. Comparing
/// event logs therefore checks content *and* emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Event {
    Read(OpId, Vec<ItemId>),
    Unary(OpId, Vec<(ItemId, ItemId)>),
    Binary(OpId, Vec<(Option<ItemId>, Option<ItemId>, ItemId)>),
    Flatten(OpId, Vec<(ItemId, u32, ItemId)>),
    Agg(OpId, Vec<(Vec<ItemId>, ItemId)>),
}

#[derive(Default)]
struct LogSink {
    events: Mutex<Vec<Event>>,
}

impl LogSink {
    fn push(&self, e: Event) {
        self.events.lock().unwrap().push(e);
    }
}

impl ProvenanceSink for LogSink {
    const ENABLED: bool = true;

    fn read_batch(&self, op: OpId, ids: &[ItemId]) {
        self.push(Event::Read(op, ids.to_vec()));
    }

    fn unary_batch(&self, op: OpId, assoc: &[(ItemId, ItemId)]) {
        self.push(Event::Unary(op, assoc.to_vec()));
    }

    fn binary_batch(&self, op: OpId, assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {
        self.push(Event::Binary(op, assoc.to_vec()));
    }

    fn flatten_batch(&self, op: OpId, assoc: &[(ItemId, u32, ItemId)]) {
        self.push(Event::Flatten(op, assoc.to_vec()));
    }

    fn agg_batch(&self, op: OpId, assoc: Vec<(Vec<ItemId>, ItemId)>) {
        self.push(Event::Agg(op, assoc));
    }
}

/// Runs `program` and returns everything the determinism contract covers:
/// output rows (with ids), per-operator counts, and the provenance event
/// log *per operator* in emission order. Per-operator batch sequences are
/// specified to be byte-identical; the interleaving *across* operators is
/// not — independent DAG branches legitimately finalize in
/// scheduling-dependent order (and per-op association tables, the durable
/// artifact, are insensitive to it).
fn observe(
    exec: fn(
        &Program,
        &Context,
        ExecConfig,
        &LogSink,
    ) -> pebble_dataflow::Result<pebble_dataflow::RunOutput>,
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
) -> (
    Vec<pebble_dataflow::Row>,
    Vec<usize>,
    std::collections::BTreeMap<OpId, Vec<Event>>,
) {
    let sink = LogSink::default();
    let out = exec(program, ctx, config, &sink).unwrap();
    let mut per_op: std::collections::BTreeMap<OpId, Vec<Event>> = Default::default();
    for e in sink.events.into_inner().unwrap() {
        let op = match &e {
            Event::Read(op, _)
            | Event::Unary(op, _)
            | Event::Binary(op, _)
            | Event::Flatten(op, _)
            | Event::Agg(op, _) => *op,
        };
        per_op.entry(op).or_default().push(e);
    }
    (out.rows, out.op_counts, per_op)
}

// `observe` needs a uniform fn signature; adapt both executors to it.
fn pool_exec(
    p: &Program,
    c: &Context,
    cfg: ExecConfig,
    s: &LogSink,
) -> pebble_dataflow::Result<pebble_dataflow::RunOutput> {
    run(p, c, cfg, s)
}

fn spawn_exec(
    p: &Program,
    c: &Context,
    cfg: ExecConfig,
    s: &LogSink,
) -> pebble_dataflow::Result<pebble_dataflow::RunOutput> {
    run_spawn(p, c, cfg, s)
}

/// Skewed dataset: item 0 carries a fat tag bag (fan-out skew after
/// flatten), everything else a small one.
fn skewed_ctx() -> Context {
    let mut c = Context::new();
    let items: Vec<Vec<(&str, Value)>> = (0..60i64)
        .map(|i| {
            let tags = if i == 0 { 40 } else { i % 5 };
            vec![
                ("id", Value::Int(i % 9)),
                ("v", Value::Int(i * 3)),
                ("tags", Value::Bag((0..tags).map(Value::Int).collect())),
            ]
        })
        .collect();
    c.register("events", items_of(items));
    c.register(
        "dim",
        items_of(
            (0..9i64)
                .map(|i| {
                    vec![
                        ("key", Value::Int(i)),
                        ("label", Value::str(if i % 2 == 0 { "even" } else { "odd" })),
                    ]
                })
                .collect(),
        ),
    );
    c
}

/// Pipeline touching every unit kind: read → flatten → fused
/// filter+select chain → self-union → join → group-aggregate.
fn full_pipeline() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let fl = b.flatten(r, "tags", "tag");
    let f = b.filter(fl, Expr::col("tag").ge(Expr::lit(1i64)));
    let s = b.select(
        f,
        vec![
            NamedExpr::aliased("id", "id"),
            NamedExpr::aliased("tag", "tag"),
        ],
    );
    let u = b.union(s, s);
    let d = b.read("dim");
    let j = b.join(u, d, vec![(Path::attr("id"), Path::attr("key"))]);
    let g = b.group_aggregate(
        j,
        vec![GroupKey::new("label")],
        vec![
            AggSpec::new(AggFunc::Count, "", "n"),
            AggSpec::new(AggFunc::CollectList, "tag", "tags"),
        ],
    );
    b.build(g)
}

/// Chain-heavy pipeline (exercises fused-chain offset stitching across
/// several stages).
fn chain_pipeline() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let f1 = b.filter(r, Expr::col("v").ge(Expr::lit(6i64)));
    let s = b.select(
        f1,
        vec![NamedExpr::aliased("id", "id"), NamedExpr::aliased("w", "v")],
    );
    let f2 = b.filter(s, Expr::col("w").ge(Expr::lit(30i64)));
    b.build(f2)
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 7];
const MORSEL_SIZES: [usize; 3] = [1, 64, usize::MAX];

fn assert_matrix_deterministic(program: &Program, ctx: &Context, partitions: usize) {
    let base_cfg = ExecConfig::with_partitions(partitions)
        .workers(1)
        .morsel_rows(0);
    let baseline = observe(pool_exec, program, ctx, base_cfg);

    // Legacy spawn executor is the referee for the whole contract.
    let legacy = observe(spawn_exec, program, ctx, base_cfg);
    assert_eq!(baseline.0, legacy.0, "rows: pool vs spawn");
    assert_eq!(baseline.1, legacy.1, "op_counts: pool vs spawn");
    assert_eq!(baseline.2, legacy.2, "provenance events: pool vs spawn");

    for workers in WORKER_COUNTS {
        for morsel in MORSEL_SIZES {
            let cfg = ExecConfig::with_partitions(partitions)
                .workers(workers)
                .morsel_rows(morsel);
            let got = observe(pool_exec, program, ctx, cfg);
            assert_eq!(baseline.0, got.0, "rows: w={workers} m={morsel}");
            assert_eq!(baseline.1, got.1, "op_counts: w={workers} m={morsel}");
            assert_eq!(
                baseline.2, got.2,
                "provenance events: w={workers} m={morsel}"
            );
        }
    }
}

/// Concatenates each operator's event payloads into its association
/// *table* — the durable artifact. The columnar path may batch
/// differently (whole-partition id runs instead of per-morsel pair
/// batches), but the tables themselves are specified byte-identical.
#[allow(clippy::type_complexity)]
fn flatten_tables(
    per_op: &std::collections::BTreeMap<OpId, Vec<Event>>,
) -> std::collections::BTreeMap<OpId, Event> {
    per_op
        .iter()
        .map(|(&op, events)| {
            let mut iter = events.iter();
            let mut table = iter.next().expect("operator with no events").clone();
            for e in iter {
                match (&mut table, e) {
                    (Event::Read(_, acc), Event::Read(_, v)) => acc.extend_from_slice(v),
                    (Event::Unary(_, acc), Event::Unary(_, v)) => acc.extend_from_slice(v),
                    (Event::Binary(_, acc), Event::Binary(_, v)) => acc.extend_from_slice(v),
                    (Event::Flatten(_, acc), Event::Flatten(_, v)) => acc.extend_from_slice(v),
                    (Event::Agg(_, acc), Event::Agg(_, v)) => acc.extend_from_slice(v),
                    _ => panic!("operator {op} emitted mixed event kinds"),
                }
            }
            (op, table)
        })
        .collect()
}

/// Columnar on/off × workers {1, 2, 7} × partitions {1, 2, 7}: rows,
/// identifiers, operator counts, and association tables are byte-identical
/// between the vectorized kernels and the row path at every configuration.
fn assert_columnar_matrix(program: &Program, ctx: &Context) {
    for partitions in [1, 2, 7] {
        let row_base = ExecConfig::with_partitions(partitions)
            .workers(1)
            .morsel_rows(0)
            .columnar(false);
        let baseline = observe(pool_exec, program, ctx, row_base);
        let base_tables = flatten_tables(&baseline.2);
        for workers in WORKER_COUNTS {
            for columnar in [false, true] {
                let cfg = ExecConfig::with_partitions(partitions)
                    .workers(workers)
                    .morsel_rows(if workers == 1 { 0 } else { 7 })
                    .columnar(columnar);
                let got = observe(pool_exec, program, ctx, cfg);
                let tag = format!("p={partitions} w={workers} columnar={columnar}");
                assert_eq!(baseline.0, got.0, "rows: {tag}");
                assert_eq!(baseline.1, got.1, "op_counts: {tag}");
                assert_eq!(base_tables, flatten_tables(&got.2), "assoc tables: {tag}");
            }
        }
    }
}

/// Memory-budget axis: budget {unlimited, tight, pathological 1-byte with
/// 1-row morsels} × workers {1, 2, 7} × columnar on/off. Spilling must be
/// invisible in everything the determinism contract covers — rows,
/// identifiers, operator counts, association tables — while the
/// pathological budgets demonstrably spill.
fn assert_spill_matrix(program: &Program, ctx: &Context, partitions: usize) {
    let base_cfg = ExecConfig::with_partitions(partitions)
        .workers(1)
        .morsel_rows(0)
        .mem_budget(0);
    let baseline = observe(pool_exec, program, ctx, base_cfg);
    let base_tables = flatten_tables(&baseline.2);
    for (budget, morsel) in [(0usize, 0usize), (4096, 64), (1, 1)] {
        for workers in WORKER_COUNTS {
            for columnar in [false, true] {
                let cfg = ExecConfig::with_partitions(partitions)
                    .workers(workers)
                    .morsel_rows(morsel)
                    .columnar(columnar)
                    .mem_budget(budget);
                let got = observe(pool_exec, program, ctx, cfg);
                let tag = format!("budget={budget} w={workers} columnar={columnar}");
                assert_eq!(baseline.0, got.0, "rows: {tag}");
                assert_eq!(baseline.1, got.1, "op_counts: {tag}");
                assert_eq!(base_tables, flatten_tables(&got.2), "assoc tables: {tag}");
            }
        }
    }
}

#[test]
fn full_pipeline_deterministic_under_memory_budget() {
    let ctx = skewed_ctx();
    assert_spill_matrix(&full_pipeline(), &ctx, 3);
}

#[test]
fn chain_pipeline_deterministic_under_memory_budget() {
    let ctx = skewed_ctx();
    assert_spill_matrix(&chain_pipeline(), &ctx, 4);
}

#[test]
fn full_pipeline_columnar_matches_row_path() {
    let ctx = skewed_ctx();
    assert_columnar_matrix(&full_pipeline(), &ctx);
}

#[test]
fn chain_pipeline_columnar_matches_row_path() {
    let ctx = skewed_ctx();
    assert_columnar_matrix(&chain_pipeline(), &ctx);
}

#[test]
fn full_pipeline_deterministic_across_workers_and_morsels() {
    let ctx = skewed_ctx();
    let program = full_pipeline();
    assert_matrix_deterministic(&program, &ctx, 4);
}

#[test]
fn chain_pipeline_deterministic_across_workers_and_morsels() {
    let ctx = skewed_ctx();
    let program = chain_pipeline();
    assert_matrix_deterministic(&program, &ctx, 3);
}

#[test]
fn single_partition_deterministic_across_workers_and_morsels() {
    // partitions=1 is the oracle's reference configuration; the pool path
    // must still stitch morsels of the single partition back losslessly.
    let ctx = skewed_ctx();
    let program = full_pipeline();
    assert_matrix_deterministic(&program, &ctx, 1);
}
