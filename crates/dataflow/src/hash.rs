//! Deterministic hashing for shuffles and hash joins.
//!
//! The executor must partition rows identically on every run (and on every
//! thread) so that program output order is deterministic. `std`'s
//! `RandomState` is seeded per process, so we ship a small fixed-key
//! multiply-xor hasher (the FxHash construction used by rustc, which the
//! performance guide recommends for short keys).

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style deterministic hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Deterministic `HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Deterministic `HashSet`.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes any `Hash` value with the deterministic hasher.
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Hashes a join/group key exactly like `hash_one(&Vec<Value>)` — a length
/// prefix followed by the element hashes — without owning the values.
///
/// Join build and probe compute this once per row and reuse the cached
/// `u64` for both the table lookup and the bucket scan, instead of
/// re-walking the key values on every phase.
pub fn hash_value_refs(values: &[&pebble_nested::Value]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(values.len());
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Owned-slice variant of [`hash_value_refs`]; identical output.
pub fn hash_values(values: &[pebble_nested::Value]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(values.len());
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
        assert_ne!(hash_one(&"abc"), hash_one(&"abd"));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn key_hash_matches_vec_hash() {
        use pebble_nested::{DataItem, Value};
        let keys = [
            vec![],
            vec![Value::Null],
            vec![Value::Int(42), Value::str("abc")],
            vec![Value::Bool(true), Value::Double(1.5), Value::str("")],
            vec![Value::Item(DataItem::from_fields([("a", Value::Int(1))]))],
        ];
        for key in keys {
            let refs: Vec<&Value> = key.iter().collect();
            assert_eq!(hash_values(&key), hash_one(&key), "{key:?}");
            assert_eq!(hash_value_refs(&refs), hash_one(&key), "{key:?}");
        }
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("k".into(), 7);
        assert_eq!(m.get("k"), Some(&7));
    }
}
