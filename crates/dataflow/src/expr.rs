//! Expression language for predicates and projections.
//!
//! Expressions evaluate against a single context [`DataItem`] (for filters
//! and selects) or against a *merged* pair of items (for join conditions,
//! where the right side's paths are evaluated on the right item).
//!
//! Every expression can enumerate the input paths it reads via
//! [`Expr::accessed_paths`]; the provenance capture uses this to populate
//! the access sets `A` of Tab. 5.

use std::fmt;
use std::sync::Arc;

use pebble_nested::{DataItem, DataType, Path, Value};

use crate::error::{EngineError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators over `Int`/`Double`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression over one context item.
#[derive(Clone)]
pub enum Expr {
    /// Reference to the value at an access path.
    Col(Path),
    /// Constant.
    Lit(Value),
    /// Comparison of two sub-expressions (uses the total value order;
    /// `Int`/`Double` compare numerically).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// String containment: `haystack.contains(needle)`.
    Contains(Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// True when the sub-expression evaluates to `Null` / a missing path.
    IsNull(Box<Expr>),
    /// Size of a collection (bag/set) or length of a string.
    Len(Box<Expr>),
    /// Opaque scalar user-defined function (provenance treats its accesses
    /// as unknown, like `map`: `A = ⊥`).
    Udf(ScalarUdf),
}

/// Implementation type of a scalar UDF.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A named opaque scalar function.
#[derive(Clone)]
pub struct ScalarUdf {
    /// Display name of the function.
    pub name: String,
    /// Arguments.
    pub args: Vec<Expr>,
    /// Implementation.
    pub f: ScalarFn,
}

impl Expr {
    /// Column reference by parsed path.
    pub fn col(path: &str) -> Self {
        Expr::Col(Path::parse(path))
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Lit(v.into())
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self && other`.
    pub fn and(self, other: Expr) -> Self {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self || other`.
    pub fn or(self, other: Expr) -> Self {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    /// `self.contains(needle)` for strings.
    pub fn contains(self, needle: Expr) -> Self {
        Expr::Contains(Box::new(self), Box::new(needle))
    }

    /// Evaluates against a context item. Missing paths evaluate to `Null`;
    /// comparisons with `Null` are false (SQL-ish three-valued logic
    /// collapsed to two values: unknown ⇒ false).
    pub fn eval(&self, item: &DataItem) -> Value {
        match self {
            Expr::Col(path) => path.eval(item).cloned().unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(item), b.eval(item));
                if va.is_null() || vb.is_null() {
                    return Value::Bool(false);
                }
                let ord = va.cmp(&vb);
                Value::Bool(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => !ord.is_eq(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                })
            }
            Expr::And(a, b) => Value::Bool(
                a.eval(item).as_bool().unwrap_or(false) && b.eval(item).as_bool().unwrap_or(false),
            ),
            Expr::Or(a, b) => Value::Bool(
                a.eval(item).as_bool().unwrap_or(false) || b.eval(item).as_bool().unwrap_or(false),
            ),
            Expr::Not(a) => Value::Bool(!a.eval(item).as_bool().unwrap_or(false)),
            Expr::Contains(h, n) => {
                let (vh, vn) = (h.eval(item), n.eval(item));
                match (vh.as_str(), vn.as_str()) {
                    (Some(h), Some(n)) => Value::Bool(h.contains(n)),
                    _ => Value::Bool(false),
                }
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(item), b.eval(item));
                match (&va, &vb) {
                    (Value::Int(x), Value::Int(y)) => match op {
                        ArithOp::Add => Value::Int(x.wrapping_add(*y)),
                        ArithOp::Sub => Value::Int(x.wrapping_sub(*y)),
                        ArithOp::Mul => Value::Int(x.wrapping_mul(*y)),
                        ArithOp::Div => {
                            if *y == 0 {
                                Value::Null
                            } else {
                                Value::Int(x.wrapping_div(*y))
                            }
                        }
                    },
                    _ => match (va.as_double(), vb.as_double()) {
                        (Some(x), Some(y)) => Value::Double(match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => x / y,
                        }),
                        _ => Value::Null,
                    },
                }
            }
            Expr::IsNull(a) => Value::Bool(a.eval(item).is_null()),
            Expr::Len(a) => match a.eval(item) {
                Value::Bag(vs) | Value::Set(vs) => Value::Int(vs.len() as i64),
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                _ => Value::Null,
            },
            Expr::Udf(udf) => {
                let args: Vec<Value> = udf.args.iter().map(|a| a.eval(item)).collect();
                (udf.f)(&args)
            }
        }
    }

    /// Evaluates as a boolean predicate (non-boolean results are false).
    pub fn eval_bool(&self, item: &DataItem) -> bool {
        self.eval(item).as_bool().unwrap_or(false)
    }

    /// Collects every access path read by this expression, in syntactic
    /// order (duplicates removed). Opaque UDF arguments are included — the
    /// UDF can only see what its argument expressions read.
    pub fn accessed_paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths(&self, out: &mut Vec<Path>) {
        let mut push = |p: &Path| {
            if !out.contains(p) {
                out.push(p.clone());
            }
        };
        match self {
            Expr::Col(p) => push(p),
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Contains(a, b)
            | Expr::Arith(_, a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
            Expr::Not(a) | Expr::IsNull(a) | Expr::Len(a) => a.collect_paths(out),
            Expr::Udf(udf) => {
                for a in &udf.args {
                    a.collect_paths(out);
                }
            }
        }
    }

    /// Whether evaluating this expression can run user code (a scalar
    /// UDF). The executor only pays a per-row unwind guard for expressions
    /// that can — everything else in the language is total.
    pub fn contains_udf(&self) -> bool {
        match self {
            Expr::Col(_) | Expr::Lit(_) => false,
            Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Contains(a, b)
            | Expr::Arith(_, a, b) => a.contains_udf() || b.contains_udf(),
            Expr::Not(a) | Expr::IsNull(a) | Expr::Len(a) => a.contains_udf(),
            Expr::Udf(_) => true,
        }
    }

    /// Validates the expression against an input schema and infers its
    /// result type.
    pub fn infer_type(&self, op: u32, schema: &DataType) -> Result<DataType> {
        let resolve = |p: &Path| {
            schema
                .resolve(p)
                .cloned()
                .ok_or_else(|| EngineError::UnresolvedPath {
                    op,
                    path: p.clone(),
                    schema: schema.clone(),
                })
        };
        Ok(match self {
            Expr::Col(p) => resolve(p)?,
            Expr::Lit(v) => DataType::of(v),
            Expr::Cmp(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::Contains(..)
            | Expr::IsNull(..) => {
                for p in self.accessed_paths() {
                    resolve(&p)?;
                }
                DataType::Bool
            }
            Expr::Arith(_, a, b) => {
                let (ta, tb) = (a.infer_type(op, schema)?, b.infer_type(op, schema)?);
                match (&ta, &tb) {
                    (DataType::Int, DataType::Int) => DataType::Int,
                    (
                        DataType::Int | DataType::Double | DataType::Null,
                        DataType::Int | DataType::Double | DataType::Null,
                    ) => DataType::Double,
                    _ => {
                        return Err(EngineError::TypeError {
                            op,
                            message: format!("arithmetic over {ta} and {tb}"),
                        })
                    }
                }
            }
            Expr::Len(a) => {
                a.infer_type(op, schema)?;
                DataType::Int
            }
            Expr::Udf(udf) => {
                for a in &udf.args {
                    a.infer_type(op, schema)?;
                }
                DataType::Null // opaque result type
            }
        })
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(p) => write!(f, "col({p})"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::And(a, b) => write!(f, "({a:?} && {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} || {b:?})"),
            Expr::Not(a) => write!(f, "!{a:?}"),
            Expr::Contains(a, b) => write!(f, "contains({a:?}, {b:?})"),
            Expr::Arith(op, a, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::IsNull(a) => write!(f, "isnull({a:?})"),
            Expr::Len(a) => write!(f, "len({a:?})"),
            Expr::Udf(udf) => write!(f, "{}(…)", udf.name),
        }
    }
}

/// Projection expressions for `select`: copy a subtree, build a nested
/// struct (e.g. `<id_str, name> → user` in the running example), or embed a
/// computed scalar.
#[derive(Clone, Debug)]
pub enum SelectExpr {
    /// Copy the value at a path.
    Path(Path),
    /// Construct a nested data item from named sub-projections.
    Struct(Vec<(String, SelectExpr)>),
    /// Computed scalar expression (counts as access-only provenance).
    Computed(Expr),
}

impl SelectExpr {
    /// Path projection helper.
    pub fn path(p: &str) -> Self {
        SelectExpr::Path(Path::parse(p))
    }

    /// Struct construction helper.
    pub fn strct(fields: impl IntoIterator<Item = (impl Into<String>, SelectExpr)>) -> Self {
        SelectExpr::Struct(fields.into_iter().map(|(n, e)| (n.into(), e)).collect())
    }

    /// Evaluates the projection against an item.
    pub fn eval(&self, item: &DataItem) -> Value {
        match self {
            SelectExpr::Path(p) => p.eval(item).cloned().unwrap_or(Value::Null),
            SelectExpr::Struct(fields) => {
                let mut d = DataItem::new();
                for (name, e) in fields {
                    d.push(name.clone(), e.eval(item));
                }
                Value::Item(d)
            }
            SelectExpr::Computed(e) => e.eval(item),
        }
    }

    /// Paths *copied* into the output (manipulation provenance `M`):
    /// one `(input path, output path)` pair per `Path` leaf.
    pub fn manipulated(&self, out_prefix: &Path) -> Vec<(Path, Path)> {
        match self {
            SelectExpr::Path(p) => vec![(p.clone(), out_prefix.clone())],
            SelectExpr::Struct(fields) => fields
                .iter()
                .flat_map(|(name, e)| {
                    e.manipulated(&out_prefix.child(pebble_nested::Step::attr(name)))
                })
                .collect(),
            SelectExpr::Computed(_) => Vec::new(),
        }
    }

    /// All paths *read* (access provenance `A`).
    pub fn accessed(&self) -> Vec<Path> {
        match self {
            SelectExpr::Path(p) => vec![p.clone()],
            SelectExpr::Struct(fields) => {
                let mut out = Vec::new();
                for (_, e) in fields {
                    for p in e.accessed() {
                        if !out.contains(&p) {
                            out.push(p);
                        }
                    }
                }
                out
            }
            SelectExpr::Computed(e) => e.accessed_paths(),
        }
    }

    /// Whether evaluating this projection can run user code (see
    /// [`Expr::contains_udf`]).
    pub fn contains_udf(&self) -> bool {
        match self {
            SelectExpr::Path(_) => false,
            SelectExpr::Struct(fields) => fields.iter().any(|(_, e)| e.contains_udf()),
            SelectExpr::Computed(e) => e.contains_udf(),
        }
    }

    /// Infers the output type.
    pub fn infer_type(&self, op: u32, schema: &DataType) -> Result<DataType> {
        match self {
            SelectExpr::Path(p) => {
                schema
                    .resolve(p)
                    .cloned()
                    .ok_or_else(|| EngineError::UnresolvedPath {
                        op,
                        path: p.clone(),
                        schema: schema.clone(),
                    })
            }
            SelectExpr::Struct(fields) => {
                let fs = fields
                    .iter()
                    .map(|(n, e)| Ok(pebble_nested::Field::new(n, e.infer_type(op, schema)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(DataType::Item(fs))
            }
            SelectExpr::Computed(e) => e.infer_type(op, schema),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::Step;

    fn item() -> DataItem {
        DataItem::from_fields([
            ("text", Value::str("Hello World")),
            (
                "user",
                Value::Item(DataItem::from_fields([
                    ("id_str", Value::str("lp")),
                    ("name", Value::str("Lisa Paul")),
                ])),
            ),
            ("retweet_cnt", Value::Int(0)),
            ("score", Value::Double(1.5)),
        ])
    }

    #[test]
    fn filter_predicate_running_example() {
        let e = Expr::col("retweet_cnt").eq(Expr::lit(0i64));
        assert!(e.eval_bool(&item()));
        let e2 = Expr::col("retweet_cnt").gt(Expr::lit(0i64));
        assert!(!e2.eval_bool(&item()));
    }

    #[test]
    fn null_comparisons_are_false() {
        let e = Expr::col("missing").eq(Expr::lit(0i64));
        assert!(!e.eval_bool(&item()));
        let n = Expr::IsNull(Box::new(Expr::col("missing")));
        assert!(n.eval_bool(&item()));
    }

    #[test]
    fn contains_and_bool_ops() {
        let e = Expr::col("text")
            .contains(Expr::lit("World"))
            .and(Expr::col("retweet_cnt").le(Expr::lit(5i64)));
        assert!(e.eval_bool(&item()));
        assert!(!e.clone().not().eval_bool(&item()));
        let o = Expr::col("text")
            .contains(Expr::lit("zzz"))
            .or(Expr::lit(true));
        assert!(o.eval_bool(&item()));
    }

    #[test]
    fn arithmetic_semantics() {
        let add = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col("retweet_cnt")),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(add.eval(&item()), Value::Int(2));
        let div0 = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::lit(1i64)),
            Box::new(Expr::lit(0i64)),
        );
        assert_eq!(div0.eval(&item()), Value::Null);
        let mixed = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::col("score")),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(mixed.eval(&item()), Value::Double(3.0));
    }

    #[test]
    fn accessed_paths_deduplicated() {
        let e = Expr::col("user.id_str")
            .eq(Expr::lit("lp"))
            .and(Expr::col("user.id_str").ne(Expr::lit("x")))
            .and(Expr::col("text").contains(Expr::lit("H")));
        let ps: Vec<String> = e.accessed_paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(ps, ["user.id_str", "text"]);
    }

    #[test]
    fn select_struct_builds_nested_item() {
        // `<id_str, name> → user` of operator 8 in Fig. 1.
        let se = SelectExpr::strct([
            ("id_str", SelectExpr::path("user.id_str")),
            ("name", SelectExpr::path("user.name")),
        ]);
        let v = se.eval(&item());
        let d = v.as_item().unwrap();
        assert_eq!(d.get("id_str"), Some(&Value::str("lp")));
        let m = se.manipulated(&Path::attr("user"));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, Path::parse("user.id_str"));
        assert_eq!(m[0].1, Path::parse("user.id_str"));
        assert_eq!(m[1].1, Path::parse("user.name"));
    }

    #[test]
    fn infer_types() {
        let schema = DataType::of_item(&item());
        let e = Expr::col("retweet_cnt").eq(Expr::lit(0i64));
        assert_eq!(e.infer_type(0, &schema).unwrap(), DataType::Bool);
        assert!(Expr::col("bogus").infer_type(0, &schema).is_err());
        let se = SelectExpr::strct([("a", SelectExpr::path("text"))]);
        assert_eq!(
            se.infer_type(0, &schema).unwrap(),
            DataType::item([("a", DataType::Str)])
        );
    }

    #[test]
    fn udf_is_opaque_but_args_tracked() {
        let udf = Expr::Udf(ScalarUdf {
            name: "double_len".into(),
            args: vec![Expr::col("text")],
            f: Arc::new(|args| {
                Value::Int(args[0].as_str().map(|s| s.len() as i64).unwrap_or(0) * 2)
            }),
        });
        assert_eq!(udf.eval(&item()), Value::Int(22));
        assert_eq!(udf.accessed_paths(), vec![Path::attr("text")]);
    }

    #[test]
    fn len_expr() {
        let d = DataItem::from_fields([("tags", Value::Bag(vec![Value::Int(1), Value::Int(2)]))]);
        assert_eq!(
            Expr::Len(Box::new(Expr::col("tags"))).eval(&d),
            Value::Int(2)
        );
    }

    #[test]
    fn select_path_step_helper_used() {
        let p = Path::attr("user").child(Step::attr("name"));
        assert_eq!(p, Path::parse("user.name"));
    }
}
