//! Execution context: named input datasets and their schemas.

use pebble_nested::{DataItem, DataType, Value};

use crate::hash::FxHashMap;

/// How many items are sampled to infer a source schema.
const SCHEMA_SAMPLE: usize = 64;

/// Registry of named source datasets, playing the role of the storage layer
/// (`read tweets.json` in Fig. 1).
#[derive(Default)]
pub struct Context {
    sources: FxHashMap<String, Source>,
}

struct Source {
    items: Vec<DataItem>,
    schema: DataType,
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset, inferring its schema from a sample of items
    /// (types are unified across the sample; irreconcilable or empty
    /// sources get the unknown schema `Null`).
    pub fn register(&mut self, name: impl Into<String>, items: Vec<DataItem>) {
        let schema = infer_schema(&items);
        self.sources.insert(name.into(), Source { items, schema });
    }

    /// Registers a dataset with an explicit schema.
    pub fn register_with_schema(
        &mut self,
        name: impl Into<String>,
        items: Vec<DataItem>,
        schema: DataType,
    ) {
        self.sources.insert(name.into(), Source { items, schema });
    }

    /// Looks up a source's items.
    pub fn source(&self, name: &str) -> Option<&[DataItem]> {
        self.sources.get(name).map(|s| s.items.as_slice())
    }

    /// Schemas of all registered sources.
    pub fn source_schemas(&self) -> FxHashMap<String, DataType> {
        self.sources
            .iter()
            .map(|(n, s)| (n.clone(), s.schema.clone()))
            .collect()
    }

    /// Names of registered sources.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.keys().map(String::as_str)
    }
}

/// Infers a dataset schema by unifying the types of a sample of items.
pub fn infer_schema(items: &[DataItem]) -> DataType {
    let mut acc = DataType::Null;
    for item in items.iter().take(SCHEMA_SAMPLE) {
        match acc.unify(&DataType::of_item(item)) {
            Some(t) => acc = t,
            // Heterogeneous source: fall back to the unknown schema, which
            // path resolution treats as a wildcard.
            None => return DataType::Null,
        }
    }
    acc
}

/// Convenience: builds items from `(name, value)` rows for tests.
pub fn items_of(rows: Vec<Vec<(&str, Value)>>) -> Vec<DataItem> {
    rows.into_iter()
        .map(|fields| DataItem::from_fields(fields.into_iter().map(|(n, v)| (n.to_string(), v))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_inferred_from_sample() {
        let mut ctx = Context::new();
        ctx.register(
            "t",
            items_of(vec![
                vec![("a", Value::Int(1))],
                vec![("a", Value::Double(2.0))],
            ]),
        );
        let schemas = ctx.source_schemas();
        assert_eq!(schemas["t"], DataType::item([("a", DataType::Double)]));
    }

    #[test]
    fn heterogeneous_source_gets_wildcard() {
        let items = items_of(vec![vec![("a", Value::Int(1))], vec![("b", Value::Int(1))]]);
        assert_eq!(infer_schema(&items), DataType::Null);
    }

    #[test]
    fn empty_source() {
        assert_eq!(infer_schema(&[]), DataType::Null);
    }
}
