//! Programs: DAGs of operators (Def. 4.6) with a fluent builder,
//! validation, and topological utilities.

use pebble_nested::DataType;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::op::{AggSpec, GroupKey, MapUdf, NamedExpr, OpId, OpKind};

pub use crate::expr::SelectExpr;

/// An operator node in the DAG.
#[derive(Clone, Debug)]
pub struct Operator {
    /// Unique id within the program.
    pub id: OpId,
    /// Kind and parameters.
    pub kind: OpKind,
    /// Upstream operator ids, in input order.
    pub inputs: Vec<OpId>,
}

/// A data analytics program: a DAG with possibly many `read` sources and
/// exactly one sink (Def. 4.6).
#[derive(Clone, Debug)]
pub struct Program {
    ops: Vec<Operator>,
    sink: OpId,
}

impl Program {
    /// All operators, ordered by id (which is also a topological order,
    /// since the builder only lets nodes reference earlier nodes).
    pub fn operators(&self) -> &[Operator] {
        &self.ops
    }

    /// Looks up one operator.
    pub fn op(&self, id: OpId) -> Result<&Operator> {
        self.ops
            .get(id as usize)
            .ok_or(EngineError::UnknownOperator(id))
    }

    /// The sink operator id.
    pub fn sink(&self) -> OpId {
        self.sink
    }

    /// Ids of all `read` operators with their source names.
    pub fn reads(&self) -> Vec<(OpId, &str)> {
        self.ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Read { source } => Some((o.id, source.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Downstream consumers of each operator.
    pub fn consumers(&self) -> FxHashMap<OpId, Vec<OpId>> {
        let mut out: FxHashMap<OpId, Vec<OpId>> = FxHashMap::default();
        for op in &self.ops {
            for &i in &op.inputs {
                out.entry(i).or_default().push(op.id);
            }
        }
        out
    }

    /// Validates the DAG shape and infers per-operator output schemas given
    /// the schemas of the named sources. Returns schemas indexed by op id.
    pub fn infer_schemas(
        &self,
        source_schemas: &FxHashMap<String, DataType>,
    ) -> Result<Vec<DataType>> {
        let mut schemas: Vec<DataType> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            if op.inputs.len() != op.kind.arity() {
                return Err(EngineError::InvalidPlan(format!(
                    "operator #{} ({}) has {} inputs, expected {}",
                    op.id,
                    op.kind.type_name(),
                    op.inputs.len(),
                    op.kind.arity()
                )));
            }
            for &i in &op.inputs {
                if i >= op.id {
                    return Err(EngineError::InvalidPlan(format!(
                        "operator #{} references later operator #{i}",
                        op.id
                    )));
                }
            }
            let schema = match &op.kind {
                OpKind::Read { source } => source_schemas
                    .get(source)
                    .cloned()
                    .ok_or_else(|| EngineError::UnknownSource(source.clone()))?,
                kind => {
                    let input_schemas: Vec<DataType> = op
                        .inputs
                        .iter()
                        .map(|&i| schemas[i as usize].clone())
                        .collect();
                    kind.output_schema(op.id, &input_schemas)?
                }
            };
            schemas.push(schema);
        }
        // Exactly one sink: every non-sink op must feed someone.
        let consumers = self.consumers();
        for op in &self.ops {
            if op.id != self.sink && !consumers.contains_key(&op.id) {
                return Err(EngineError::InvalidPlan(format!(
                    "operator #{} ({}) is dead: no consumer and not the sink",
                    op.id,
                    op.kind.type_name()
                )));
            }
        }
        if self.sink as usize >= self.ops.len() {
            return Err(EngineError::UnknownOperator(self.sink));
        }
        Ok(schemas)
    }
}

/// Fluent builder for [`Program`]s. Operator ids are assigned sequentially,
/// so the paper's pipeline numbering (Fig. 1) can be mirrored directly.
#[derive(Default, Debug)]
pub struct ProgramBuilder {
    ops: Vec<Operator>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: OpKind, inputs: Vec<OpId>) -> OpId {
        let id = self.ops.len() as OpId;
        self.ops.push(Operator { id, kind, inputs });
        id
    }

    /// Low-level append of an arbitrary operator kind with explicit
    /// inputs. Used by plan rewriters (e.g. [`mod@crate::optimize`]); prefer
    /// the typed methods below for building programs by hand.
    pub fn push_raw(&mut self, kind: OpKind, inputs: Vec<OpId>) -> OpId {
        self.push(kind, inputs)
    }

    /// Adds a `read` of a named source.
    pub fn read(&mut self, source: impl Into<String>) -> OpId {
        self.push(
            OpKind::Read {
                source: source.into(),
            },
            vec![],
        )
    }

    /// Adds a `filter`.
    pub fn filter(&mut self, input: OpId, predicate: Expr) -> OpId {
        self.push(OpKind::Filter { predicate }, vec![input])
    }

    /// Adds a `select`.
    pub fn select(&mut self, input: OpId, exprs: Vec<NamedExpr>) -> OpId {
        self.push(OpKind::Select { exprs }, vec![input])
    }

    /// Adds a `map` with an opaque UDF.
    pub fn map(&mut self, input: OpId, udf: MapUdf) -> OpId {
        self.push(OpKind::Map { udf }, vec![input])
    }

    /// Adds an equi-`join`.
    pub fn join(
        &mut self,
        left: OpId,
        right: OpId,
        keys: Vec<(pebble_nested::Path, pebble_nested::Path)>,
    ) -> OpId {
        self.push(OpKind::Join { keys }, vec![left, right])
    }

    /// Adds a `union`.
    pub fn union(&mut self, left: OpId, right: OpId) -> OpId {
        self.push(OpKind::Union, vec![left, right])
    }

    /// Adds a `flatten` exploding `col` into `new_attr`.
    pub fn flatten(&mut self, input: OpId, col: &str, new_attr: impl Into<String>) -> OpId {
        self.push(
            OpKind::Flatten {
                col: pebble_nested::Path::parse(col),
                new_attr: new_attr.into(),
            },
            vec![input],
        )
    }

    /// Adds a fused grouping + aggregation.
    pub fn group_aggregate(
        &mut self,
        input: OpId,
        keys: Vec<GroupKey>,
        aggs: Vec<AggSpec>,
    ) -> OpId {
        self.push(OpKind::GroupAggregate { keys, aggs }, vec![input])
    }

    /// Adds the paper's *grouping/nesting* operator: groups by `keys` and
    /// collects the complete group members into a nested bag named
    /// `into` (sugar for a whole-item `collect_list`).
    pub fn nest(&mut self, input: OpId, keys: Vec<GroupKey>, into: impl Into<String>) -> OpId {
        self.group_aggregate(
            input,
            keys,
            vec![AggSpec {
                func: crate::op::AggFunc::CollectList,
                input: pebble_nested::Path::root(),
                output: into.into(),
            }],
        )
    }

    /// Finalizes the program with `sink` as the single output operator.
    pub fn build(self, sink: OpId) -> Program {
        Program {
            ops: self.ops,
            sink,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use pebble_nested::DataType;

    fn schema_map() -> FxHashMap<String, DataType> {
        let mut m = FxHashMap::default();
        m.insert(
            "t".to_string(),
            DataType::item([("a", DataType::Int), ("b", DataType::Str)]),
        );
        m
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("a").gt(Expr::lit(0i64)));
        let p = b.build(f);
        assert_eq!(p.operators().len(), 2);
        assert_eq!(p.sink(), 1);
        assert_eq!(p.reads(), vec![(0, "t")]);
        let schemas = p.infer_schemas(&schema_map()).unwrap();
        assert_eq!(schemas[0], schemas[1]);
    }

    #[test]
    fn dead_operator_rejected() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let _dead = b.filter(r, Expr::lit(true));
        let f2 = b.filter(r, Expr::lit(true));
        let p = b.build(f2);
        assert!(matches!(
            p.infer_schemas(&schema_map()),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn unknown_source_rejected() {
        let mut b = ProgramBuilder::new();
        let r = b.read("missing");
        let p = b.build(r);
        assert!(matches!(
            p.infer_schemas(&schema_map()),
            Err(EngineError::UnknownSource(_))
        ));
    }

    #[test]
    fn arity_checked() {
        // Hand-build a malformed join with one input.
        let p = Program {
            ops: vec![
                Operator {
                    id: 0,
                    kind: OpKind::Read { source: "t".into() },
                    inputs: vec![],
                },
                Operator {
                    id: 1,
                    kind: OpKind::Union,
                    inputs: vec![0],
                },
            ],
            sink: 1,
        };
        assert!(matches!(
            p.infer_schemas(&schema_map()),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn consumers_multi_use() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f1 = b.filter(r, Expr::lit(true));
        let f2 = b.filter(r, Expr::lit(true));
        let u = b.union(f1, f2);
        let p = b.build(u);
        let c = p.consumers();
        assert_eq!(c[&r], vec![f1, f2]);
        assert_eq!(c[&f1], vec![u]);
        assert!(p.infer_schemas(&schema_map()).is_ok());
    }
}
