//! Partitioned, multi-threaded executor.
//!
//! Operators execute in topological (id) order; each operator's output is
//! materialized as a list of partitions of [`Row`]s. Per-partition work is
//! parallelized with scoped threads; shuffles (join build sides and
//! grouping) hash-partition rows with the deterministic [`crate::hash`]
//! hasher, so program output is identical across runs and thread counts.
//!
//! Every operator assigns *fresh* identifiers to its output items and
//! reports the input→output associations of Tab. 6 to the generic
//! [`ProvenanceSink`]; with [`NoSink`](crate::sink::NoSink) this bookkeeping
//! is compiled away, giving the plain "Spark" baseline of Figs. 6/7.

use pebble_nested::{DataItem, DataType, Label, Path, Value};

use crate::context::Context;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::hash::{hash_one, FxHashMap};
use crate::op::{key_value, AggFunc, AggSpec, GroupKey, MapUdf, NamedExpr, OpId, OpKind};
use crate::program::Operator;
use crate::program::Program;
use crate::sink::ProvenanceSink;

/// Unique identifier of a top-level data item within one execution.
///
/// Identifiers are *deterministic*: they compose the producing operator,
/// the partition, and a per-partition sequence number
/// (`op << 48 | partition << 32 | seq`). Because partitioning is itself
/// deterministic, re-running the same program on the same context yields
/// identical identifiers — which lets provenance captured in one run be
/// compared or joined against another run's.
pub type ItemId = u64;

/// Deterministic identifier factory for one (operator, partition) pair.
#[derive(Debug)]
pub struct IdGen {
    base: u64,
    seq: u32,
}

impl IdGen {
    /// Creates the generator for `op`'s `partition`-th output partition.
    pub fn new(op: OpId, partition: usize) -> Self {
        debug_assert!(partition < (1 << 16), "too many partitions");
        IdGen {
            base: ((op as u64) << 48) | ((partition as u64) << 32),
            seq: 0,
        }
    }

    /// Next identifier.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not an Iterator; infinite id tap
    pub fn next(&mut self) -> ItemId {
        let id = self.base | self.seq as u64;
        self.seq += 1;
        id
    }
}

/// One top-level data item tagged with its identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Provenance identifier (unique per execution).
    pub id: ItemId,
    /// The data item.
    pub item: DataItem,
}

type Partitions = Vec<Vec<Row>>;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Number of partitions (= maximum worker threads per operator).
    pub partitions: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExecConfig {
            partitions: cores.min(8),
        }
    }
}

/// Result of executing a program.
pub struct RunOutput {
    /// Sink output rows, in deterministic order.
    pub rows: Vec<Row>,
    /// Inferred output schema per operator, indexed by op id.
    pub op_schemas: Vec<DataType>,
    /// Output cardinality per operator, indexed by op id.
    pub op_counts: Vec<usize>,
}

impl RunOutput {
    /// Output schema of the sink.
    pub fn schema(&self) -> &DataType {
        self.op_schemas.last().expect("program has operators")
    }

    /// Output items without identifiers.
    ///
    /// Clones every item; prefer [`RunOutput::iter_items`] when borrowing
    /// suffices.
    pub fn items(&self) -> Vec<DataItem> {
        self.rows.iter().map(|r| r.item.clone()).collect()
    }

    /// Borrowing iterator over the output items, in row order.
    pub fn iter_items(&self) -> impl Iterator<Item = &DataItem> + '_ {
        self.rows.iter().map(|r| &r.item)
    }
}

/// Executes `program` against `ctx`, reporting identifier associations to
/// `sink`.
pub fn run<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, true)
}

/// Executes `program` with operator fusion disabled: every operator runs as
/// its own pass and materializes its output rows.
///
/// Identifiers and captured provenance are specified to be byte-identical
/// to the fused [`run`]; this entry point exists so tests and the
/// differential oracle can verify that claim rather than assume it.
pub fn run_unfused<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, false)
}

fn run_with_fusion<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
    fuse: bool,
) -> Result<RunOutput> {
    let op_schemas = program.infer_schemas(&ctx.source_schemas())?;
    let ops = program.operators();
    let mut outputs: Vec<Partitions> = Vec::with_capacity(ops.len());
    let mut op_counts = Vec::with_capacity(ops.len());
    let parts = config.partitions.max(1);
    let consumers = program.consumers();

    let mut idx = 0;
    while idx < ops.len() {
        let op = &ops[idx];
        // Fuse maximal chains of single-consumer per-row operators into one
        // pass over the head's input: no intermediate Vec<Row> is
        // materialized, while per-stage id generators and association
        // buffers keep identifiers and captured provenance byte-identical
        // to the unfused execution.
        let chain_len = if fuse {
            fusable_chain_len(ops, program.sink(), &consumers, idx)
        } else {
            1
        };
        if chain_len >= 2 {
            let chain: Vec<&Operator> = ops[idx..idx + chain_len].iter().collect();
            let input = &outputs[op.inputs[0] as usize];
            let (counts, fused) = exec_fused_chain::<S>(&chain, input, sink);
            for (i, count) in counts.iter().enumerate() {
                op_counts.push(*count);
                if i + 1 < counts.len() {
                    // Fused-away intermediate: nothing consumes its rows.
                    outputs.push(Vec::new());
                }
            }
            outputs.push(fused);
            idx += chain_len;
            continue;
        }
        let result: Partitions = match &op.kind {
            OpKind::Read { source } => {
                let items = ctx
                    .source(source)
                    .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;
                exec_read::<S>(op.id, items, parts, sink)
            }
            OpKind::Filter { predicate } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_per_row::<S, _>(op.id, input, sink, |row, out, assoc, ids| {
                    if predicate.eval_bool(&row.item) {
                        let id = ids.next();
                        out.push(Row {
                            id,
                            item: row.item.clone(),
                        });
                        if S::ENABLED {
                            assoc.push((row.id, id));
                        }
                    }
                })
            }
            OpKind::Select { exprs } => {
                let input = &outputs[op.inputs[0] as usize];
                let labels: Vec<Label> = exprs.iter().map(|ne| Label::new(&ne.name)).collect();
                exec_per_row::<S, _>(op.id, input, sink, |row, out, assoc, ids| {
                    let mut item = DataItem::new();
                    for (ne, label) in exprs.iter().zip(&labels) {
                        item.push(label.clone(), ne.expr.eval(&row.item));
                    }
                    let id = ids.next();
                    out.push(Row { id, item });
                    if S::ENABLED {
                        assoc.push((row.id, id));
                    }
                })
            }
            OpKind::Map { udf } => {
                let input = &outputs[op.inputs[0] as usize];
                let f = &udf.f;
                exec_per_row::<S, _>(op.id, input, sink, |row, out, assoc, ids| {
                    let item = f(&row.item);
                    let id = ids.next();
                    out.push(Row { id, item });
                    if S::ENABLED {
                        assoc.push((row.id, id));
                    }
                })
            }
            OpKind::Flatten { col, new_attr } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_flatten::<S>(op.id, input, col, new_attr, sink)
            }
            OpKind::Join { keys } => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                exec_join::<S>(op.id, left, right, keys, sink)
            }
            OpKind::Union => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                exec_union::<S>(op.id, left, right, sink)
            }
            OpKind::GroupAggregate { keys, aggs } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_group_aggregate::<S>(op.id, input, keys, aggs, parts, sink)
            }
        };
        op_counts.push(result.iter().map(Vec::len).sum());
        outputs.push(result);
        idx += 1;
    }

    let rows: Vec<Row> = std::mem::take(&mut outputs[program.sink() as usize])
        .into_iter()
        .flatten()
        .collect();
    Ok(RunOutput {
        rows,
        op_schemas,
        op_counts,
    })
}

/// One per-row stage of a fused chain.
enum StageKind<'a> {
    Filter(&'a Expr),
    Select {
        exprs: &'a [NamedExpr],
        labels: Vec<Label>,
    },
    Map(&'a MapUdf),
}

fn stage_kind(kind: &OpKind) -> Option<StageKind<'_>> {
    match kind {
        OpKind::Filter { predicate } => Some(StageKind::Filter(predicate)),
        OpKind::Select { exprs } => Some(StageKind::Select {
            exprs,
            labels: exprs.iter().map(|ne| Label::new(&ne.name)).collect(),
        }),
        OpKind::Map { udf } => Some(StageKind::Map(udf)),
        _ => None,
    }
}

fn is_per_row(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. }
    )
}

/// Length of the maximal fusable chain starting at `ops[start]`: per-row
/// operators with consecutive ids where every link's producer feeds *only*
/// the next operator and is not the program sink. Returns 1 when nothing
/// can be fused onto the start operator.
fn fusable_chain_len(
    ops: &[Operator],
    sink: OpId,
    consumers: &FxHashMap<OpId, Vec<OpId>>,
    start: usize,
) -> usize {
    if !is_per_row(&ops[start].kind) {
        return 1;
    }
    let mut len = 1;
    while start + len < ops.len() {
        let prev = &ops[start + len - 1];
        let next = &ops[start + len];
        let single_consumer = consumers.get(&prev.id).is_some_and(|c| c == &[next.id]);
        if is_per_row(&next.kind) && next.inputs == [prev.id] && prev.id != sink && single_consumer
        {
            len += 1;
        } else {
            break;
        }
    }
    len
}

/// Executes a fused chain of per-row operators in one pass over `input`.
///
/// Per-row operators map input partition `p` to output partition `p` with
/// sequentially assigned ids, so running every stage inside one loop with
/// per-stage [`IdGen`]s reproduces exactly the ids — and, per stage, the
/// association batches — that separate passes would have produced. Only the
/// last stage's rows are materialized. Returns per-stage output counts and
/// the final stage's partitions.
fn exec_fused_chain<S: ProvenanceSink>(
    chain: &[&Operator],
    input: &Partitions,
    sink: &S,
) -> (Vec<usize>, Partitions) {
    let stages: Vec<StageKind<'_>> = chain
        .iter()
        .map(|op| stage_kind(&op.kind).expect("chain ops are per-row"))
        .collect();
    let n = stages.len();
    let results = par_map(input, |pidx, partition| {
        let mut ids: Vec<IdGen> = chain.iter().map(|op| IdGen::new(op.id, pidx)).collect();
        let mut assocs: Vec<Vec<(ItemId, ItemId)>> = (0..n)
            .map(|_| Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 }))
            .collect();
        let mut counts = vec![0usize; n];
        let mut out = Vec::with_capacity(partition.len());
        'rows: for row in partition {
            let mut item = row.item.clone();
            let mut prev_id = row.id;
            for (s, stage) in stages.iter().enumerate() {
                match stage {
                    StageKind::Filter(pred) => {
                        if !pred.eval_bool(&item) {
                            continue 'rows;
                        }
                    }
                    StageKind::Select { exprs, labels } => {
                        let mut next = DataItem::new();
                        for (ne, label) in exprs.iter().zip(labels) {
                            next.push(label.clone(), ne.expr.eval(&item));
                        }
                        item = next;
                    }
                    StageKind::Map(udf) => item = (udf.f)(&item),
                }
                let id = ids[s].next();
                if S::ENABLED {
                    assocs[s].push((prev_id, id));
                }
                counts[s] += 1;
                prev_id = id;
            }
            out.push(Row { id: prev_id, item });
        }
        (out, assocs, counts)
    });
    if S::ENABLED {
        // Stage-major, partition-ordered emission — the batch sequence an
        // unfused execution reports per operator.
        for (s, op) in chain.iter().enumerate() {
            for (_, assocs, _) in &results {
                if !assocs[s].is_empty() {
                    sink.unary_batch(op.id, &assocs[s]);
                }
            }
        }
    }
    let mut totals = vec![0usize; n];
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, _, counts) in results {
        for (s, c) in counts.iter().enumerate() {
            totals[s] += c;
        }
        partitions.push(rows);
    }
    (totals, partitions)
}

/// Runs `f` over every input partition, in parallel when there are several.
fn par_map<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync + Send,
{
    if inputs.len() <= 1 {
        return inputs.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, p)| scope.spawn(move || f(i, p)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
}

fn exec_read<S: ProvenanceSink>(
    op: OpId,
    items: &[DataItem],
    parts: usize,
    sink: &S,
) -> Partitions {
    // Contiguous chunks keep dataset order; ids are assigned in order.
    let chunk = items.len().div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    for (pidx, slice) in items.chunks(chunk).enumerate() {
        let mut ids = IdGen::new(op, pidx);
        let rows: Vec<Row> = slice
            .iter()
            .map(|item| Row {
                id: ids.next(),
                item: item.clone(),
            })
            .collect();
        if S::ENABLED {
            let ids: Vec<ItemId> = rows.iter().map(|r| r.id).collect();
            sink.read_batch(op, &ids);
        }
        out.push(rows);
    }
    if out.is_empty() {
        out.push(Vec::new());
    }
    out
}

/// Shared driver for per-row unary operators (filter/select/map).
fn exec_per_row<S, F>(op: OpId, input: &Partitions, sink: &S, body: F) -> Partitions
where
    S: ProvenanceSink,
    F: Fn(&Row, &mut Vec<Row>, &mut Vec<(ItemId, ItemId)>, &mut IdGen) + Sync + Send,
{
    let results = par_map(input, |pidx, partition| {
        let mut ids = IdGen::new(op, pidx);
        let mut out = Vec::with_capacity(partition.len());
        let mut assoc = Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
        for row in partition {
            body(row, &mut out, &mut assoc, &mut ids);
        }
        (out, assoc)
    });
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.unary_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    partitions
}

fn exec_flatten<S: ProvenanceSink>(
    op: OpId,
    input: &Partitions,
    col: &Path,
    new_attr: &str,
    sink: &S,
) -> Partitions {
    let attr = Label::new(new_attr);
    let results = par_map(input, |pidx, partition| {
        let mut ids = IdGen::new(op, pidx);
        let mut out = Vec::with_capacity(partition.len());
        let mut assoc: Vec<(ItemId, u32, ItemId)> =
            Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
        for row in partition {
            let Some(elements) = col.eval(&row.item).and_then(Value::as_collection) else {
                continue; // missing/null collections produce no rows
            };
            for (idx, element) in elements.iter().enumerate() {
                let mut item = row.item.clone();
                item.push(attr.clone(), element.clone());
                let id = ids.next();
                out.push(Row { id, item });
                if S::ENABLED {
                    assoc.push((row.id, idx as u32 + 1, id));
                }
            }
        }
        (out, assoc)
    });
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.flatten_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    partitions
}

fn join_key(item: &DataItem, paths: &[Path]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(paths.len());
    for p in paths {
        match p.eval(item) {
            Some(v) if !v.is_null() => key.push(v.clone()),
            _ => return None, // null keys never join
        }
    }
    Some(key)
}

fn exec_join<S: ProvenanceSink>(
    op: OpId,
    left: &Partitions,
    right: &Partitions,
    keys: &[(Path, Path)],
    sink: &S,
) -> Partitions {
    let left_paths: Vec<Path> = keys.iter().map(|(l, _)| l.clone()).collect();
    let right_paths: Vec<Path> = keys.iter().map(|(_, r)| r.clone()).collect();

    // Build side: hash the (smaller, by convention right) input.
    let mut build: FxHashMap<Vec<Value>, Vec<&Row>> = FxHashMap::default();
    for partition in right {
        for row in partition {
            if let Some(k) = join_key(&row.item, &right_paths) {
                build.entry(k).or_default().push(row);
            }
        }
    }

    let results = par_map(left, |pidx, partition| {
        let mut ids = IdGen::new(op, pidx);
        let mut out = Vec::with_capacity(partition.len());
        let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
            Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
        for lrow in partition {
            let Some(k) = join_key(&lrow.item, &left_paths) else {
                continue;
            };
            if let Some(matches) = build.get(&k) {
                for rrow in matches {
                    let item = lrow.item.merged(&rrow.item);
                    let id = ids.next();
                    out.push(Row { id, item });
                    if S::ENABLED {
                        assoc.push((Some(lrow.id), Some(rrow.id), id));
                    }
                }
            }
        }
        (out, assoc)
    });
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.binary_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    partitions
}

fn exec_union<S: ProvenanceSink>(
    op: OpId,
    left: &Partitions,
    right: &Partitions,
    sink: &S,
) -> Partitions {
    let relabel = |partitions: &Partitions, is_left: bool, pidx_offset: usize| -> Partitions {
        let results = par_map(partitions, |pidx, partition| {
            let mut ids = IdGen::new(op, pidx_offset + pidx);
            let mut out = Vec::with_capacity(partition.len());
            let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
                Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
            for row in partition {
                let id = ids.next();
                out.push(Row {
                    id,
                    item: row.item.clone(),
                });
                if S::ENABLED {
                    if is_left {
                        assoc.push((Some(row.id), None, id));
                    } else {
                        assoc.push((None, Some(row.id), id));
                    }
                }
            }
            (out, assoc)
        });
        let mut out = Vec::with_capacity(results.len());
        for (rows, assoc) in results {
            if S::ENABLED && !assoc.is_empty() {
                sink.binary_batch(op, &assoc);
            }
            out.push(rows);
        }
        out
    };
    let mut partitions = relabel(left, true, 0);
    partitions.extend(relabel(right, false, left.len()));
    partitions
}

fn exec_group_aggregate<S: ProvenanceSink>(
    op: OpId,
    input: &Partitions,
    keys: &[GroupKey],
    aggs: &[AggSpec],
    parts: usize,
    sink: &S,
) -> Partitions {
    // Shuffle: hash-partition rows by grouping key so each bucket can be
    // aggregated independently. Row order within a bucket follows the
    // global input order (partitions visited in order), keeping nesting
    // positions deterministic regardless of the partition count.
    let mut buckets: Vec<Vec<&Row>> = (0..parts).map(|_| Vec::new()).collect();
    for partition in input {
        for row in partition {
            let key: Vec<Value> = keys.iter().map(|k| key_value(&row.item, &k.path)).collect();
            let bucket = (hash_one(&key) as usize) % parts;
            buckets[bucket].push(row);
        }
    }

    let key_labels: Vec<Label> = keys.iter().map(|k| Label::new(&k.name)).collect();
    let agg_labels: Vec<Label> = aggs.iter().map(|a| Label::new(&a.output)).collect();
    let results = par_map(&buckets, |pidx, rows| {
        let mut ids = IdGen::new(op, pidx);
        // First-seen-ordered grouping within the bucket. The map holds an
        // index into `grouped`, so each distinct key is cloned exactly once
        // (on first sight) instead of once per probing row.
        let mut index: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
        let mut grouped: Vec<(Vec<Value>, Vec<&Row>)> = Vec::new();
        for row in rows.iter() {
            let key: Vec<Value> = keys.iter().map(|k| key_value(&row.item, &k.path)).collect();
            match index.get(&key) {
                Some(&slot) => grouped[slot].1.push(row),
                None => {
                    index.insert(key.clone(), grouped.len());
                    grouped.push((key, vec![row]));
                }
            }
        }
        let mut out = Vec::with_capacity(grouped.len());
        let mut assoc: Vec<(Vec<ItemId>, ItemId)> =
            Vec::with_capacity(if S::ENABLED { grouped.len() } else { 0 });
        for (key, members) in grouped {
            let mut item = DataItem::new();
            for (label, kv) in key_labels.iter().zip(&key) {
                item.push(label.clone(), kv.clone());
            }
            for (agg, label) in aggs.iter().zip(&agg_labels) {
                item.push(label.clone(), eval_agg(agg, &members));
            }
            let id = ids.next();
            if S::ENABLED {
                assoc.push((members.iter().map(|r| r.id).collect(), id));
            }
            out.push(KeyedRow { key, id, item });
        }
        (out, assoc)
    });
    // Bucket placement depends on the partition count, so impose a
    // canonical global order: sort all groups by key. This makes program
    // output identical across partition configurations.
    let mut keyed: Vec<KeyedRow> = Vec::new();
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.agg_batch(op, assoc);
        }
        keyed.extend(rows);
    }
    keyed.sort_by(|a, b| a.key.cmp(&b.key));
    let chunk = keyed.len().div_ceil(parts).max(1);
    let mut partitions: Partitions = Vec::with_capacity(parts);
    let mut current = Vec::with_capacity(chunk.min(keyed.len()));
    for k in keyed {
        current.push(Row {
            id: k.id,
            item: k.item,
        });
        if current.len() == chunk {
            partitions.push(std::mem::replace(&mut current, Vec::with_capacity(chunk)));
        }
    }
    if !current.is_empty() {
        partitions.push(current);
    }
    if partitions.is_empty() {
        partitions.push(Vec::new());
    }
    partitions
}

/// A produced group row together with its grouping key (used for the
/// canonical output ordering).
struct KeyedRow {
    key: Vec<Value>,
    id: ItemId,
    item: DataItem,
}

/// Evaluates one aggregate over the rows of a group.
///
/// `collect_list` keeps one value per group row — including `Null` for rows
/// where the input path is missing — so that nested positions stay aligned
/// with the group's identifier list in the operator provenance (Tab. 6).
fn eval_agg(agg: &AggSpec, members: &[&Row]) -> Value {
    let values = |skip_null: bool| {
        members.iter().filter_map(move |r| {
            let v = agg.input.eval(&r.item).cloned().unwrap_or(Value::Null);
            if skip_null && v.is_null() {
                None
            } else {
                Some(v)
            }
        })
    };
    match agg.func {
        AggFunc::Count => {
            if agg.input.is_empty() {
                Value::Int(members.len() as i64)
            } else {
                Value::Int(values(true).count() as i64)
            }
        }
        AggFunc::Sum => {
            let vs: Vec<Value> = values(true).collect();
            if vs.is_empty() {
                Value::Null
            } else if vs.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vs.iter().filter_map(Value::as_int).sum())
            } else {
                Value::Double(vs.iter().filter_map(Value::as_double).sum())
            }
        }
        AggFunc::Avg => {
            let vs: Vec<f64> = values(true).filter_map(|v| v.as_double()).collect();
            if vs.is_empty() {
                Value::Null
            } else {
                Value::Double(vs.iter().sum::<f64>() / vs.len() as f64)
            }
        }
        AggFunc::Min => values(true).min().unwrap_or(Value::Null),
        AggFunc::Max => values(true).max().unwrap_or(Value::Null),
        AggFunc::CollectList => {
            if agg.input.is_empty() {
                // Nesting of whole items: the paper's grouping operator
                // collects the complete group members into a nested bag.
                Value::Bag(
                    members
                        .iter()
                        .map(|r| Value::Item(r.item.clone()))
                        .collect(),
                )
            } else {
                Value::Bag(values(false).collect())
            }
        }
        AggFunc::CollectSet => {
            if agg.input.is_empty() {
                Value::set_from(members.iter().map(|r| Value::Item(r.item.clone())))
            } else {
                Value::set_from(values(true))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::items_of;
    use crate::expr::{Expr, SelectExpr};
    use crate::op::NamedExpr;
    use crate::program::ProgramBuilder;
    use crate::sink::NoSink;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "nums",
            items_of(vec![
                vec![("k", Value::Int(1)), ("v", Value::Int(10))],
                vec![("k", Value::Int(2)), ("v", Value::Int(20))],
                vec![("k", Value::Int(1)), ("v", Value::Int(30))],
                vec![("k", Value::Int(3)), ("v", Value::Int(40))],
            ]),
        );
        c.register(
            "names",
            items_of(vec![
                vec![("k2", Value::Int(1)), ("name", Value::str("one"))],
                vec![("k2", Value::Int(2)), ("name", Value::str("two"))],
            ]),
        );
        c
    }

    fn run_plain(p: &Program, c: &Context) -> RunOutput {
        run(p, c, ExecConfig { partitions: 3 }, &NoSink).unwrap()
    }

    #[test]
    fn filter_and_select() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let s = b.select(f, vec![NamedExpr::aliased("double_k", "k")]);
        let out = run_plain(&b.build(s), &ctx());
        let vals: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.item.get("double_k").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, [2, 1, 3]);
    }

    #[test]
    fn join_matches_and_renames() {
        let mut b = ProgramBuilder::new();
        let l = b.read("nums");
        let r = b.read("names");
        let j = b.join(l, r, vec![(Path::attr("k"), Path::attr("k2"))]);
        let out = run_plain(&b.build(j), &ctx());
        assert_eq!(out.rows.len(), 3); // k=1 twice, k=2 once, k=3 none
        let first = &out.rows[0].item;
        assert_eq!(first.get("name"), Some(&Value::str("one")));
        assert_eq!(first.get("k2"), Some(&Value::Int(1)));
    }

    #[test]
    fn union_concats() {
        let mut b = ProgramBuilder::new();
        let l = b.read("nums");
        let r = b.read("nums");
        let u = b.union(l, r);
        let out = run_plain(&b.build(u), &ctx());
        assert_eq!(out.rows.len(), 8);
    }

    #[test]
    fn group_aggregate_scalar_and_nesting() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![
                AggSpec::new(AggFunc::Sum, "v", "total"),
                AggSpec::new(AggFunc::CollectList, "v", "vs"),
                AggSpec::new(AggFunc::Count, "", "n"),
            ],
        );
        let out = run_plain(&b.build(g), &ctx());
        let mut rows: Vec<(i64, i64, usize, i64)> = out
            .rows
            .iter()
            .map(|r| {
                (
                    r.item.get("k").unwrap().as_int().unwrap(),
                    r.item.get("total").unwrap().as_int().unwrap(),
                    r.item.get("vs").unwrap().as_collection().unwrap().len(),
                    r.item.get("n").unwrap().as_int().unwrap(),
                )
            })
            .collect();
        rows.sort();
        assert_eq!(rows, [(1, 40, 2, 2), (2, 20, 1, 1), (3, 40, 1, 1)]);
    }

    #[test]
    fn flatten_explodes_with_positions() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("tags", Value::Bag(vec![Value::str("a"), Value::str("b")]))],
                vec![("tags", Value::Bag(vec![]))],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.flatten(r, "tags", "tag");
        let out = run_plain(&b.build(f), &c);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].item.get("tag"), Some(&Value::str("a")));
        // Original collection is preserved, as in Fig. 3.
        assert!(out.rows[0].item.get("tags").is_some());
    }

    #[test]
    fn deterministic_across_partition_counts() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        );
        let p = b.build(g);
        let c = ctx();
        let one = run(&p, &c, ExecConfig { partitions: 1 }, &NoSink).unwrap();
        let four = run(&p, &c, ExecConfig { partitions: 4 }, &NoSink).unwrap();
        assert!(one.iter_items().eq(four.iter_items()));
    }

    #[test]
    fn map_udf_applies() {
        use crate::op::MapUdf;
        use std::sync::Arc;
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let m = b.map(
            r,
            MapUdf {
                name: "inc".into(),
                f: Arc::new(|d| {
                    let mut d = d.clone();
                    let v = d.get("v").unwrap().as_int().unwrap();
                    d.set("v", Value::Int(v + 1));
                    d
                }),
                output_schema: None,
            },
        );
        let out = run_plain(&b.build(m), &ctx());
        assert_eq!(out.rows[0].item.get("v"), Some(&Value::Int(11)));
    }

    #[test]
    fn select_struct_restructures() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let s = b.select(
            r,
            vec![NamedExpr::new(
                "pair",
                SelectExpr::strct([
                    ("key", SelectExpr::path("k")),
                    ("value", SelectExpr::path("v")),
                ]),
            )],
        );
        let out = run_plain(&b.build(s), &ctx());
        let pair = out.rows[0].item.get("pair").unwrap().as_item().unwrap();
        assert_eq!(pair.get("key"), Some(&Value::Int(1)));
    }

    #[test]
    fn unfused_run_produces_identical_rows_and_ids() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let s = b.select(f, vec![NamedExpr::aliased("kk", "k")]);
        let p = b.build(s);
        let c = ctx();
        let cfg = ExecConfig { partitions: 3 };
        let fused = run(&p, &c, cfg, &NoSink).unwrap();
        let unfused = run_unfused(&p, &c, cfg, &NoSink).unwrap();
        assert_eq!(fused.rows, unfused.rows);
        assert_eq!(fused.op_counts, unfused.op_counts);
    }

    #[test]
    fn ids_unique_across_operators() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::lit(true));
        let out = run_plain(&b.build(f), &ctx());
        let mut ids: Vec<ItemId> = out.rows.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.rows.len());
    }
}
