//! Partitioned, morsel-driven executor.
//!
//! Operators are grouped into *units* (a fused chain of per-row operators,
//! or one read/flatten/join/union/group operator) and scheduled over the
//! persistent [`WorkerPool`]: each unit's input partitions are split into
//! **morsels** (row ranges) that workers pull from a shared queue until the
//! stage drains. Units whose inputs are ready are scheduled concurrently,
//! so independent DAG branches (e.g. both join inputs) overlap instead of
//! running serially, and no threads are spawned or joined per operator
//! (the legacy per-operator executor survives as [`crate::spawn`] for
//! differential testing and benchmarking).
//!
//! **Determinism.** Morsel→logical-partition assignment is static: a morsel
//! computes its output with a partition-local [`IdGen`] starting at
//! sequence 0, and the scheduler thread *stitches* morsel results back
//! together in morsel order, adding each partition's running sequence
//! offset to the produced identifiers. Identifiers, association tables,
//! and sink batch order are therefore byte-identical to a single-threaded
//! execution at any worker count and any morsel size (the differential
//! oracle checks this against the legacy executor).
//!
//! **Skew.** Morsel boundaries are recomputed per unit from the *actual*
//! row counts of its input partitions, so a partition fattened by an
//! upstream fan-out (flatten, join) simply yields proportionally more
//! morsels — idle workers pull them instead of waiting behind the fattest
//! partition.
//!
//! Every operator assigns *fresh* identifiers to its output items and
//! reports the input→output associations of Tab. 6 to the generic
//! [`ProvenanceSink`]; with [`NoSink`](crate::sink::NoSink) this bookkeeping
//! is compiled away, giving the plain "Spark" baseline of Figs. 6/7.
//! Association batches are emitted on the scheduler thread only, during
//! stitching, in a fixed per-operator order.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use pebble_nested::{DataItem, DataType, Label, Path, Value};
use pebble_obs::{
    diag, ColumnarStats, MorselStats, ObsConfig, OpReport, PoolStats, RunObs, RunReport, SpanEvent,
    SpanKind, SpillStats,
};

use crate::context::Context;
use crate::error::{panic_message, EngineError, Result};
use crate::expr::Expr;
use crate::fault;
use crate::hash::{hash_one, FxHashMap};
use crate::op::{key_value, AggFunc, AggSpec, GroupKey, MapUdf, NamedExpr, OpId, OpKind};
use crate::pool::WorkerPool;
use crate::program::{Operator, Program};
use crate::sink::ProvenanceSink;
use crate::spill::{self, BucketWriter, MemoryTracker, SpillDir, SpilledBucket, SpilledRows};

/// Unique identifier of a top-level data item within one execution.
///
/// Identifiers are *deterministic*: they compose the producing operator,
/// the partition, and a per-partition sequence number
/// (`op << 48 | partition << 32 | seq`). Because partitioning is itself
/// deterministic, re-running the same program on the same context yields
/// identical identifiers — which lets provenance captured in one run be
/// compared or joined against another run's.
pub type ItemId = u64;

/// Deterministic identifier factory for one (operator, partition) pair.
#[derive(Debug)]
pub struct IdGen {
    base: u64,
    seq: u32,
}

impl IdGen {
    /// Creates the generator for `op`'s `partition`-th output partition.
    pub fn new(op: OpId, partition: usize) -> Self {
        debug_assert!(partition < (1 << 16), "too many partitions");
        IdGen {
            base: ((op as u64) << 48) | ((partition as u64) << 32),
            seq: 0,
        }
    }

    /// Next identifier.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not an Iterator; infinite id tap
    pub fn next(&mut self) -> ItemId {
        let id = self.base | self.seq as u64;
        self.seq += 1;
        id
    }
}

/// One top-level data item tagged with its identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Provenance identifier (unique per execution).
    pub id: ItemId,
    /// The data item.
    pub item: DataItem,
}

pub(crate) type Partitions = Vec<Vec<Row>>;

/// A unit's materialized output: resident in memory, or spilled to disk as
/// checksummed row blocks. Consumers plan one job per morsel (memory) or
/// per block (spilled) — a spilled block simply *is* a morsel, and the
/// scheduler's stitching is byte-identical at any morsel size, so the two
/// forms are interchangeable without changing results or provenance.
#[derive(Clone)]
enum UnitOutput {
    Mem(Arc<Partitions>),
    Spilled(Arc<SpilledRows>),
    /// Spilled pre-partitioned by the consuming aggregation's grouping
    /// keys (see [`GroupSpill`]); only that aggregation may read it.
    SpilledBuckets(Arc<GroupSpill>),
}

impl UnitOutput {
    fn total_rows(&self) -> usize {
        match self {
            UnitOutput::Mem(parts) => partition_rows(parts),
            UnitOutput::Spilled(s) => s.total_rows(),
            UnitOutput::SpilledBuckets(g) => g.rows,
        }
    }

    fn n_parts(&self) -> usize {
        match self {
            UnitOutput::Mem(parts) => parts.len(),
            UnitOutput::Spilled(s) => s.parts.len(),
            UnitOutput::SpilledBuckets(g) => g.buckets.len(),
        }
    }
}

/// An operator output spilled already partitioned by its sole consuming
/// aggregation's grouping keys. Writing the spill through the shuffle hash
/// lets the aggregation skip its shuffle phase entirely — the alternative
/// (spill as plain blocks, reload them, re-partition, re-spill the
/// buckets) encodes and decodes every row twice. Bucket contents hold the
/// same rows in the same order the shuffle phase would feed them, so
/// results, ids, and provenance are byte-identical.
struct GroupSpill {
    /// The aggregation operator the buckets were partitioned for.
    for_op: OpId,
    /// One bucket per scheduler partition, indexed by shuffle hash.
    buckets: Vec<Arc<SpilledBucket>>,
    /// Total rows across buckets.
    rows: usize,
}

/// Morsels-per-worker target used when `morsel_rows` is 0 (auto).
const MORSELS_PER_WORKER: usize = 4;
/// Smallest auto-chosen morsel length.
const MORSEL_MIN: usize = 256;
/// Largest auto-chosen morsel length.
const MORSEL_MAX: usize = 8192;
/// Stages with fewer total input rows than this run inline on the
/// scheduler thread (only when the morsel size is auto): channel round
/// trips would cost more than the work itself.
const INLINE_ROWS: usize = 512;

/// Executor configuration.
///
/// Every knob has an environment override read by [`ExecConfig::default`]
/// (and thus by [`ExecConfig::with_partitions`]): `PEBBLE_PARTITIONS`,
/// `PEBBLE_WORKERS`, `PEBBLE_MORSEL_ROWS`, `PEBBLE_COLUMNAR`, and
/// `PEBBLE_MEM_BUDGET` (with `PEBBLE_SPILL_DIR` naming where spilled
/// state goes).
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Number of logical partitions. Identifiers depend on this (a
    /// partition index is baked into every [`ItemId`]), so runs are only
    /// id-comparable at equal partition counts.
    pub partitions: usize,
    /// Number of pool worker threads; `0` picks the machine default
    /// (`PEBBLE_WORKERS`, else available parallelism capped at 8). Output
    /// is byte-identical at any worker count; `1` executes inline on the
    /// calling thread without touching the pool.
    pub workers: usize,
    /// Rows per morsel; `0` sizes morsels automatically from each stage's
    /// input cardinality (targeting several morsels per worker). Output is
    /// byte-identical at any morsel size.
    pub morsel_rows: usize,
    /// Execute fused per-row chains (and shuffle/probe key hashing) with
    /// the vectorized columnar kernels (`PEBBLE_COLUMNAR=1`). Rows,
    /// identifiers, association tables, and backtraces are byte-identical
    /// to the row path; units the columnar planner cannot vectorize (UDFs)
    /// fall back to rows per unit.
    pub columnar: bool,
    /// Memory budget in bytes for pipeline-resident state (`0` =
    /// unlimited, the default; `PEBBLE_MEM_BUDGET`). When set, a
    /// [`crate::MemoryTracker`] accounts for materialized unit outputs,
    /// join build tables, and group tables; state that would exceed the
    /// budget spills to `PEBBLE_SPILL_DIR` (default: the system temp dir)
    /// and is re-read morsel-at-a-time. Rows, identifiers, association
    /// tables, and backtraces are byte-identical at every budget.
    pub mem_budget_bytes: usize,
}

/// Hard ceiling on the logical partition count: a partition index must fit
/// the 16-bit field of an [`ItemId`].
const MAX_PARTITIONS: usize = 1 << 16;

/// Reads a numeric environment knob. A missing variable is simply unset;
/// a present-but-invalid value (non-numeric, negative) falls back to the
/// default with a one-line warning — it must never panic or silently
/// misconfigure the executor. Each knob warns at most once per process.
fn env_knob(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<i64>() {
        Ok(v) if v >= 0 => Some(v as usize),
        _ => {
            diag::warn_once(name, &format!("ignoring invalid {name}={raw:?}: expected a non-negative integer, using default"));
            None
        }
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

impl Default for ExecConfig {
    fn default() -> Self {
        let mut partitions = env_knob("PEBBLE_PARTITIONS").unwrap_or_else(default_parallelism);
        if partitions > MAX_PARTITIONS {
            diag::warn_once(
                "PEBBLE_PARTITIONS.clamp",
                &format!("clamping PEBBLE_PARTITIONS={partitions} to {MAX_PARTITIONS}"),
            );
            partitions = MAX_PARTITIONS;
        }
        // Boolean knob with the same clamp-and-warn contract as the other
        // env overrides: invalid values warn once and fall back to the row
        // path; values above 1 clamp to "on" with a warning.
        let columnar = match env_knob("PEBBLE_COLUMNAR") {
            Some(v) => {
                if v > 1 {
                    diag::warn_once(
                        "PEBBLE_COLUMNAR.clamp",
                        &format!("clamping PEBBLE_COLUMNAR={v} to 1"),
                    );
                }
                v != 0
            }
            None => false,
        };
        ExecConfig {
            // `0` (explicit or from clamping a negative value) means "use
            // one partition"; `workers`/`morsel_rows` keep `0` as "auto".
            partitions: partitions.max(1),
            workers: env_knob("PEBBLE_WORKERS").unwrap_or(0),
            morsel_rows: env_knob("PEBBLE_MORSEL_ROWS").unwrap_or(0),
            columnar,
            mem_budget_bytes: env_knob("PEBBLE_MEM_BUDGET").unwrap_or(0),
        }
    }
}

impl ExecConfig {
    /// Config with `partitions` logical partitions and default (env-
    /// overridable) worker and morsel settings.
    pub fn with_partitions(partitions: usize) -> Self {
        ExecConfig {
            partitions: partitions.max(1),
            ..ExecConfig::default()
        }
    }

    /// Sets the worker count (builder style).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the morsel length in rows (builder style).
    pub fn morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows;
        self
    }

    /// Enables or disables the columnar kernels (builder style).
    pub fn columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Sets the memory budget in bytes (builder style; `0` = unlimited).
    pub fn mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Resolved worker count.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            env_knob("PEBBLE_WORKERS")
                .filter(|&w| w > 0)
                .unwrap_or_else(default_parallelism)
        }
    }

    /// Morsel length for a stage with `total` input rows.
    fn morsel_len(&self, total: usize) -> usize {
        if self.morsel_rows > 0 {
            self.morsel_rows
        } else {
            (total / (self.effective_workers() * MORSELS_PER_WORKER).max(1))
                .clamp(MORSEL_MIN, MORSEL_MAX)
        }
    }
}

/// Result of executing a program.
pub struct RunOutput {
    /// Sink output rows, in deterministic order.
    pub rows: Vec<Row>,
    /// Inferred output schema per operator, indexed by op id.
    pub op_schemas: Vec<DataType>,
    /// Output cardinality per operator, indexed by op id.
    pub op_counts: Vec<usize>,
    /// Telemetry summary of the run (see [`RunOutput::report`]).
    pub report: RunReport,
}

impl RunOutput {
    /// Output schema of the sink (`Null` for an empty program).
    pub fn schema(&self) -> &DataType {
        self.op_schemas.last().unwrap_or(&DataType::Null)
    }

    /// Output items without identifiers.
    ///
    /// Clones every item; prefer [`RunOutput::iter_items`] when borrowing
    /// suffices. Like [`RunOutput::iter_items`], reading output never
    /// perturbs identifiers or provenance.
    pub fn items(&self) -> Vec<DataItem> {
        self.rows.iter().map(|r| r.item.clone()).collect()
    }

    /// Borrowing iterator over the output items, in row order.
    ///
    /// **Guarantee:** reading the output — this iterator, [`RunOutput::items`],
    /// or [`RunOutput::report`] — never perturbs the run's rows, identifiers,
    /// or captured provenance. The report is assembled from side counters
    /// after execution finishes; runs with metrics on and off are
    /// byte-identical in rows, ids, and backtraces (enforced by the
    /// `obs_transparency` metamorphic test).
    pub fn iter_items(&self) -> impl Iterator<Item = &DataItem> + '_ {
        self.rows.iter().map(|r| &r.item)
    }

    /// The run's telemetry report.
    ///
    /// Always present: cheap structural counters (per-operator row counts,
    /// morsel counts, skew statistics) are collected for every run; timing,
    /// duration histograms, and pool gauges are populated only when the run
    /// executed with metrics enabled (`PEBBLE_METRICS=1` or an explicit
    /// [`ObsConfig`]). Serialize with [`RunReport::to_json`].
    pub fn report(&self) -> &RunReport {
        &self.report
    }
}

/// Executes `program` against `ctx`, reporting identifier associations to
/// `sink`. Observability comes from the environment
/// (`PEBBLE_METRICS`/`PEBBLE_TRACE`); use [`run_observed`] to control it
/// explicitly.
pub fn run<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, true, &ObsConfig::from_env()).0
}

/// Executes `program` with operator fusion disabled: every operator runs as
/// its own stage and materializes its output rows.
///
/// Identifiers and captured provenance are specified to be byte-identical
/// to the fused [`run`]; this entry point exists so tests and the
/// differential oracle can verify that claim rather than assume it.
pub fn run_unfused<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, false, &ObsConfig::from_env()).0
}

/// Executes `program` with an explicit observability configuration.
///
/// Unlike [`run`], the [`RunReport`] is returned even when the run fails:
/// it then describes the run *up to the contained error* (completed
/// operators keep their exact counts, the failing operator reports its
/// caught UDF panics, and `outcome`/`error` carry the failure).
pub fn run_observed<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
    obs: &ObsConfig,
) -> (Result<RunOutput>, RunReport) {
    run_with_fusion(program, ctx, config, sink, true, obs)
}

/// [`run_unfused`] with an explicit observability configuration; see
/// [`run_observed`] for the report semantics.
pub fn run_unfused_observed<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
    obs: &ObsConfig,
) -> (Result<RunOutput>, RunReport) {
    run_with_fusion(program, ctx, config, sink, false, obs)
}

fn run_with_fusion<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
    fuse: bool,
    obs_cfg: &ObsConfig,
) -> (Result<RunOutput>, RunReport) {
    let ops = program.operators();
    let op_schemas = match program.infer_schemas(&ctx.source_schemas()) {
        Ok(schemas) => schemas,
        Err(e) => {
            // The program was rejected before execution: the report still
            // describes its shape, with zero counts everywhere.
            let zeros = vec![0usize; ops.len()];
            let mut report = base_report(ops, &zeros, ctx, &config, "pool", S::ENABLED, Some(&e));
            report.metrics = obs_cfg.metrics;
            return (Err(e), report);
        }
    };
    let mut scheduler = Scheduler::new(program, ops, ctx, config, sink, fuse, obs_cfg);
    let result = scheduler.execute();
    let mut report = scheduler.build_report(result.as_ref().err());
    finish_trace(&scheduler.obs, obs_cfg, &mut report);
    if let Err(e) = result {
        return (Err(e), report);
    }
    let sink_op = program.sink() as usize;
    let Some(sink_parts) = scheduler.outputs[sink_op].take() else {
        let e = EngineError::Internal("sink unit produced no output".into());
        return (Err(e), report);
    };
    let rows: Vec<Row> = match sink_parts {
        UnitOutput::Mem(parts) => {
            let parts = Arc::try_unwrap(parts).unwrap_or_else(|arc| (*arc).clone());
            parts.into_iter().flatten().collect()
        }
        // The sink output is exempt from spilling, but stay total anyway.
        UnitOutput::Spilled(s) => match s.load() {
            Ok(parts) => parts.into_iter().flatten().collect(),
            Err(e) => return (Err(e), report),
        },
        // Pre-bucketed spills only materialize for aggregation inputs,
        // never for the (spill-exempt) sink output.
        UnitOutput::SpilledBuckets(_) => {
            let e = EngineError::Internal("sink output spilled pre-bucketed".into());
            return (Err(e), report);
        }
    };
    diag::info(|| {
        format!(
            "run ok: {} operators, {} rows out, {} morsels",
            ops.len(),
            rows.len(),
            report.morsels.executed
        )
    });
    let output = RunOutput {
        rows,
        op_schemas,
        op_counts: scheduler.op_counts.clone(),
        report: report.clone(),
    };
    (Ok(output), report)
}

/// Builds the structural part of a [`RunReport`] from a program's operators
/// and (possibly partial) per-operator output counts. Rows-in are derived
/// from the producing operators' counts — valid even for fused chains and
/// failed runs, where downstream counts are simply zero. Association-table
/// sizes are estimates from the counts and each operator's association
/// shape; capture runs overwrite `provenance` with exact totals afterwards.
pub(crate) fn base_report(
    ops: &[Operator],
    op_counts: &[usize],
    ctx: &Context,
    config: &ExecConfig,
    executor: &str,
    capture: bool,
    error: Option<&EngineError>,
) -> RunReport {
    let mut report = RunReport {
        executor: executor.to_string(),
        outcome: if error.is_some() { "error" } else { "ok" }.to_string(),
        error: error.map(|e| e.to_string()),
        partitions: config.partitions as u64,
        workers: config.effective_workers() as u64,
        morsel_rows: config.morsel_rows as u64,
        ..RunReport::default()
    };
    let mut seen_sources: Vec<&str> = Vec::new();
    for op in ops {
        if let OpKind::Read { source } = &op.kind {
            if !seen_sources.contains(&source.as_str()) {
                seen_sources.push(source);
                let rows = ctx.source(source).map(|s| s.len() as u64).unwrap_or(0);
                report.sources.push((source.clone(), rows));
            }
        }
    }
    for (i, op) in ops.iter().enumerate() {
        let rows_out = op_counts.get(i).copied().unwrap_or(0) as u64;
        let rows_in = match &op.kind {
            OpKind::Read { source } => ctx.source(source).map(|s| s.len() as u64).unwrap_or(0),
            _ => op
                .inputs
                .iter()
                .map(|&inp| op_counts.get(inp as usize).copied().unwrap_or(0) as u64)
                .sum(),
        };
        report.operators.push(OpReport {
            op: op.id as u64,
            op_type: op.kind.type_name().to_string(),
            udf: op.kind.can_panic(),
            rows_in,
            rows_out,
            assoc_entries: if capture { rows_out } else { 0 },
            assoc_bytes: if capture {
                crate::sink::estimated_assoc_bytes(&op.kind, rows_in, rows_out)
            } else {
                0
            },
            ..OpReport::default()
        });
    }
    report
}

/// Closes the run span, merges all span buffers deterministically, and
/// exports them to the configured trace path. Export failures degrade to a
/// once-per-process warning — tracing must never fail a run.
fn finish_trace(obs: &RunObs, obs_cfg: &ObsConfig, report: &mut RunReport) {
    let Some(path) = &obs_cfg.trace_path else {
        return;
    };
    let end = obs.now_ns();
    obs.record_span(SpanEvent {
        kind: SpanKind::Run,
        name: "run",
        op: u32::MAX,
        phase: 0,
        task: 0,
        worker: 0,
        start_ns: 0,
        dur_ns: end,
        rows: 0,
    });
    let spans = obs.drain_spans();
    report.spans = spans.len() as u64;
    if let Err(e) = pebble_obs::span::export(path, &spans) {
        diag::warn_once(
            "PEBBLE_TRACE.export",
            &format!("failed to export trace to {path}: {e}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Unit planning
// ---------------------------------------------------------------------------

/// A schedulable unit: one operator, or a maximal fused chain of per-row
/// operators starting at `start`.
struct Unit {
    /// Index of the first operator (operator ids equal their index).
    start: usize,
    /// Number of chained operators (1 for everything but fused chains).
    len: usize,
    /// Number of distinct units that must complete before this one starts.
    dep_count: usize,
    /// Units consuming this unit's output.
    consumers: Vec<usize>,
}

pub(crate) fn is_per_row(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. }
    )
}

/// Length of the maximal fusable chain starting at `ops[start]`: per-row
/// operators with consecutive ids where every link's producer feeds *only*
/// the next operator and is not the program sink. Returns 1 when nothing
/// can be fused onto the start operator.
pub(crate) fn fusable_chain_len(
    ops: &[Operator],
    sink: OpId,
    consumers: &FxHashMap<OpId, Vec<OpId>>,
    start: usize,
) -> usize {
    if !is_per_row(&ops[start].kind) {
        return 1;
    }
    let mut len = 1;
    while start + len < ops.len() {
        let prev = &ops[start + len - 1];
        let next = &ops[start + len];
        let single_consumer = consumers.get(&prev.id).is_some_and(|c| c == &[next.id]);
        if is_per_row(&next.kind) && next.inputs == [prev.id] && prev.id != sink && single_consumer
        {
            len += 1;
        } else {
            break;
        }
    }
    len
}

fn plan_units(
    ops: &[Operator],
    sink: OpId,
    consumers: &FxHashMap<OpId, Vec<OpId>>,
    fuse: bool,
) -> Vec<Unit> {
    let mut units: Vec<Unit> = Vec::new();
    let mut op_unit = vec![0usize; ops.len()];
    let mut idx = 0;
    while idx < ops.len() {
        let len = if fuse {
            fusable_chain_len(ops, sink, consumers, idx)
        } else {
            1
        };
        let uid = units.len();
        for slot in &mut op_unit[idx..idx + len] {
            *slot = uid;
        }
        units.push(Unit {
            start: idx,
            len,
            dep_count: 0,
            consumers: Vec::new(),
        });
        idx += len;
    }
    for uid in 0..units.len() {
        // Distinct producing units only: a self-join reading the same
        // upstream twice depends on it once.
        let mut deps: Vec<usize> = ops[units[uid].start]
            .inputs
            .iter()
            .map(|&i| op_unit[i as usize])
            .collect();
        deps.sort_unstable();
        deps.dedup();
        units[uid].dep_count = deps.len();
        for d in deps {
            units[d].consumers.push(uid);
        }
    }
    units
}

/// Partition layout of a `read`: `parts` contiguous ranges over the source,
/// padded with empty trailing partitions when the source is smaller than
/// the partition count, so the output partition count is always exactly
/// `parts` regardless of input size.
pub(crate) fn read_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let chunk = len.div_ceil(parts).max(1);
    (0..parts)
        .map(|p| (p * chunk).min(len)..((p + 1) * chunk).min(len))
        .collect()
}

fn split_range(range: Range<usize>, morsel: usize) -> Vec<Range<usize>> {
    let morsel = morsel.max(1);
    let mut out = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start.saturating_add(morsel));
        out.push(start..end);
        start = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Kernels (run on pool workers; ids are partition-local, sequence from 0)
// ---------------------------------------------------------------------------

/// One owned per-row stage of a fused chain (jobs must be `'static`).
/// `can_panic` marks stages hosting user code (UDFs): only those pay the
/// per-row `catch_unwind` that converts a panic into a typed row error.
pub(crate) enum OwnedStage {
    Filter {
        pred: Expr,
        can_panic: bool,
    },
    Select {
        exprs: Vec<NamedExpr>,
        labels: Vec<Label>,
        can_panic: bool,
    },
    Map(MapUdf),
}

pub(crate) struct ChainKernel {
    pub(crate) ops: Vec<OpId>,
    pub(crate) stages: Vec<OwnedStage>,
}

pub(crate) fn owned_stage(kind: &OpKind) -> Result<OwnedStage> {
    match kind {
        OpKind::Filter { predicate } => Ok(OwnedStage::Filter {
            can_panic: predicate.contains_udf(),
            pred: predicate.clone(),
        }),
        OpKind::Select { exprs } => Ok(OwnedStage::Select {
            labels: exprs.iter().map(|ne| Label::new(&ne.name)).collect(),
            can_panic: exprs.iter().any(|ne| ne.expr.contains_udf()),
            exprs: exprs.clone(),
        }),
        OpKind::Map { udf } => Ok(OwnedStage::Map(udf.clone())),
        other => Err(EngineError::Internal(format!(
            "not a per-row operator: {other:?}"
        ))),
    }
}

/// Runs `f`, converting a panic into a message — but only when the stage
/// can actually panic (UDF present); pure expression stages skip the
/// unwind guard entirely on the hot path.
#[inline]
fn guard<T>(can_panic: bool, f: impl FnOnce() -> T) -> std::result::Result<T, String> {
    if can_panic {
        catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p))
    } else {
        Ok(f())
    }
}

pub(crate) struct GroupKernel {
    pub(crate) op: OpId,
    pub(crate) keys: Vec<GroupKey>,
    pub(crate) aggs: Vec<AggSpec>,
    pub(crate) key_labels: Vec<Label>,
    pub(crate) agg_labels: Vec<Label>,
}

/// Join hash table keyed by the *cached* key hash.
///
/// Build computes each row's key hash exactly once and stores it as the
/// map key; probe computes each row's hash once (column-at-a-time in
/// columnar mode) and reuses it for the lookup, instead of re-walking the
/// key `Value`s through the map's hasher on every probe. Hash collisions
/// keep their keys in insertion order, so per-key match lists preserve the
/// deterministic global row order.
/// Build-side rows bucketed by key hash: each entry keeps the exact key
/// values alongside the rows that produced them, in insertion order.
type JoinBuckets = FxHashMap<u64, Vec<(Vec<Value>, Vec<Row>)>>;

#[derive(Default)]
pub(crate) struct JoinBuild {
    map: JoinBuckets,
}

impl JoinBuild {
    fn insert(&mut self, key: Vec<Value>, hash: u64, row: Row) {
        let bucket = self.map.entry(hash).or_default();
        match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some((_, rows)) => rows.push(row),
            None => bucket.push((key, vec![row])),
        }
    }

    /// Matching build rows for a probe key with a pre-computed hash.
    pub(crate) fn get(&self, key: &[&Value], hash: u64) -> Option<&[Row]> {
        let bucket = self.map.get(&hash)?;
        bucket
            .iter()
            .find(|(k, _)| k.len() == key.len() && k.iter().zip(key).all(|(a, &b)| a == b))
            .map(|(_, rows)| rows.as_slice())
    }
}

/// Association rows of a binary operator: `(left input, right input,
/// output)`, with `None` marking the absent side (e.g. union branches).
type BinaryAssoc = Vec<(Option<ItemId>, Option<ItemId>, ItemId)>;

/// Result of one pool task. Identifiers inside are partition-local
/// (sequence numbers start at 0 per morsel); the scheduler stitches in the
/// per-partition offsets.
pub(crate) enum TaskOut {
    Read {
        rows: Vec<Row>,
    },
    /// Result of a vectorized chain morsel. Identifier layout matches
    /// `Chain` (full `op|partition|seq` ids, morsel-local sequences), but
    /// 1:1 stages report *runs* instead of materialized pairs, and
    /// vectorized stages never host UDFs, so there is no error/panic
    /// bookkeeping — hard failures surface as task `Err`s.
    ColChain {
        rows: Vec<Row>,
        /// Per-stage associations (empty when the sink is disabled).
        stages: Vec<StageAssoc>,
        counts: Vec<usize>,
        /// Rows fed into the morsel (for batch-size telemetry).
        rows_in: usize,
        /// Column batches materialized by select stages.
        batches: u32,
        /// Rows considered by filter stages.
        filter_in: u64,
        /// Rows kept by filter stages.
        filter_kept: u64,
    },
    Chain {
        rows: Vec<Row>,
        assocs: Vec<Vec<(ItemId, ItemId)>>,
        counts: Vec<usize>,
        /// First row failure at the *earliest* failing stage, if any. The
        /// morsel keeps processing (skipping failed rows) so `counts` for
        /// stages before the failing one stay exact — the scheduler needs
        /// them to stitch the error's input identifier.
        err: Option<ChainErr>,
        /// Per-stage count of UDF panics caught in this morsel (telemetry;
        /// non-zero only when `err` is set, since any caught panic fails
        /// the unit).
        panics: Vec<u32>,
    },
    Flatten {
        rows: Vec<Row>,
        assoc: Vec<(ItemId, u32, ItemId)>,
    },
    Binary {
        rows: Vec<Row>,
        assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)>,
    },
    Build(JoinBuild),
    /// Grace-hash build: the build side was partitioned into on-disk
    /// buckets instead of one in-memory table.
    GraceBuild(Vec<Arc<SpilledBucket>>),
    /// One probe pass's matches for the grace-join path, morsel-local in
    /// nothing: left ordinals and both input ids are final, output ids are
    /// assigned at finalize after all passes merge.
    GraceProbe(Vec<GraceMatch>),
    Shuffle(Vec<Vec<Row>>),
    Agg {
        rows: Vec<KeyedRow>,
        assoc: Vec<(Vec<ItemId>, ItemId)>,
    },
}

/// Associations of one vectorized chain stage within one morsel.
///
/// A 1:1 stage over positionally-consecutive inputs collapses to a `Run`:
/// `(in_first + i, out_first + i)` for `i < len`. The scheduler
/// concatenates adjacent runs across morsels and hands the capture sink
/// id *ranges* instead of per-row pairs; anything non-contiguous degrades
/// to explicit `Pairs` with the row path's exact contents.
pub(crate) enum StageAssoc {
    /// `len` consecutive input→output pairs starting at the given ids.
    Run {
        in_first: ItemId,
        out_first: ItemId,
        len: usize,
    },
    /// Explicit pairs, ordered like the row kernel would emit them.
    Pairs(Vec<(ItemId, ItemId)>),
}

/// A row-level failure inside a fused chain, recorded morsel-locally.
///
/// `input_local` is the identifier of the failing stage's input row: final
/// for stage 0 (unit inputs are already stitched), morsel-local for later
/// stages (the scheduler adds the partition's stage offset). The candidate
/// kept is the one an unfused execution would report: the earliest failing
/// stage, and within it the first failing row in row order.
pub(crate) struct ChainErr {
    pub(crate) stage: usize,
    pub(crate) input_local: ItemId,
    pub(crate) message: String,
}

fn read_morsel(op: OpId, pidx: usize, items: &[DataItem]) -> TaskOut {
    let mut ids = IdGen::new(op, pidx);
    let rows = items
        .iter()
        .map(|item| Row {
            id: ids.next(),
            item: item.clone(),
        })
        .collect();
    TaskOut::Read { rows }
}

pub(crate) fn chain_morsel<S: ProvenanceSink>(
    kernel: &ChainKernel,
    pidx: usize,
    rows: &[Row],
) -> Result<TaskOut> {
    let n = kernel.stages.len();
    let mut ids: Vec<IdGen> = kernel.ops.iter().map(|&op| IdGen::new(op, pidx)).collect();
    let mut assocs: Vec<Vec<(ItemId, ItemId)>> = (0..n)
        .map(|_| Vec::with_capacity(if S::ENABLED { rows.len() } else { 0 }))
        .collect();
    let mut counts = vec![0usize; n];
    let mut panics = vec![0u32; n];
    let mut out = Vec::with_capacity(rows.len());
    let mut err: Option<ChainErr> = None;
    // Records a row failure at stage `s`: kept only if it beats the
    // current candidate, i.e. it fails at a strictly earlier stage (an
    // unfused run would stop at the earliest failing operator, where this
    // row is the first to fail in row order).
    let record = |err: &mut Option<ChainErr>, s: usize, input: ItemId, message: String| {
        if err.as_ref().is_none_or(|e| s < e.stage) {
            *err = Some(ChainErr {
                stage: s,
                input_local: input,
                message,
            });
        }
    };
    'rows: for row in rows {
        // Injected faults target the chain's head operator (the only
        // chain stage whose input identifiers are final morsel-side).
        fault::check(kernel.ops[0], row.id)?;
        let mut item = row.item.clone();
        let mut prev_id = row.id;
        for (s, stage) in kernel.stages.iter().enumerate() {
            match stage {
                OwnedStage::Filter { pred, can_panic } => {
                    match guard(*can_panic, || pred.eval_bool(&item)) {
                        Ok(true) => {}
                        Ok(false) => continue 'rows,
                        Err(msg) => {
                            panics[s] += 1;
                            record(&mut err, s, prev_id, msg);
                            continue 'rows;
                        }
                    }
                }
                OwnedStage::Select {
                    exprs,
                    labels,
                    can_panic,
                } => {
                    match guard(*can_panic, || {
                        let mut next = DataItem::new();
                        for (ne, label) in exprs.iter().zip(labels) {
                            next.push(label.clone(), ne.expr.eval(&item));
                        }
                        next
                    }) {
                        Ok(next) => item = next,
                        Err(msg) => {
                            panics[s] += 1;
                            record(&mut err, s, prev_id, msg);
                            continue 'rows;
                        }
                    }
                }
                OwnedStage::Map(udf) => match guard(true, || (udf.f)(&item)) {
                    Ok(next) => item = next,
                    Err(msg) => {
                        panics[s] += 1;
                        record(
                            &mut err,
                            s,
                            prev_id,
                            format!("udf `{}` panicked: {msg}", udf.name),
                        );
                        continue 'rows;
                    }
                },
            }
            let id = ids[s].next();
            if S::ENABLED {
                assocs[s].push((prev_id, id));
            }
            counts[s] += 1;
            prev_id = id;
        }
        out.push(Row { id: prev_id, item });
    }
    Ok(TaskOut::Chain {
        rows: out,
        assocs,
        counts,
        err,
        panics,
    })
}

pub(crate) fn flatten_morsel<S: ProvenanceSink>(
    op: OpId,
    pidx: usize,
    col: &Path,
    attr: &Label,
    rows: &[Row],
) -> Result<TaskOut> {
    let mut ids = IdGen::new(op, pidx);
    let mut out = Vec::with_capacity(rows.len());
    let mut assoc: Vec<(ItemId, u32, ItemId)> =
        Vec::with_capacity(if S::ENABLED { rows.len() } else { 0 });
    for row in rows {
        fault::check(op, row.id)?;
        let Some(elements) = col.eval(&row.item).and_then(Value::as_collection) else {
            continue; // missing/null collections produce no rows
        };
        for (idx, element) in elements.iter().enumerate() {
            let mut item = row.item.clone();
            item.push(attr.clone(), element.clone());
            let id = ids.next();
            out.push(Row { id, item });
            if S::ENABLED {
                assoc.push((row.id, idx as u32 + 1, id));
            }
        }
    }
    Ok(TaskOut::Flatten { rows: out, assoc })
}

pub(crate) fn join_key(item: &DataItem, paths: &[Path]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(paths.len());
    for p in paths {
        match p.eval(item) {
            Some(v) if !v.is_null() => key.push(v.clone()),
            _ => return None, // null keys never join
        }
    }
    Some(key)
}

/// Borrowing variant of [`join_key`]: probe rows hash and compare their
/// key without cloning a single value.
pub(crate) fn join_key_ref<'a>(item: &'a DataItem, paths: &[Path]) -> Option<Vec<&'a Value>> {
    let mut key = Vec::with_capacity(paths.len());
    for p in paths {
        match p.eval(item) {
            Some(v) if !v.is_null() => key.push(v),
            _ => return None, // null keys never join
        }
    }
    Some(key)
}

/// Builds the join hash table over the (by convention right) input,
/// computing each row's key hash exactly once. Rows are visited in
/// partition order, so per-key match lists preserve the deterministic
/// global row order.
pub(crate) fn join_build(right: &Partitions, right_paths: &[Path]) -> JoinBuild {
    let mut build = JoinBuild::default();
    for partition in right {
        for row in partition {
            if let Some(k) = join_key(&row.item, right_paths) {
                let hash = crate::hash::hash_values(&k);
                build.insert(k, hash, row.clone());
            }
        }
    }
    build
}

pub(crate) fn join_probe<S: ProvenanceSink>(
    op: OpId,
    pidx: usize,
    build: &JoinBuild,
    left_paths: &[Path],
    rows: &[Row],
) -> Result<TaskOut> {
    let mut ids = IdGen::new(op, pidx);
    let mut out = Vec::with_capacity(rows.len());
    let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
        Vec::with_capacity(if S::ENABLED { rows.len() } else { 0 });
    for lrow in rows {
        fault::check(op, lrow.id)?;
        let Some(k) = join_key_ref(&lrow.item, left_paths) else {
            continue;
        };
        let hash = crate::hash::hash_value_refs(&k);
        if let Some(matches) = build.get(&k, hash) {
            for rrow in matches {
                let item = lrow.item.merged(&rrow.item);
                let id = ids.next();
                out.push(Row { id, item });
                if S::ENABLED {
                    assoc.push((Some(lrow.id), Some(rrow.id), id));
                }
            }
        }
    }
    Ok(TaskOut::Binary { rows: out, assoc })
}

/// Columnar probe: key values and cached hashes are computed
/// column-at-a-time for the whole morsel before any table lookup. Output
/// rows, ids, and associations are identical to [`join_probe`].
pub(crate) fn join_probe_columnar<S: ProvenanceSink>(
    op: OpId,
    pidx: usize,
    build: &JoinBuild,
    keys: &crate::vector::ColKeys,
    rows: &[Row],
) -> Result<TaskOut> {
    for row in rows {
        fault::check(op, row.id)?;
    }
    let keyed = keys.probe_keys(rows);
    let mut ids = IdGen::new(op, pidx);
    let mut out = Vec::with_capacity(rows.len());
    let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
        Vec::with_capacity(if S::ENABLED { rows.len() } else { 0 });
    for (lrow, slot) in rows.iter().zip(keyed) {
        let Some((k, hash)) = slot else {
            continue;
        };
        if let Some(matches) = build.get(&k, hash) {
            for rrow in matches {
                let item = lrow.item.merged(&rrow.item);
                let id = ids.next();
                out.push(Row { id, item });
                if S::ENABLED {
                    assoc.push((Some(lrow.id), Some(rrow.id), id));
                }
            }
        }
    }
    Ok(TaskOut::Binary { rows: out, assoc })
}

/// Number of on-disk buckets a grace-hash join partitions its build side
/// into. Fixed (not budget-derived) so the bucket a key lands in — and
/// therefore the pass structure — is deterministic.
const GRACE_BUCKETS: usize = 8;

/// The grace bucket a key hash belongs to. Uses high hash bits so bucket
/// choice is independent from the [`JoinBuild`] map's use of the full hash.
fn grace_bucket(hash: u64) -> usize {
    ((hash >> 32) as usize ^ hash as usize) % GRACE_BUCKETS
}

/// One left row's matches discovered during a grace-join probe pass.
///
/// `ordinal` is the row's position within its input partition: every left
/// row's key lands in exactly one bucket, so merging all passes' matches by
/// ordinal reconstructs the exact left row order an in-memory probe visits.
pub(crate) struct GraceMatch {
    ordinal: u64,
    left_id: ItemId,
    /// `(right row id, merged output item)` in build insertion order —
    /// bucket files preserve global right row order restricted to the
    /// bucket, which is exactly the in-memory match order for these keys.
    matches: Vec<(ItemId, DataItem)>,
}

/// Build phase of a grace-hash join: streams the right input (resident or
/// spilled) into [`GRACE_BUCKETS`] on-disk bucket files keyed by join-key
/// hash. Rows without a key are dropped here, exactly as [`join_build`]
/// drops them.
fn grace_partition_build(
    op: OpId,
    dir: &SpillDir,
    right: &UnitOutput,
    right_paths: &[Path],
) -> TaskResult {
    let mut writers = Vec::with_capacity(GRACE_BUCKETS);
    for b in 0..GRACE_BUCKETS {
        let path = dir
            .file(&format!("op{op}.join{b}"))
            .map_err(|e| spill::spill_io(op, "create spill file", &e))?;
        writers.push(BucketWriter::create(op, path)?);
    }
    let mut bufs: Vec<Vec<Row>> = (0..GRACE_BUCKETS).map(|_| Vec::new()).collect();
    let mut route = |writers: &mut [BucketWriter], rows: &[Row]| -> Result<()> {
        for row in rows {
            let Some(k) = join_key(&row.item, right_paths) else {
                continue;
            };
            let b = grace_bucket(crate::hash::hash_values(&k));
            bufs[b].push(row.clone());
            if bufs[b].len() >= 512 {
                writers[b].append(&bufs[b])?;
                bufs[b].clear();
            }
        }
        Ok(())
    };
    match right {
        UnitOutput::Mem(parts) => {
            for part in parts.iter() {
                route(&mut writers, part)?;
            }
        }
        UnitOutput::Spilled(s) => {
            for blocks in &s.parts {
                for &meta in blocks {
                    route(&mut writers, &s.read_block(meta)?)?;
                }
            }
        }
        // Outputs only spill pre-bucketed when their sole consumer is an
        // aggregation — never a join build side.
        UnitOutput::SpilledBuckets(_) => {
            return Err(EngineError::Internal(
                "join build side spilled pre-bucketed".into(),
            ))
        }
    }
    let mut buckets = Vec::with_capacity(GRACE_BUCKETS);
    for (mut w, buf) in writers.into_iter().zip(bufs) {
        w.append(&buf)?;
        buckets.push(w.finish()?);
    }
    Ok(TaskOut::GraceBuild(buckets))
}

/// Rebuilds the in-memory hash table for one reloaded grace bucket. Rows
/// arrive in bucket append order (global right order restricted to the
/// bucket), so per-key match lists match the in-memory build exactly.
fn grace_bucket_build(rows: Vec<Row>, right_paths: &[Path]) -> JoinBuild {
    let mut build = JoinBuild::default();
    for row in rows {
        if let Some(k) = join_key(&row.item, right_paths) {
            let hash = crate::hash::hash_values(&k);
            build.insert(k, hash, row);
        }
    }
    build
}

/// One probe morsel of one grace pass: probes only the left rows whose key
/// hashes into `bucket`, recording matches by left ordinal for the final
/// merge. The per-row fault hook runs in the *first* pass only, so every
/// left row is checked exactly once with the same `(op, task)` layout as
/// an in-memory probe — failing runs pick identical deterministic errors.
fn grace_probe_morsel(
    op: OpId,
    start_ordinal: u64,
    bucket: usize,
    build: &JoinBuild,
    left_paths: &[Path],
    rows: &[Row],
) -> TaskResult {
    let mut out = Vec::new();
    for (i, lrow) in rows.iter().enumerate() {
        if bucket == 0 {
            fault::check(op, lrow.id)?;
        }
        let Some(k) = join_key_ref(&lrow.item, left_paths) else {
            continue;
        };
        let hash = crate::hash::hash_value_refs(&k);
        if grace_bucket(hash) != bucket {
            continue;
        }
        if let Some(matches) = build.get(&k, hash) {
            out.push(GraceMatch {
                ordinal: start_ordinal + i as u64,
                left_id: lrow.id,
                matches: matches
                    .iter()
                    .map(|rrow| (rrow.id, lrow.item.merged(&rrow.item)))
                    .collect(),
            });
        }
    }
    Ok(TaskOut::GraceProbe(out))
}

pub(crate) fn union_morsel<S: ProvenanceSink>(
    op: OpId,
    out_pidx: usize,
    is_left: bool,
    rows: &[Row],
) -> Result<TaskOut> {
    let mut ids = IdGen::new(op, out_pidx);
    let mut out = Vec::with_capacity(rows.len());
    let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
        Vec::with_capacity(if S::ENABLED { rows.len() } else { 0 });
    for row in rows {
        fault::check(op, row.id)?;
        let id = ids.next();
        out.push(Row {
            id,
            item: row.item.clone(),
        });
        if S::ENABLED {
            if is_left {
                assoc.push((Some(row.id), None, id));
            } else {
                assoc.push((None, Some(row.id), id));
            }
        }
    }
    Ok(TaskOut::Binary { rows: out, assoc })
}

/// Hash-partitions a morsel's rows into `parts` buckets by grouping key.
pub(crate) fn shuffle_morsel(keys: &[GroupKey], parts: usize, rows: &[Row]) -> Vec<Vec<Row>> {
    let mut buckets: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
    for row in rows {
        let key: Vec<Value> = keys.iter().map(|k| key_value(&row.item, &k.path)).collect();
        let bucket = (hash_one(&key) as usize) % parts;
        buckets[bucket].push(row.clone());
    }
    buckets
}

/// Columnar shuffle: bucket hashes are computed column-at-a-time over the
/// morsel's key columns without cloning a single key value; buckets are
/// bit-identical to [`shuffle_morsel`]'s.
pub(crate) fn shuffle_morsel_columnar(
    keys: &crate::vector::ColKeys,
    parts: usize,
    rows: &[Row],
) -> Vec<Vec<Row>> {
    let mut buckets: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
    for (row, b) in rows.iter().zip(keys.shuffle_buckets(rows, parts)) {
        buckets[b].push(row.clone());
    }
    buckets
}

pub(crate) fn agg_bucket<S: ProvenanceSink>(
    kernel: &GroupKernel,
    bucket: usize,
    rows: &[Row],
) -> Result<TaskOut> {
    for row in rows {
        fault::check(kernel.op, row.id)?;
    }
    let mut ids = IdGen::new(kernel.op, bucket);
    // First-seen-ordered grouping within the bucket. The map holds an
    // index into `grouped`, so each distinct key is cloned exactly once
    // (on first sight) instead of once per probing row.
    let mut index: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut grouped: Vec<(Vec<Value>, Vec<&Row>)> = Vec::new();
    for row in rows {
        let key: Vec<Value> = kernel
            .keys
            .iter()
            .map(|k| key_value(&row.item, &k.path))
            .collect();
        match index.get(&key) {
            Some(&slot) => grouped[slot].1.push(row),
            None => {
                index.insert(key.clone(), grouped.len());
                grouped.push((key, vec![row]));
            }
        }
    }
    let mut out = Vec::with_capacity(grouped.len());
    let mut assoc: Vec<(Vec<ItemId>, ItemId)> =
        Vec::with_capacity(if S::ENABLED { grouped.len() } else { 0 });
    for (key, members) in grouped {
        let mut item = DataItem::new();
        for (label, kv) in kernel.key_labels.iter().zip(&key) {
            item.push(label.clone(), kv.clone());
        }
        for (agg, label) in kernel.aggs.iter().zip(&kernel.agg_labels) {
            item.push(label.clone(), eval_agg(agg, &members));
        }
        let id = ids.next();
        if S::ENABLED {
            assoc.push((members.iter().map(|r| r.id).collect(), id));
        }
        out.push(KeyedRow { key, id, item });
    }
    Ok(TaskOut::Agg { rows: out, assoc })
}

/// A produced group row together with its grouping key (used for the
/// canonical output ordering).
pub(crate) struct KeyedRow {
    pub(crate) key: Vec<Value>,
    pub(crate) id: ItemId,
    pub(crate) item: DataItem,
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

type TaskResult = Result<TaskOut>;
type JobFn = Box<dyn FnOnce() -> TaskResult + Send + 'static>;
/// A reusable morsel kernel: `(output partition, start ordinal within the
/// partition, rows)`. Shared by resident and spilled inputs — the planner
/// wraps it per morsel or per spilled block.
type RowKernel = dyn Fn(usize, u64, &[Row]) -> TaskResult + Send + Sync;
/// `(unit, task, result, busy_ns)` — `busy_ns` is 0 on inactive runs.
type Msg = (usize, usize, TaskResult, u64);
/// `(output partition, input rows, job)` — the row count feeds the morsel
/// statistics without re-deriving it from the task result.
type PlannedJob = (usize, usize, JobFn);

#[derive(Clone, Copy, Debug)]
enum Phase {
    Idle,
    Single,
    Build,
    Probe,
    Shuffle,
    Aggregate,
}

/// Per-unit state carried across phases.
struct UnitState {
    remaining_deps: usize,
    phase: Phase,
    /// Output partition index per task, in task order (morsels of one
    /// partition are consecutive and row-ordered).
    task_pidx: Vec<usize>,
    results: Vec<Option<TaskResult>>,
    pending: usize,
    /// Number of output partitions the stitcher must produce.
    out_parts: usize,
    /// Per-task busy nanoseconds (empty on inactive runs).
    durs: Vec<u64>,
    /// Run-clock time the current phase was dispatched (active runs only).
    phase_start_ns: u64,
    /// Run-clock time the unit's first phase was dispatched.
    unit_start_ns: u64,
    aux: Option<Aux>,
    /// Unit was abandoned because an upstream unit failed (or it failed
    /// itself); it counts as completed but produces no output.
    cancelled: bool,
}

enum Aux {
    Join {
        left: UnitOutput,
        left_paths: Arc<Vec<Path>>,
        right_paths: Arc<Vec<Path>>,
    },
    /// A join whose build side grace-hash partitioned to disk: the probe
    /// phase runs one pass per bucket, accumulating matches per left
    /// partition until the final merge assigns output ids.
    GraceJoin {
        left: UnitOutput,
        left_paths: Arc<Vec<Path>>,
        right_paths: Arc<Vec<Path>>,
        buckets: Vec<Arc<SpilledBucket>>,
        next_bucket: usize,
        /// Per left partition: matches accumulated across passes.
        acc: Vec<Vec<GraceMatch>>,
    },
    Group {
        kernel: Arc<GroupKernel>,
    },
}

struct Scheduler<'a, S: ProvenanceSink> {
    ops: &'a [Operator],
    ctx: &'a Context,
    sink: &'a S,
    config: ExecConfig,
    parts: usize,
    units: Vec<Unit>,
    states: Vec<UnitState>,
    outputs: Vec<Option<UnitOutput>>,
    op_counts: Vec<usize>,
    /// The program's sink operator: its output is what the run returns, so
    /// it is tracked but never spilled.
    sink_op: usize,
    /// Memory-budget accountant (inert when no budget is configured).
    tracker: MemoryTracker,
    /// Per-run spill directory (present only under a budget); removed with
    /// everything in it when the scheduler drops.
    spill_dir: Option<Arc<SpillDir>>,
    /// Tracked resident bytes per operator output (0 for spilled outputs).
    out_bytes: Vec<usize>,
    /// Consumer units not yet finalized, per operator output; an output is
    /// dropped (and its tracked bytes released) when this reaches 0.
    remaining_uses: Vec<usize>,
    /// Spill events per operator.
    op_spills: Vec<u64>,
    /// Bytes written to spill files per operator.
    op_spill_bytes: Vec<u64>,
    /// Spilled blocks/buckets read back per operator.
    op_reloads: Vec<u64>,
    pool: Option<Arc<WorkerPool>>,
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    ready: Vec<usize>,
    completed: usize,
    /// Per-run observability runtime (the shared inert singleton when both
    /// metrics and tracing are off — the hot path then only ever branches
    /// on `obs.active()`).
    obs: Arc<RunObs>,
    /// Morsels dispatched per operator (attributed to unit heads).
    op_morsels: Vec<u64>,
    /// Busy kernel nanoseconds per operator (metrics runs; unit heads).
    op_busy_ns: Vec<u64>,
    /// UDF panics caught per operator.
    op_panics: Vec<u64>,
    /// Morsel size distribution (always collected; pure counters).
    morsel_stats: MorselStats,
    /// Columnar-path counters (only meaningful when `config.columnar`).
    col_stats: ColumnarStats,
    /// Jobs handed to the pool (vs run inline) this run.
    pool_jobs: u64,
    /// Peak queue depth sampled from the pool's lock-free gauges.
    pool_max_queue: u64,
    /// Peak active-worker count sampled from the pool's gauges.
    pool_max_active: u64,
    /// First failure in deterministic order, keyed by `(operator id, task
    /// index)`. Execution keeps draining (and even starting independent
    /// units) after a failure so the *minimum* key wins — the same error a
    /// serial, unfused execution stops at — then returns it once all
    /// in-flight work has settled and the workers are idle again.
    error: Option<((u32, usize), EngineError)>,
}

impl<'a, S: ProvenanceSink> Scheduler<'a, S> {
    fn new(
        program: &Program,
        ops: &'a [Operator],
        ctx: &'a Context,
        config: ExecConfig,
        sink: &'a S,
        fuse: bool,
        obs_cfg: &ObsConfig,
    ) -> Self {
        let consumers = program.consumers();
        let units = plan_units(ops, program.sink(), &consumers, fuse);
        let states = units
            .iter()
            .map(|u| UnitState {
                remaining_deps: u.dep_count,
                phase: Phase::Idle,
                task_pidx: Vec::new(),
                results: Vec::new(),
                pending: 0,
                out_parts: 0,
                durs: Vec::new(),
                phase_start_ns: 0,
                unit_start_ns: 0,
                aux: None,
                cancelled: false,
            })
            .collect();
        let workers = config.effective_workers();
        let pool = (workers > 1).then(|| WorkerPool::with_workers(workers));
        let (tx, rx) = channel();
        let tracker = MemoryTracker::new(config.mem_budget_bytes);
        let spill_dir = tracker.enabled().then(|| Arc::new(SpillDir::for_run()));
        let mut remaining_uses = vec![0usize; ops.len()];
        for unit in &units {
            let mut inputs: Vec<usize> =
                ops[unit.start].inputs.iter().map(|&i| i as usize).collect();
            inputs.sort_unstable();
            inputs.dedup();
            for op in inputs {
                remaining_uses[op] += 1;
            }
        }
        Scheduler {
            ops,
            ctx,
            sink,
            config,
            parts: config.partitions.max(1),
            units,
            states,
            outputs: vec![None; ops.len()],
            op_counts: vec![0; ops.len()],
            sink_op: program.sink() as usize,
            tracker,
            spill_dir,
            out_bytes: vec![0; ops.len()],
            remaining_uses,
            op_spills: vec![0; ops.len()],
            op_spill_bytes: vec![0; ops.len()],
            op_reloads: vec![0; ops.len()],
            pool,
            tx,
            rx,
            ready: Vec::new(),
            completed: 0,
            obs: RunObs::new(obs_cfg, workers),
            op_morsels: vec![0; ops.len()],
            op_busy_ns: vec![0; ops.len()],
            op_panics: vec![0; ops.len()],
            morsel_stats: MorselStats::default(),
            col_stats: ColumnarStats::default(),
            pool_jobs: 0,
            pool_max_queue: 0,
            pool_max_active: 0,
            error: None,
        }
    }

    fn execute(&mut self) -> Result<()> {
        for u in 0..self.units.len() {
            if self.states[u].remaining_deps == 0 {
                self.ready.push(u);
            }
        }
        while self.completed < self.units.len() {
            while let Some(u) = self.ready.pop() {
                self.start_unit(u)?;
            }
            if self.completed == self.units.len() {
                break;
            }
            // Event-driven hand-off: as soon as a unit's last morsel lands,
            // its output is stitched and every newly-ready consumer is
            // scheduled — workers never wait on an operator barrier.
            let (u, t, res, dur) = self
                .rx
                .recv()
                .map_err(|_| EngineError::Internal("worker pool disconnected mid-run".into()))?;
            if self.obs.metrics() {
                // Lock-free gauge sample per completion: peak queue depth
                // and worker utilization without touching the job lock.
                if let Some(pool) = &self.pool {
                    self.pool_max_queue = self.pool_max_queue.max(pool.queue_depth());
                    self.pool_max_active = self.pool_max_active.max(pool.active_workers());
                }
            }
            let st = &mut self.states[u];
            if !st.durs.is_empty() {
                st.durs[t] = dur;
            }
            st.results[t] = Some(res);
            st.pending -= 1;
            if st.pending == 0 {
                self.phase_done(u)?;
            }
        }
        match self.error.take() {
            Some((_, err)) => Err(err),
            None => Ok(()),
        }
    }

    /// Records a unit failure candidate; the smallest `(op, task)` key
    /// wins. Two units never share an operator id, so the comparison
    /// orders failures exactly like a serial unfused execution would
    /// encounter them.
    fn record_error(&mut self, key: (u32, usize), err: EngineError) {
        if self.error.as_ref().is_none_or(|(k, _)| key < *k) {
            self.error = Some((key, err));
        }
    }

    fn input(&self, op: OpId) -> Result<UnitOutput> {
        self.outputs[op as usize].clone().ok_or_else(|| {
            EngineError::Internal(format!("operator #{op} input was never materialized"))
        })
    }

    /// The run's spill directory (only present under a memory budget).
    fn spill_dir(&self) -> Result<Arc<SpillDir>> {
        self.spill_dir
            .as_ref()
            .map(Arc::clone)
            .ok_or_else(|| EngineError::Internal("spill requested without a budget".into()))
    }

    fn start_unit(&mut self, u: usize) -> Result<()> {
        let ops = self.ops;
        let ctx = self.ctx;
        let (start, len) = (self.units[u].start, self.units[u].len);
        let head = &ops[start];
        match &head.kind {
            OpKind::Read { source } => {
                let items_src = ctx
                    .source(source)
                    .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;
                let op = head.id;
                let total = items_src.len();
                let items: Arc<Vec<DataItem>> = Arc::new(items_src.to_vec());
                let morsel = self.config.morsel_len(total);
                let mut jobs: Vec<PlannedJob> = Vec::new();
                for (p, range) in read_ranges(total, self.parts).into_iter().enumerate() {
                    for mr in split_range(range, morsel) {
                        let items = Arc::clone(&items);
                        let rows = mr.len();
                        jobs.push((
                            p,
                            rows,
                            Box::new(move || Ok(read_morsel(op, p, &items[mr]))),
                        ));
                    }
                }
                self.states[u].out_parts = self.parts;
                self.dispatch(u, Phase::Single, jobs, total)
            }
            OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. } => {
                let chain_ops: Vec<OpId> = ops[start..start + len].iter().map(|o| o.id).collect();
                let stages = ops[start..start + len]
                    .iter()
                    .map(|o| owned_stage(&o.kind))
                    .collect::<Result<Vec<_>>>()?;
                let input = self.input(head.inputs[0])?;
                let total = input.total_rows();
                if self.config.columnar {
                    // Vectorize the whole unit when the planner accepts it;
                    // otherwise the unit falls back to the row path (UDF
                    // stages, duplicate select labels).
                    if let Some(ck) = crate::vector::plan_columnar(chain_ops.clone(), &stages) {
                        let ck = Arc::new(ck);
                        let kernel: Arc<RowKernel> = Arc::new(move |p, _start, rows: &[Row]| {
                            crate::vector::col_chain_morsel::<S>(&ck, p, rows)
                        });
                        let jobs = self.plan_row_jobs(&input, 0, total, kernel);
                        self.states[u].out_parts = input.n_parts();
                        return self.dispatch(u, Phase::Single, jobs, total);
                    }
                    self.col_stats.fallback_units += 1;
                }
                let ck = Arc::new(ChainKernel {
                    ops: chain_ops,
                    stages,
                });
                let kernel: Arc<RowKernel> =
                    Arc::new(move |p, _start, rows: &[Row]| chain_morsel::<S>(&ck, p, rows));
                let jobs = self.plan_row_jobs(&input, 0, total, kernel);
                self.states[u].out_parts = input.n_parts();
                self.dispatch(u, Phase::Single, jobs, total)
            }
            OpKind::Flatten { col, new_attr } => {
                let op = head.id;
                let col = Arc::new(col.clone());
                let attr = Label::new(new_attr);
                let input = self.input(head.inputs[0])?;
                let total = input.total_rows();
                let kernel: Arc<RowKernel> = Arc::new(move |p, _start, rows: &[Row]| {
                    flatten_morsel::<S>(op, p, &col, &attr, rows)
                });
                let jobs = self.plan_row_jobs(&input, 0, total, kernel);
                self.states[u].out_parts = input.n_parts();
                self.dispatch(u, Phase::Single, jobs, total)
            }
            OpKind::Join { keys } => {
                let op = head.id;
                let left = self.input(head.inputs[0])?;
                let right = self.input(head.inputs[1])?;
                let left_paths: Arc<Vec<Path>> =
                    Arc::new(keys.iter().map(|(l, _)| l.clone()).collect());
                let right_paths: Arc<Vec<Path>> =
                    Arc::new(keys.iter().map(|(_, r)| r.clone()).collect());
                let total = right.total_rows();
                // Grace-hash when the in-memory build table would not fit:
                // the build side already spilled, or another copy of its
                // tracked bytes would exceed the budget (the table clones
                // every keyed row).
                let grace = self.tracker.enabled()
                    && (matches!(right, UnitOutput::Spilled(_))
                        || self
                            .tracker
                            .would_exceed(self.out_bytes[head.inputs[1] as usize]));
                let job: JobFn = if grace {
                    if let UnitOutput::Spilled(s) = &right {
                        self.op_reloads[s.op as usize] +=
                            s.parts.iter().map(Vec::len).sum::<usize>() as u64;
                    }
                    let dir = self.spill_dir()?;
                    let right_paths = Arc::clone(&right_paths);
                    Box::new(move || grace_partition_build(op, &dir, &right, &right_paths))
                } else {
                    let right_paths = Arc::clone(&right_paths);
                    Box::new(move || {
                        let build = match &right {
                            UnitOutput::Mem(parts) => join_build(parts, &right_paths),
                            UnitOutput::Spilled(s) => {
                                let parts = s.load()?;
                                join_build(&parts, &right_paths)
                            }
                            UnitOutput::SpilledBuckets(_) => {
                                return Err(EngineError::Internal(
                                    "join build side spilled pre-bucketed".into(),
                                ))
                            }
                        };
                        Ok(TaskOut::Build(build))
                    })
                };
                self.states[u].aux = Some(Aux::Join {
                    left,
                    left_paths,
                    right_paths,
                });
                self.dispatch(u, Phase::Build, vec![(0, total, job)], total)
            }
            OpKind::Union => {
                let op = head.id;
                let left = self.input(head.inputs[0])?;
                let right = self.input(head.inputs[1])?;
                let offset = left.n_parts();
                // Both sides share one morsel length derived from the
                // combined cardinality.
                let total = left.total_rows() + right.total_rows();
                let mut jobs: Vec<PlannedJob> = Vec::new();
                for (input, is_left, pidx_offset) in [(&left, true, 0), (&right, false, offset)] {
                    let kernel: Arc<RowKernel> = Arc::new(move |out_pidx, _start, rows: &[Row]| {
                        union_morsel::<S>(op, out_pidx, is_left, rows)
                    });
                    jobs.extend(self.plan_row_jobs(input, pidx_offset, total, kernel));
                }
                self.states[u].out_parts = left.n_parts() + right.n_parts();
                self.dispatch(u, Phase::Single, jobs, total)
            }
            OpKind::GroupAggregate { keys, aggs } => {
                let kernel = Arc::new(GroupKernel {
                    op: head.id,
                    key_labels: keys.iter().map(|k| Label::new(&k.name)).collect(),
                    agg_labels: aggs.iter().map(|a| Label::new(&a.output)).collect(),
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                });
                let input = self.input(head.inputs[0])?;
                if let UnitOutput::SpilledBuckets(g) = &input {
                    // The input was spilled already partitioned by this
                    // aggregation's keys — skip the shuffle phase and feed
                    // each bucket straight to an aggregation job.
                    if g.for_op != head.id {
                        return Err(EngineError::Internal(format!(
                            "pre-bucketed spill for operator #{} read by operator #{}",
                            g.for_op, head.id
                        )));
                    }
                    let op = head.id;
                    let total = g.rows;
                    let mut jobs: Vec<PlannedJob> = Vec::new();
                    for (b, bucket) in g.buckets.iter().enumerate() {
                        if bucket.rows() == 0 {
                            continue; // empty buckets produce nothing
                        }
                        self.op_reloads[op as usize] += 1;
                        let kernel = Arc::clone(&kernel);
                        let bucket = Arc::clone(bucket);
                        let n_rows = bucket.rows();
                        jobs.push((
                            b,
                            n_rows,
                            Box::new(move || {
                                let rows = bucket.load()?;
                                agg_bucket::<S>(&kernel, b, &rows)
                            }),
                        ));
                    }
                    return self.dispatch(u, Phase::Aggregate, jobs, total);
                }
                let total = input.total_rows();
                let parts = self.parts;
                let shuffle: Arc<RowKernel> = if self.config.columnar {
                    let ckeys = Arc::new(crate::vector::ColKeys::compile_group(keys));
                    Arc::new(move |_p, _start, rows: &[Row]| {
                        Ok(TaskOut::Shuffle(shuffle_morsel_columnar(
                            &ckeys, parts, rows,
                        )))
                    })
                } else {
                    let keys = Arc::new(keys.clone());
                    Arc::new(move |_p, _start, rows: &[Row]| {
                        Ok(TaskOut::Shuffle(shuffle_morsel(&keys, parts, rows)))
                    })
                };
                let jobs = self.plan_row_jobs(&input, 0, total, shuffle);
                self.states[u].aux = Some(Aux::Group { kernel });
                self.dispatch(u, Phase::Shuffle, jobs, total)
            }
        }
    }

    /// Plans one job per morsel of every input partition, in
    /// partition-major order (the stitcher relies on this ordering).
    ///
    /// A resident input is sliced into morsels whose length derives from
    /// `morsel_total` — usually the input's own cardinality, so partitions
    /// fattened by an upstream fan-out yield proportionally more morsels
    /// (skew-aware re-morselization); union passes the combined two-sided
    /// total so both sides share one morsel length. A spilled input plans
    /// one job per on-disk block, which decodes the block worker-side and
    /// applies the same kernel — a spilled block simply *is* a morsel, and
    /// output is specified byte-identical at any morsel boundaries.
    fn plan_row_jobs(
        &mut self,
        input: &UnitOutput,
        out_pidx_offset: usize,
        morsel_total: usize,
        kernel: Arc<RowKernel>,
    ) -> Vec<PlannedJob> {
        let mut jobs: Vec<PlannedJob> = Vec::new();
        match input {
            UnitOutput::Mem(parts) => {
                let morsel = self.config.morsel_len(morsel_total);
                for p in 0..parts.len() {
                    for mr in split_range(0..parts[p].len(), morsel) {
                        let parts = Arc::clone(parts);
                        let kernel = Arc::clone(&kernel);
                        let rows = mr.len();
                        let out_p = out_pidx_offset + p;
                        let start = mr.start as u64;
                        jobs.push((
                            out_p,
                            rows,
                            Box::new(move || kernel(out_p, start, &parts[p][mr])),
                        ));
                    }
                }
            }
            UnitOutput::Spilled(s) => {
                self.op_reloads[s.op as usize] +=
                    s.parts.iter().map(Vec::len).sum::<usize>() as u64;
                for (p, blocks) in s.parts.iter().enumerate() {
                    let mut start = 0u64;
                    for &meta in blocks {
                        let s = Arc::clone(s);
                        let kernel = Arc::clone(&kernel);
                        let out_p = out_pidx_offset + p;
                        jobs.push((
                            out_p,
                            meta.rows,
                            Box::new(move || {
                                let rows = s.read_block(meta)?;
                                kernel(out_p, start, &rows)
                            }),
                        ));
                        start += meta.rows as u64;
                    }
                }
            }
            UnitOutput::SpilledBuckets(_) => {
                // set_output only pre-buckets an output whose sole consumer
                // is an aggregation, and the aggregation consumes buckets
                // directly without planning row jobs.
                unreachable!("pre-bucketed spill read by a non-aggregation consumer")
            }
        }
        jobs
    }

    /// Label for spans/metric attribution: the unit-head operator id, a
    /// static phase name, and the phase ordinal within the unit.
    fn phase_label(&self, u: usize, phase: Phase) -> (u32, &'static str, u8) {
        let head = &self.ops[self.units[u].start];
        match phase {
            Phase::Build => (head.id, "join.build", 0),
            Phase::Probe => (head.id, "join.probe", 1),
            Phase::Shuffle => (head.id, "aggregation.shuffle", 0),
            Phase::Aggregate => (head.id, "aggregation.agg", 1),
            Phase::Idle | Phase::Single => (head.id, head.kind.type_name(), 0),
        }
    }

    fn dispatch(
        &mut self,
        u: usize,
        phase: Phase,
        jobs: Vec<PlannedJob>,
        total_rows: usize,
    ) -> Result<()> {
        let inline = self.pool.is_none()
            || jobs.is_empty()
            || (total_rows < INLINE_ROWS && self.config.morsel_rows == 0);
        let active = self.obs.active();
        let (op, name, phase_ord) = self.phase_label(u, phase);
        // Structural counters are always on: plain u64 additions per morsel
        // *dispatch* (not per row), so even metrics-off reports carry morsel
        // counts and skew statistics.
        self.op_morsels[op as usize] += jobs.len() as u64;
        for (_, rows, _) in &jobs {
            self.morsel_stats.observe(*rows as u64);
        }
        {
            let st = &mut self.states[u];
            if matches!(st.phase, Phase::Idle) && active {
                st.unit_start_ns = self.obs.now_ns();
            }
            st.phase = phase;
            st.task_pidx = jobs.iter().map(|(p, _, _)| *p).collect();
            st.results = jobs.iter().map(|_| None).collect();
            st.pending = jobs.len();
            st.durs = if active {
                vec![0; jobs.len()]
            } else {
                Vec::new()
            };
            st.phase_start_ns = if active { self.obs.now_ns() } else { 0 };
        }
        if inline {
            // Same containment as the pool path: a panicking job becomes a
            // typed task failure instead of unwinding through the caller.
            let mut outs = Vec::with_capacity(jobs.len());
            let mut durs = Vec::new();
            for (t, (_, rows, job)) in jobs.into_iter().enumerate() {
                let start_ns = if active { self.obs.now_ns() } else { 0 };
                let out = catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|p| {
                    Err(EngineError::WorkerPanic {
                        payload: panic_message(&*p),
                    })
                });
                if active {
                    let dur = self.obs.now_ns().saturating_sub(start_ns);
                    self.obs.record_morsel(
                        name,
                        op,
                        phase_ord,
                        t as u32,
                        rows as u64,
                        start_ns,
                        dur,
                    );
                    durs.push(dur);
                }
                outs.push(out);
            }
            let st = &mut self.states[u];
            for (t, out) in outs.into_iter().enumerate() {
                st.results[t] = Some(out);
            }
            st.durs = durs;
            st.pending = 0;
            self.phase_done(u)
        } else {
            let Some(pool) = self.pool.as_ref() else {
                return Err(EngineError::Internal(
                    "pooled dispatch without a pool".into(),
                ));
            };
            self.pool_jobs += jobs.len() as u64;
            for (t, (_, rows, job)) in jobs.into_iter().enumerate() {
                let tx = self.tx.clone();
                // Guaranteed delivery: the pool catches the panic and still
                // invokes the delivery closure, so the scheduler's pending
                // count always drains — a panicking morsel can no longer
                // strand the run (or the pool) waiting on a result that
                // will never arrive.
                if active {
                    // Instrumented wrapper: timestamps around the kernel,
                    // shard counters / span recorded worker-side.
                    let obs = Arc::clone(&self.obs);
                    pool.submit_job(
                        move || {
                            let start_ns = obs.now_ns();
                            let out = job();
                            let dur = obs.now_ns().saturating_sub(start_ns);
                            obs.record_morsel(
                                name,
                                op,
                                phase_ord,
                                t as u32,
                                rows as u64,
                                start_ns,
                                dur,
                            );
                            (out, dur)
                        },
                        move |res| {
                            let (out, dur) = match res {
                                Ok((out, dur)) => (out, dur),
                                Err(p) => (
                                    Err(EngineError::WorkerPanic {
                                        payload: panic_message(&*p),
                                    }),
                                    0,
                                ),
                            };
                            let _ = tx.send((u, t, out, dur));
                        },
                    );
                } else {
                    pool.submit_job(job, move |res| {
                        let out = match res {
                            Ok(out) => out,
                            Err(p) => Err(EngineError::WorkerPanic {
                                payload: panic_message(&*p),
                            }),
                        };
                        let _ = tx.send((u, t, out, 0));
                    });
                }
            }
            Ok(())
        }
    }

    /// Derives the deterministic error of a failed unit, records it, and
    /// cancels the unit's downstream closure. Candidates are ordered by
    /// `(operator id, task index)`; task order is partition-major row
    /// order, so the winner is the first failure a serial unfused
    /// execution would hit.
    fn fail_unit(&mut self, u: usize) -> Result<()> {
        enum Cand<'x> {
            Hard(&'x EngineError),
            Chain(&'x ChainErr),
        }
        let start = self.units[u].start;
        let head_op = self.ops[start].id;
        let task_pidx = std::mem::take(&mut self.states[u].task_pidx);
        let results = std::mem::take(&mut self.states[u].results);
        // Telemetry: total up the UDF panics every morsel of the failing
        // phase contained, attributed per chain stage. (Successful units
        // never carry panics — any caught panic fails its unit.)
        for slot in results.iter() {
            if let Some(Ok(TaskOut::Chain { panics, .. })) = slot {
                for (s, &n) in panics.iter().enumerate() {
                    self.op_panics[self.ops[start + s].id as usize] += n as u64;
                }
            }
        }
        let mut best: Option<((u32, usize), Cand)> = None;
        for (t, slot) in results.iter().enumerate() {
            let (key, cand) = match slot {
                // A hard task failure (worker panic, injected fault, …);
                // panics carry no operator, attribute them to the unit
                // head (faults only panic at unit heads — see `fault`).
                Some(Err(e)) => ((e.op().unwrap_or(head_op), t), Cand::Hard(e)),
                // A row failure embedded in a chain morsel.
                Some(Ok(TaskOut::Chain { err: Some(ce), .. })) => {
                    ((self.ops[start + ce.stage].id, t), Cand::Chain(ce))
                }
                _ => continue,
            };
            if best.as_ref().is_none_or(|(k, _)| key < *k) {
                best = Some((key, cand));
            }
        }
        let Some(((op_key, t), cand)) = best else {
            return Err(EngineError::Internal(
                "unit marked failed without a failing task".into(),
            ));
        };
        let err = match cand {
            Cand::Hard(e) => e.clone(),
            Cand::Chain(ce) => {
                let mut item = ce.input_local;
                if ce.stage > 0 {
                    // Morsel-local input id: add the count of stage-s-1
                    // outputs produced by earlier morsels of the same
                    // partition (exact even in failed siblings — failures
                    // at later stages don't disturb earlier-stage counts,
                    // and a sibling failing *earlier* would have won the
                    // candidate selection above instead).
                    let p = task_pidx[t];
                    let mut offset = 0u64;
                    for (t2, slot) in results.iter().enumerate().take(t) {
                        if task_pidx[t2] != p {
                            continue;
                        }
                        match slot {
                            Some(Ok(TaskOut::Chain { counts, .. })) => {
                                offset += counts[ce.stage - 1] as u64;
                            }
                            _ => {
                                return Err(EngineError::Internal(
                                    "chain error offset needs sibling morsel counts".into(),
                                ))
                            }
                        }
                    }
                    item += offset;
                }
                EngineError::RowError {
                    op: op_key,
                    item,
                    message: ce.message.clone(),
                }
            }
        };
        self.record_error((op_key, t), err);
        self.states[u].cancelled = true;
        self.completed += 1;
        self.record_unit_span(u);
        self.cancel_consumers(u);
        Ok(())
    }

    /// Marks every transitive consumer of `u` as cancelled-complete: its
    /// input will never materialize, so it must not be waited for (that
    /// was the hang) nor started (its `remaining_deps` never reaches 0).
    fn cancel_consumers(&mut self, u: usize) {
        let mut stack = self.units[u].consumers.clone();
        while let Some(c) = stack.pop() {
            if self.states[c].cancelled {
                continue;
            }
            self.states[c].cancelled = true;
            self.completed += 1;
            stack.extend(self.units[c].consumers.iter().copied());
        }
    }

    /// Folds the finished phase's telemetry into the per-operator
    /// accumulators: busy time attributed to the unit-head operator (fused
    /// chains report under their head — documented in the report schema)
    /// and a phase span covering dispatch → completion.
    fn harvest_phase(&mut self, u: usize) {
        if !self.obs.active() {
            return;
        }
        let (op, name, phase_ord) = self.phase_label(u, self.states[u].phase);
        let durs = std::mem::take(&mut self.states[u].durs);
        self.op_busy_ns[op as usize] += durs.iter().sum::<u64>();
        if self.obs.tracing() {
            let start_ns = self.states[u].phase_start_ns;
            let dur_ns = self.obs.now_ns().saturating_sub(start_ns);
            self.obs.record_span(SpanEvent {
                kind: SpanKind::Phase,
                name,
                op,
                phase: phase_ord,
                task: 0,
                worker: 0,
                start_ns,
                dur_ns,
                rows: 0,
            });
        }
    }

    /// Records the unit-level span once the unit settles (finalized or
    /// failed).
    fn record_unit_span(&mut self, u: usize) {
        if !self.obs.tracing() {
            return;
        }
        let head = &self.ops[self.units[u].start];
        let start_ns = self.states[u].unit_start_ns;
        let dur_ns = self.obs.now_ns().saturating_sub(start_ns);
        self.obs.record_span(SpanEvent {
            kind: SpanKind::Unit,
            name: head.kind.type_name(),
            op: head.id,
            phase: 0,
            task: 0,
            worker: 0,
            start_ns,
            dur_ns,
            rows: 0,
        });
    }

    fn phase_done(&mut self, u: usize) -> Result<()> {
        self.harvest_phase(u);
        let failed = self.states[u].results.iter().any(|r| {
            matches!(
                r,
                Some(Err(_)) | Some(Ok(TaskOut::Chain { err: Some(_), .. }))
            )
        });
        if failed {
            return self.fail_unit(u);
        }
        match self.states[u].phase {
            Phase::Idle => Err(EngineError::Internal("phase_done on an idle unit".into())),
            Phase::Single | Phase::Aggregate => self.finalize_unit(u),
            Phase::Probe => {
                if matches!(self.states[u].aux, Some(Aux::GraceJoin { .. })) {
                    self.grace_pass_done(u)
                } else {
                    self.finalize_unit(u)
                }
            }
            Phase::Build => {
                let out = self.states[u].results.first_mut().and_then(Option::take);
                match out {
                    Some(Ok(TaskOut::Build(map))) => {
                        let build = Arc::new(map);
                        let Some(Aux::Join {
                            left, left_paths, ..
                        }) = self.states[u].aux.take()
                        else {
                            return Err(EngineError::Internal(
                                "join unit lost its probe-side state".into(),
                            ));
                        };
                        let op = self.ops[self.units[u].start].id;
                        let total = left.total_rows();
                        let ckeys = self
                            .config
                            .columnar
                            .then(|| Arc::new(crate::vector::ColKeys::compile_paths(&left_paths)));
                        let kernel: Arc<RowKernel> = match ckeys {
                            Some(ckeys) => Arc::new(move |p, _start, rows: &[Row]| {
                                join_probe_columnar::<S>(op, p, &build, &ckeys, rows)
                            }),
                            None => Arc::new(move |p, _start, rows: &[Row]| {
                                join_probe::<S>(op, p, &build, &left_paths, rows)
                            }),
                        };
                        let jobs = self.plan_row_jobs(&left, 0, total, kernel);
                        self.states[u].out_parts = left.n_parts();
                        self.dispatch(u, Phase::Probe, jobs, total)
                    }
                    Some(Ok(TaskOut::GraceBuild(buckets))) => {
                        let Some(Aux::Join {
                            left,
                            left_paths,
                            right_paths,
                        }) = self.states[u].aux.take()
                        else {
                            return Err(EngineError::Internal(
                                "join unit lost its probe-side state".into(),
                            ));
                        };
                        let op = self.ops[self.units[u].start].id;
                        self.op_spills[op as usize] += 1;
                        self.op_spill_bytes[op as usize] +=
                            buckets.iter().map(|b| b.bytes()).sum::<u64>();
                        let n_parts = left.n_parts();
                        self.states[u].aux = Some(Aux::GraceJoin {
                            left,
                            left_paths,
                            right_paths,
                            buckets,
                            next_bucket: 0,
                            acc: (0..n_parts).map(|_| Vec::new()).collect(),
                        });
                        self.start_grace_pass(u)
                    }
                    _ => Err(EngineError::Internal(
                        "build phase did not return a build table".into(),
                    )),
                }
            }
            Phase::Shuffle => {
                let parts = self.parts;
                let results = std::mem::take(&mut self.states[u].results);
                let Some(Aux::Group { kernel }) = self.states[u].aux.take() else {
                    return Err(EngineError::Internal(
                        "group unit lost its aggregation state".into(),
                    ));
                };
                // Under a budget, the merged group table would double the
                // shuffle output's footprint; stream the morsel buckets to
                // per-bucket spill files instead and let each aggregation
                // job reload its own bucket (bounding residency to one
                // bucket per in-flight job).
                let spill = self.tracker.enabled() && {
                    let est: usize = results
                        .iter()
                        .filter_map(|slot| match slot {
                            Some(Ok(TaskOut::Shuffle(bs))) => {
                                Some(bs.iter().map(|b| spill::rows_bytes(b)).sum::<usize>())
                            }
                            _ => None,
                        })
                        .sum();
                    self.tracker.would_exceed(est)
                };
                if spill {
                    let op = kernel.op;
                    let dir = self.spill_dir()?;
                    let mut writers = Vec::with_capacity(parts);
                    for b in 0..parts {
                        let path = dir
                            .file(&format!("op{op}.agg{b}"))
                            .map_err(|e| spill::spill_io(op, "create spill file", &e))?;
                        writers.push(BucketWriter::create(op, path)?);
                    }
                    // Stream per-morsel buckets to disk in task (= global
                    // row) order — the same order the in-memory merge
                    // appends them, so reloaded buckets are identical.
                    for slot in results {
                        match slot {
                            Some(Ok(TaskOut::Shuffle(bs))) => {
                                for (b, rows) in bs.iter().enumerate() {
                                    writers[b].append(rows)?;
                                }
                            }
                            _ => {
                                return Err(EngineError::Internal(
                                    "shuffle phase did not return buckets".into(),
                                ))
                            }
                        }
                    }
                    let mut buckets = Vec::with_capacity(parts);
                    for w in writers {
                        buckets.push(w.finish()?);
                    }
                    self.op_spills[op as usize] += 1;
                    self.op_spill_bytes[op as usize] +=
                        buckets.iter().map(|b| b.bytes()).sum::<u64>();
                    let total: usize = buckets.iter().map(|b| b.rows()).sum();
                    let mut jobs: Vec<PlannedJob> = Vec::new();
                    for (b, bucket) in buckets.into_iter().enumerate() {
                        if bucket.rows() == 0 {
                            continue; // empty buckets produce nothing
                        }
                        self.op_reloads[op as usize] += 1;
                        let kernel = Arc::clone(&kernel);
                        let n_rows = bucket.rows();
                        jobs.push((
                            b,
                            n_rows,
                            Box::new(move || {
                                let rows = bucket.load()?;
                                agg_bucket::<S>(&kernel, b, &rows)
                            }),
                        ));
                    }
                    return self.dispatch(u, Phase::Aggregate, jobs, total);
                }
                // Merge per-morsel buckets in task (= global row) order, so
                // each bucket sees rows exactly as a sequential shuffle
                // would.
                let mut buckets: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
                for slot in results {
                    match slot {
                        Some(Ok(TaskOut::Shuffle(mut bs))) => {
                            for (b, rows) in bs.iter_mut().enumerate() {
                                buckets[b].append(rows);
                            }
                        }
                        _ => {
                            return Err(EngineError::Internal(
                                "shuffle phase did not return buckets".into(),
                            ))
                        }
                    }
                }
                let total: usize = buckets.iter().map(Vec::len).sum();
                let mut jobs: Vec<PlannedJob> = Vec::new();
                for (b, rows) in buckets.into_iter().enumerate() {
                    if rows.is_empty() {
                        continue; // empty buckets produce nothing
                    }
                    let kernel = Arc::clone(&kernel);
                    let n_rows = rows.len();
                    jobs.push((
                        b,
                        n_rows,
                        Box::new(move || agg_bucket::<S>(&kernel, b, &rows)),
                    ));
                }
                self.dispatch(u, Phase::Aggregate, jobs, total)
            }
        }
    }

    /// Dispatches the next grace-join probe pass: reloads the pass's bucket
    /// into an in-memory hash table and probes the whole left input against
    /// it (same task layout every pass). Empty buckets after the first are
    /// skipped outright — only pass 0 runs the per-row fault hook, so it
    /// must run even over an empty table.
    fn start_grace_pass(&mut self, u: usize) -> Result<()> {
        let op = self.ops[self.units[u].start].id;
        let (b, bucket, left, left_paths, right_paths) = {
            let Some(Aux::GraceJoin {
                left,
                left_paths,
                right_paths,
                buckets,
                next_bucket,
                ..
            }) = &mut self.states[u].aux
            else {
                return Err(EngineError::Internal(
                    "grace pass without grace-join state".into(),
                ));
            };
            while *next_bucket > 0
                && *next_bucket < buckets.len()
                && buckets[*next_bucket].rows() == 0
            {
                *next_bucket += 1;
            }
            if *next_bucket >= buckets.len() {
                return self.finalize_grace_join(u);
            }
            (
                *next_bucket,
                Arc::clone(&buckets[*next_bucket]),
                left.clone(),
                Arc::clone(left_paths),
                Arc::clone(right_paths),
            )
        };
        let build = if bucket.rows() == 0 {
            JoinBuild::default()
        } else {
            self.op_reloads[op as usize] += 1;
            grace_bucket_build(bucket.load()?, &right_paths)
        };
        let build = Arc::new(build);
        let kernel: Arc<RowKernel> = Arc::new(move |_p, start, rows: &[Row]| {
            grace_probe_morsel(op, start, b, &build, &left_paths, rows)
        });
        let total = left.total_rows();
        let jobs = self.plan_row_jobs(&left, 0, total, kernel);
        self.states[u].out_parts = left.n_parts();
        self.dispatch(u, Phase::Probe, jobs, total)
    }

    /// Collects one finished grace probe pass into the per-partition match
    /// accumulators, then starts the next pass (or the final merge).
    fn grace_pass_done(&mut self, u: usize) -> Result<()> {
        let task_pidx = std::mem::take(&mut self.states[u].task_pidx);
        let mut results = std::mem::take(&mut self.states[u].results);
        let Some(Aux::GraceJoin {
            next_bucket, acc, ..
        }) = &mut self.states[u].aux
        else {
            return Err(EngineError::Internal(
                "grace pass without grace-join state".into(),
            ));
        };
        for (t, &p) in task_pidx.iter().enumerate() {
            let Some(Ok(TaskOut::GraceProbe(ms))) = results[t].take() else {
                return Err(EngineError::Internal(
                    "grace probe task shape mismatch".into(),
                ));
            };
            acc[p].extend(ms);
        }
        *next_bucket += 1;
        self.start_grace_pass(u)
    }

    /// Final merge of a grace-hash join: per left partition, order the
    /// accumulated matches by left ordinal (each left key probes exactly
    /// one bucket, so this is the left row order an in-memory probe
    /// visits), assign output ids sequentially, and emit the association
    /// batches — byte-identical to the in-memory probe's stitched output.
    fn finalize_grace_join(&mut self, u: usize) -> Result<()> {
        let op = self.ops[self.units[u].start].id;
        let Some(Aux::GraceJoin { mut acc, .. }) = self.states[u].aux.take() else {
            return Err(EngineError::Internal(
                "grace merge without grace-join state".into(),
            ));
        };
        let out_parts = acc.len();
        let mut parts: Partitions = (0..out_parts).map(|_| Vec::new()).collect();
        let mut assoc_parts: Vec<BinaryAssoc> = (0..out_parts).map(|_| Vec::new()).collect();
        for (p, matches) in acc.iter_mut().enumerate() {
            matches.sort_by_key(|m| m.ordinal);
            let mut ids = IdGen::new(op, p);
            for m in matches.drain(..) {
                for (rid, item) in m.matches {
                    let id = ids.next();
                    parts[p].push(Row { id, item });
                    if S::ENABLED {
                        assoc_parts[p].push((Some(m.left_id), Some(rid), id));
                    }
                }
            }
        }
        if S::ENABLED {
            for assoc in &assoc_parts {
                if !assoc.is_empty() {
                    self.sink.binary_batch(op, assoc);
                }
            }
        }
        self.set_output(op, parts)?;
        self.unit_finished(u)
    }

    /// Stitches the completed unit's morsel results into its output
    /// partitions — adding per-partition sequence offsets to the
    /// partition-local identifiers — and emits provenance batches in the
    /// same deterministic order as a sequential execution.
    fn finalize_unit(&mut self, u: usize) -> Result<()> {
        let ops = self.ops;
        let (start, len) = (self.units[u].start, self.units[u].len);
        let out_parts = self.states[u].out_parts;
        let task_pidx = std::mem::take(&mut self.states[u].task_pidx);
        let mut results = std::mem::take(&mut self.states[u].results);

        match &ops[start].kind {
            OpKind::Read { .. } => {
                let op = ops[start].id;
                let mut parts: Partitions = (0..out_parts).map(|_| Vec::new()).collect();
                let mut offsets = vec![0u64; out_parts];
                for (t, &p) in task_pidx.iter().enumerate() {
                    let Some(Ok(TaskOut::Read { mut rows })) = results[t].take() else {
                        return Err(EngineError::Internal("read task shape mismatch".into()));
                    };
                    for r in &mut rows {
                        r.id += offsets[p];
                    }
                    offsets[p] += rows.len() as u64;
                    parts[p].append(&mut rows);
                }
                if S::ENABLED {
                    for part in &parts {
                        if !part.is_empty() {
                            let ids: Vec<ItemId> = part.iter().map(|r| r.id).collect();
                            self.sink.read_batch(op, &ids);
                        }
                    }
                }
                self.set_output(op, parts)?;
            }
            OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. } => {
                let columnar = matches!(
                    results.iter().flatten().next(),
                    Some(Ok(TaskOut::ColChain { .. }))
                );
                if columnar {
                    self.finalize_col_chain(start, len, out_parts, &task_pidx, &mut results)?;
                } else {
                    self.finalize_row_chain(start, len, out_parts, &task_pidx, &mut results)?;
                }
            }
            OpKind::Flatten { .. } => {
                let op = ops[start].id;
                let mut parts: Partitions = (0..out_parts).map(|_| Vec::new()).collect();
                let mut assoc_parts: Vec<Vec<(ItemId, u32, ItemId)>> =
                    (0..out_parts).map(|_| Vec::new()).collect();
                let mut offsets = vec![0u64; out_parts];
                for (t, &p) in task_pidx.iter().enumerate() {
                    let Some(Ok(TaskOut::Flatten {
                        mut rows,
                        mut assoc,
                    })) = results[t].take()
                    else {
                        return Err(EngineError::Internal("flatten task shape mismatch".into()));
                    };
                    let off = offsets[p];
                    for r in &mut rows {
                        r.id += off;
                    }
                    for entry in assoc.iter_mut() {
                        entry.2 += off;
                    }
                    offsets[p] += rows.len() as u64;
                    parts[p].append(&mut rows);
                    assoc_parts[p].append(&mut assoc);
                }
                if S::ENABLED {
                    for assoc in &assoc_parts {
                        if !assoc.is_empty() {
                            self.sink.flatten_batch(op, assoc);
                        }
                    }
                }
                self.set_output(op, parts)?;
            }
            OpKind::Join { .. } | OpKind::Union => {
                let op = ops[start].id;
                let mut parts: Partitions = (0..out_parts).map(|_| Vec::new()).collect();
                let mut assoc_parts: Vec<BinaryAssoc> =
                    (0..out_parts).map(|_| Vec::new()).collect();
                let mut offsets = vec![0u64; out_parts];
                for (t, &p) in task_pidx.iter().enumerate() {
                    let Some(Ok(TaskOut::Binary {
                        mut rows,
                        mut assoc,
                    })) = results[t].take()
                    else {
                        return Err(EngineError::Internal("binary task shape mismatch".into()));
                    };
                    let off = offsets[p];
                    for r in &mut rows {
                        r.id += off;
                    }
                    for entry in assoc.iter_mut() {
                        entry.2 += off;
                    }
                    offsets[p] += rows.len() as u64;
                    parts[p].append(&mut rows);
                    assoc_parts[p].append(&mut assoc);
                }
                if S::ENABLED {
                    for assoc in &assoc_parts {
                        if !assoc.is_empty() {
                            self.sink.binary_batch(op, assoc);
                        }
                    }
                }
                self.set_output(op, parts)?;
            }
            OpKind::GroupAggregate { .. } => {
                let op = ops[start].id;
                let mut keyed: Vec<KeyedRow> = Vec::new();
                for slot in results.iter_mut() {
                    let Some(Ok(TaskOut::Agg { rows, assoc })) = slot.take() else {
                        return Err(EngineError::Internal(
                            "aggregate task shape mismatch".into(),
                        ));
                    };
                    // One task per bucket, so bucket-local ids are already
                    // final; emission follows bucket order.
                    if S::ENABLED && !assoc.is_empty() {
                        self.sink.agg_batch(op, assoc);
                    }
                    keyed.extend(rows);
                }
                // Bucket placement depends on the partition count, so impose
                // a canonical global order: sort all groups by key. This
                // makes program output identical across partition
                // configurations.
                keyed.sort_by(|a, b| a.key.cmp(&b.key));
                let chunk = keyed.len().div_ceil(self.parts).max(1);
                let mut partitions: Partitions = Vec::with_capacity(self.parts);
                let mut current = Vec::with_capacity(chunk.min(keyed.len()));
                for k in keyed {
                    current.push(Row {
                        id: k.id,
                        item: k.item,
                    });
                    if current.len() == chunk {
                        partitions.push(std::mem::replace(&mut current, Vec::with_capacity(chunk)));
                    }
                }
                if !current.is_empty() {
                    partitions.push(current);
                }
                if partitions.is_empty() {
                    partitions.push(Vec::new());
                }
                self.set_output(op, partitions)?;
            }
        }

        self.unit_finished(u)
    }

    /// Row-path stitch for a fused filter/select/map chain: re-bases each
    /// morsel's partition-local ids by the per-stage running offsets and
    /// emits the per-stage association pairs stage-major, partition-ordered
    /// — the batch sequence an unfused execution reports per operator.
    fn finalize_row_chain(
        &mut self,
        start: usize,
        len: usize,
        out_parts: usize,
        task_pidx: &[usize],
        results: &mut [Option<TaskResult>],
    ) -> Result<()> {
        let ops = self.ops;
        let n = len;
        let chain_ids: Vec<OpId> = ops[start..start + len].iter().map(|o| o.id).collect();
        let mut parts: Partitions = (0..out_parts).map(|_| Vec::new()).collect();
        let mut assoc_parts: Vec<Vec<Vec<(ItemId, ItemId)>>> = vec![vec![Vec::new(); n]; out_parts];
        let mut offsets: Vec<Vec<u64>> = vec![vec![0u64; n]; out_parts];
        let mut totals = vec![0usize; n];
        for (t, &p) in task_pidx.iter().enumerate() {
            let Some(Ok(TaskOut::Chain {
                mut rows,
                mut assocs,
                counts,
                err: _,
                panics: _,
            })) = results[t].take()
            else {
                return Err(EngineError::Internal("chain task shape mismatch".into()));
            };
            let off = &mut offsets[p];
            for s in 0..n {
                for entry in assocs[s].iter_mut() {
                    if s > 0 {
                        entry.0 += off[s - 1];
                    }
                    entry.1 += off[s];
                }
            }
            let last = off[n - 1];
            for r in &mut rows {
                r.id += last;
            }
            for s in 0..n {
                totals[s] += counts[s];
                off[s] += counts[s] as u64;
                assoc_parts[p][s].append(&mut assocs[s]);
            }
            parts[p].append(&mut rows);
        }
        if S::ENABLED {
            // Stage-major, partition-ordered emission — the batch
            // sequence an unfused execution reports per operator.
            for (s, &op) in chain_ids.iter().enumerate() {
                for part in assoc_parts.iter() {
                    if !part[s].is_empty() {
                        self.sink.unary_batch(op, &part[s]);
                    }
                }
            }
        }
        for (s, &op) in chain_ids.iter().enumerate() {
            self.op_counts[op as usize] = totals[s];
            if s + 1 < n {
                // Fused-away intermediate: nothing consumes its rows.
                self.outputs[op as usize] = Some(UnitOutput::Mem(Arc::new(Vec::new())));
            }
        }
        self.set_output(chain_ids[n - 1], parts)?;
        Ok(())
    }

    /// Columnar-path stitch: morsels report per-stage associations as either
    /// contiguous id *runs* or explicit pairs. Runs from adjacent morsels of
    /// the same partition coalesce (offset re-basing makes them contiguous),
    /// so a whole partition's select stage usually emits as one
    /// [`ProvenanceSink::unary_run`] instead of per-row pushes. Association
    /// *content* is identical to the row path; only the batching differs.
    fn finalize_col_chain(
        &mut self,
        start: usize,
        len: usize,
        out_parts: usize,
        task_pidx: &[usize],
        results: &mut [Option<TaskResult>],
    ) -> Result<()> {
        enum AccAssoc {
            Empty,
            Run {
                in_first: ItemId,
                out_first: ItemId,
                len: u64,
            },
            Pairs(Vec<(ItemId, ItemId)>),
        }
        impl AccAssoc {
            fn expand(in_first: ItemId, out_first: ItemId, len: u64) -> Vec<(ItemId, ItemId)> {
                (0..len).map(|i| (in_first + i, out_first + i)).collect()
            }
            fn push_run(&mut self, in_first: ItemId, out_first: ItemId, run_len: u64) {
                if run_len == 0 {
                    return;
                }
                match self {
                    AccAssoc::Empty => {
                        *self = AccAssoc::Run {
                            in_first,
                            out_first,
                            len: run_len,
                        };
                    }
                    AccAssoc::Run {
                        in_first: i0,
                        out_first: o0,
                        len: l,
                    } => {
                        if *i0 + *l == in_first && *o0 + *l == out_first {
                            *l += run_len;
                        } else {
                            let mut pairs = AccAssoc::expand(*i0, *o0, *l);
                            pairs.extend(AccAssoc::expand(in_first, out_first, run_len));
                            *self = AccAssoc::Pairs(pairs);
                        }
                    }
                    AccAssoc::Pairs(pairs) => {
                        pairs.extend(AccAssoc::expand(in_first, out_first, run_len));
                    }
                }
            }
            fn push_pairs(&mut self, new: Vec<(ItemId, ItemId)>) {
                if new.is_empty() {
                    return;
                }
                match self {
                    AccAssoc::Empty => *self = AccAssoc::Pairs(new),
                    AccAssoc::Run {
                        in_first,
                        out_first,
                        len,
                    } => {
                        let mut pairs = AccAssoc::expand(*in_first, *out_first, *len);
                        pairs.extend(new);
                        *self = AccAssoc::Pairs(pairs);
                    }
                    AccAssoc::Pairs(pairs) => pairs.extend(new),
                }
            }
        }

        let ops = self.ops;
        let n = len;
        let chain_ids: Vec<OpId> = ops[start..start + len].iter().map(|o| o.id).collect();
        let mut parts: Partitions = (0..out_parts).map(|_| Vec::new()).collect();
        let mut acc: Vec<Vec<AccAssoc>> = (0..out_parts)
            .map(|_| (0..n).map(|_| AccAssoc::Empty).collect())
            .collect();
        let mut offsets: Vec<Vec<u64>> = vec![vec![0u64; n]; out_parts];
        let mut totals = vec![0usize; n];
        for (t, &p) in task_pidx.iter().enumerate() {
            let Some(Ok(TaskOut::ColChain {
                mut rows,
                stages,
                counts,
                rows_in,
                batches,
                filter_in,
                filter_kept,
            })) = results[t].take()
            else {
                return Err(EngineError::Internal("chain task shape mismatch".into()));
            };
            self.col_stats.batches += batches as u64;
            self.col_stats.batch_rows.observe(rows_in as u64);
            self.col_stats.filter_in += filter_in;
            self.col_stats.filter_kept += filter_kept;
            let off = &mut offsets[p];
            if S::ENABLED {
                for (s, stage) in stages.into_iter().enumerate() {
                    match stage {
                        StageAssoc::Run {
                            mut in_first,
                            mut out_first,
                            len: run_len,
                        } => {
                            if s > 0 {
                                in_first += off[s - 1];
                            }
                            out_first += off[s];
                            acc[p][s].push_run(in_first, out_first, run_len as u64);
                        }
                        StageAssoc::Pairs(mut pairs) => {
                            for entry in pairs.iter_mut() {
                                if s > 0 {
                                    entry.0 += off[s - 1];
                                }
                                entry.1 += off[s];
                            }
                            acc[p][s].push_pairs(pairs);
                        }
                    }
                }
            }
            let last = off[n - 1];
            for r in &mut rows {
                r.id += last;
            }
            for s in 0..n {
                totals[s] += counts[s];
                off[s] += counts[s] as u64;
            }
            parts[p].append(&mut rows);
        }
        if S::ENABLED {
            // Same stage-major, partition-ordered discipline as the row
            // path; run-shaped batches go through the range entry point.
            for (s, &op) in chain_ids.iter().enumerate() {
                for part in acc.iter_mut() {
                    match std::mem::replace(&mut part[s], AccAssoc::Empty) {
                        AccAssoc::Empty => {}
                        AccAssoc::Run {
                            in_first,
                            out_first,
                            len,
                        } => {
                            self.col_stats.id_ranges += 1;
                            self.sink.unary_run(op, in_first, out_first, len);
                        }
                        AccAssoc::Pairs(pairs) => {
                            if !pairs.is_empty() {
                                self.col_stats.id_pairs += pairs.len() as u64;
                                self.sink.unary_batch(op, &pairs);
                            }
                        }
                    }
                }
            }
        }
        for (s, &op) in chain_ids.iter().enumerate() {
            self.op_counts[op as usize] = totals[s];
            if s + 1 < n {
                // Fused-away intermediate: nothing consumes its rows.
                self.outputs[op as usize] = Some(UnitOutput::Mem(Arc::new(Vec::new())));
            }
        }
        self.set_output(chain_ids[n - 1], parts)?;
        Ok(())
    }

    /// Publishes a unit's stitched output, spilling it to disk when the
    /// memory budget says the run cannot afford to keep it resident. The
    /// sink operator's output is exempt — it is about to be handed back to
    /// the caller anyway. Spilled outputs re-enter downstream units one
    /// block at a time via [`Scheduler::plan_row_jobs`], preserving row
    /// order exactly (a block is just a morsel that lives on disk).
    fn set_output(&mut self, op: OpId, parts: Partitions) -> Result<()> {
        let total: usize = parts.iter().map(Vec::len).sum();
        self.op_counts[op as usize] = total;
        let out = if !self.tracker.enabled() {
            UnitOutput::Mem(Arc::new(parts))
        } else {
            // A read's rows alias the `Context` source (items are shared
            // `Arc`s the caller keeps alive for the whole run), so spilling
            // them cannot release the underlying data — account the
            // per-row shells only, and deep bytes everywhere else.
            let bytes = if matches!(self.ops[op as usize].kind, OpKind::Read { .. }) {
                parts.iter().map(Vec::len).sum::<usize>() * spill::ROW_SHELL_BYTES
            } else {
                spill::parts_bytes(&parts)
            };
            if op as usize != self.sink_op && self.tracker.would_exceed(bytes) {
                // When the rows are headed for exactly one aggregation,
                // spill them through its shuffle hash instead of as plain
                // blocks — the aggregation then loads buckets directly,
                // saving a full decode + re-encode of the output.
                if let Some(agg) = self.group_shuffle_consumer(op) {
                    let spilled = self.spill_group_partitioned(op, agg, &parts, total)?;
                    self.outputs[op as usize] = Some(UnitOutput::SpilledBuckets(Arc::new(spilled)));
                    return Ok(());
                }
                let dir = self.spill_dir()?;
                let path = dir
                    .file(&format!("op{op}.out"))
                    .map_err(|e| spill::spill_io(op, "create spill file", &e))?;
                let spilled = SpilledRows::write(op, path, &parts, self.config.morsel_len(total))?;
                self.op_spills[op as usize] += 1;
                self.op_spill_bytes[op as usize] += spilled.bytes;
                UnitOutput::Spilled(Arc::new(spilled))
            } else {
                self.tracker.add(bytes);
                self.out_bytes[op as usize] = bytes;
                UnitOutput::Mem(Arc::new(parts))
            }
        };
        self.outputs[op as usize] = Some(out);
        Ok(())
    }

    /// The aggregation that is the *sole* consumer of `op`'s output, if
    /// there is one — the precondition for spilling that output
    /// pre-partitioned by the aggregation's grouping keys.
    fn group_shuffle_consumer(&self, op: OpId) -> Option<OpId> {
        let mut found: Option<OpId> = None;
        for unit in &self.units {
            let head = &self.ops[unit.start];
            let uses = head.inputs.iter().filter(|&&i| i == op).count();
            if uses == 0 {
                continue;
            }
            if uses > 1 || found.is_some() || !matches!(head.kind, OpKind::GroupAggregate { .. }) {
                return None;
            }
            found = Some(head.id);
        }
        found
    }

    /// Spills `parts` partitioned by the consuming aggregation `agg`'s
    /// grouping keys: one bucket file per scheduler partition, rows
    /// appended in global (partition-major) row order — exactly the
    /// sequence the shuffle phase's task-order merge would feed each
    /// bucket, so the aggregation's per-bucket input is identical. The
    /// spill is charged to `agg` (it is the aggregation's shuffle,
    /// performed at spill time), which also keeps injected spill faults
    /// firing under `agg`'s operator id.
    fn spill_group_partitioned(
        &mut self,
        op: OpId,
        agg: OpId,
        parts: &[Vec<Row>],
        total: usize,
    ) -> Result<GroupSpill> {
        let OpKind::GroupAggregate { keys, .. } = &self.ops[agg as usize].kind else {
            return Err(EngineError::Internal(
                "group-partitioned spill for a non-aggregation consumer".into(),
            ));
        };
        let dir = self.spill_dir()?;
        let n = self.parts;
        let mut writers = Vec::with_capacity(n);
        for b in 0..n {
            let path = dir
                .file(&format!("op{op}.pre{b}"))
                .map_err(|e| spill::spill_io(agg, "create spill file", &e))?;
            writers.push(BucketWriter::create(agg, path)?);
        }
        // Morsel-sized chunks bound transient memory; chunk boundaries
        // only shape on-disk blocks, never the row sequence per bucket.
        let chunk = self.config.morsel_len(total).max(1);
        for rows in parts {
            for c in rows.chunks(chunk) {
                for (b, bucket) in shuffle_morsel(keys, n, c).iter().enumerate() {
                    writers[b].append(bucket)?;
                }
            }
        }
        let mut buckets = Vec::with_capacity(n);
        for w in writers {
            buckets.push(w.finish()?);
        }
        self.op_spills[agg as usize] += 1;
        self.op_spill_bytes[agg as usize] += buckets.iter().map(|b| b.bytes()).sum::<u64>();
        Ok(GroupSpill {
            for_op: agg,
            buckets,
            rows: total,
        })
    }

    /// Drops the outputs a finished unit consumed once no other unit still
    /// needs them, returning their bytes to the memory budget. Dropping a
    /// spilled output deletes its file. The sink's output is never
    /// released — it is the run's result.
    fn release_inputs(&mut self, u: usize) {
        let head = &self.ops[self.units[u].start];
        let mut inputs = head.inputs.clone();
        inputs.dedup();
        for dep in inputs {
            let i = dep as usize;
            if i == self.sink_op || self.remaining_uses[i] == 0 {
                continue;
            }
            self.remaining_uses[i] -= 1;
            if self.remaining_uses[i] == 0 {
                self.tracker.sub(self.out_bytes[i]);
                self.out_bytes[i] = 0;
                self.outputs[i] = None;
            }
        }
    }

    /// Shared completion tail for every unit: bookkeeping, span recording,
    /// input release, and waking consumers whose dependencies are now met.
    fn unit_finished(&mut self, u: usize) -> Result<()> {
        self.completed += 1;
        self.record_unit_span(u);
        diag::debug(|| {
            let head = &self.ops[self.units[u].start];
            format!(
                "unit {u} ({}) done: {} rows out",
                head.kind.type_name(),
                self.op_counts[self.units[u].start + self.units[u].len - 1]
            )
        });
        self.release_inputs(u);
        let consumers = self.units[u].consumers.clone();
        for c in consumers {
            let st = &mut self.states[c];
            st.remaining_deps -= 1;
            if st.remaining_deps == 0 {
                self.ready.push(c);
            }
        }
        Ok(())
    }

    /// Assembles the run's [`RunReport`] from the scheduler's accumulators.
    /// Cheap structural counters are present for every run; timing fields,
    /// the duration histogram, and pool gauges only when metrics were on.
    fn build_report(&self, error: Option<&EngineError>) -> RunReport {
        let mut report = base_report(
            self.ops,
            &self.op_counts,
            self.ctx,
            &self.config,
            "pool",
            S::ENABLED,
            error,
        );
        report.metrics = self.obs.metrics();
        for (i, op_report) in report.operators.iter_mut().enumerate() {
            op_report.morsels = self.op_morsels[i];
            op_report.udf_panics = self.op_panics[i];
            op_report.busy_ns = self.op_busy_ns[i];
            op_report.spill_bytes = self.op_spill_bytes[i];
        }
        report.morsels = self.morsel_stats.clone();
        if self.tracker.enabled() {
            report.spill = Some(SpillStats {
                budget_bytes: self.tracker.budget() as u64,
                peak_tracked_bytes: self.tracker.peak() as u64,
                spills: self.op_spills.iter().sum(),
                spill_bytes: self.op_spill_bytes.iter().sum(),
                reloads: self.op_reloads.iter().sum(),
                capture_spills: 0,
                capture_spill_bytes: 0,
            });
        }
        if self.config.columnar {
            report.columnar = Some(self.col_stats.clone());
        }
        if self.obs.metrics() {
            report.elapsed_ns = self.obs.now_ns();
            report.morsel_durations = self.obs.duration_summary();
            if let Some(pool) = &self.pool {
                report.pool = Some(PoolStats {
                    workers: pool.size() as u64,
                    jobs: self.pool_jobs,
                    max_queue_depth: self.pool_max_queue,
                    max_active: self.pool_max_active,
                });
            }
        }
        report
    }
}

fn partition_rows(parts: &Partitions) -> usize {
    parts.iter().map(Vec::len).sum()
}

/// Evaluates one aggregate over the rows of a group.
///
/// `collect_list` keeps one value per group row — including `Null` for rows
/// where the input path is missing — so that nested positions stay aligned
/// with the group's identifier list in the operator provenance (Tab. 6).
pub(crate) fn eval_agg(agg: &AggSpec, members: &[&Row]) -> Value {
    let values = |skip_null: bool| {
        members.iter().filter_map(move |r| {
            let v = agg.input.eval(&r.item).cloned().unwrap_or(Value::Null);
            if skip_null && v.is_null() {
                None
            } else {
                Some(v)
            }
        })
    };
    match agg.func {
        AggFunc::Count => {
            if agg.input.is_empty() {
                Value::Int(members.len() as i64)
            } else {
                Value::Int(values(true).count() as i64)
            }
        }
        AggFunc::Sum => {
            let vs: Vec<Value> = values(true).collect();
            if vs.is_empty() {
                Value::Null
            } else if vs.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vs.iter().filter_map(Value::as_int).sum())
            } else {
                Value::Double(vs.iter().filter_map(Value::as_double).sum())
            }
        }
        AggFunc::Avg => {
            let vs: Vec<f64> = values(true).filter_map(|v| v.as_double()).collect();
            if vs.is_empty() {
                Value::Null
            } else {
                Value::Double(vs.iter().sum::<f64>() / vs.len() as f64)
            }
        }
        AggFunc::Min => values(true).min().unwrap_or(Value::Null),
        AggFunc::Max => values(true).max().unwrap_or(Value::Null),
        AggFunc::CollectList => {
            if agg.input.is_empty() {
                // Nesting of whole items: the paper's grouping operator
                // collects the complete group members into a nested bag.
                Value::Bag(
                    members
                        .iter()
                        .map(|r| Value::Item(r.item.clone()))
                        .collect(),
                )
            } else {
                Value::Bag(values(false).collect())
            }
        }
        AggFunc::CollectSet => {
            if agg.input.is_empty() {
                Value::set_from(members.iter().map(|r| Value::Item(r.item.clone())))
            } else {
                Value::set_from(values(true))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::items_of;
    use crate::expr::{Expr, SelectExpr};
    use crate::op::NamedExpr;
    use crate::program::ProgramBuilder;
    use crate::sink::NoSink;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "nums",
            items_of(vec![
                vec![("k", Value::Int(1)), ("v", Value::Int(10))],
                vec![("k", Value::Int(2)), ("v", Value::Int(20))],
                vec![("k", Value::Int(1)), ("v", Value::Int(30))],
                vec![("k", Value::Int(3)), ("v", Value::Int(40))],
            ]),
        );
        c.register(
            "names",
            items_of(vec![
                vec![("k2", Value::Int(1)), ("name", Value::str("one"))],
                vec![("k2", Value::Int(2)), ("name", Value::str("two"))],
            ]),
        );
        c
    }

    fn run_plain(p: &Program, c: &Context) -> RunOutput {
        run(p, c, ExecConfig::with_partitions(3), &NoSink).unwrap()
    }

    #[test]
    fn filter_and_select() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let s = b.select(f, vec![NamedExpr::aliased("double_k", "k")]);
        let out = run_plain(&b.build(s), &ctx());
        let vals: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.item.get("double_k").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, [2, 1, 3]);
    }

    #[test]
    fn join_matches_and_renames() {
        let mut b = ProgramBuilder::new();
        let l = b.read("nums");
        let r = b.read("names");
        let j = b.join(l, r, vec![(Path::attr("k"), Path::attr("k2"))]);
        let out = run_plain(&b.build(j), &ctx());
        assert_eq!(out.rows.len(), 3); // k=1 twice, k=2 once, k=3 none
        let first = &out.rows[0].item;
        assert_eq!(first.get("name"), Some(&Value::str("one")));
        assert_eq!(first.get("k2"), Some(&Value::Int(1)));
    }

    #[test]
    fn union_concats() {
        let mut b = ProgramBuilder::new();
        let l = b.read("nums");
        let r = b.read("nums");
        let u = b.union(l, r);
        let out = run_plain(&b.build(u), &ctx());
        assert_eq!(out.rows.len(), 8);
    }

    #[test]
    fn group_aggregate_scalar_and_nesting() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![
                AggSpec::new(AggFunc::Sum, "v", "total"),
                AggSpec::new(AggFunc::CollectList, "v", "vs"),
                AggSpec::new(AggFunc::Count, "", "n"),
            ],
        );
        let out = run_plain(&b.build(g), &ctx());
        let mut rows: Vec<(i64, i64, usize, i64)> = out
            .rows
            .iter()
            .map(|r| {
                (
                    r.item.get("k").unwrap().as_int().unwrap(),
                    r.item.get("total").unwrap().as_int().unwrap(),
                    r.item.get("vs").unwrap().as_collection().unwrap().len(),
                    r.item.get("n").unwrap().as_int().unwrap(),
                )
            })
            .collect();
        rows.sort();
        assert_eq!(rows, [(1, 40, 2, 2), (2, 20, 1, 1), (3, 40, 1, 1)]);
    }

    #[test]
    fn flatten_explodes_with_positions() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("tags", Value::Bag(vec![Value::str("a"), Value::str("b")]))],
                vec![("tags", Value::Bag(vec![]))],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.flatten(r, "tags", "tag");
        let out = run_plain(&b.build(f), &c);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].item.get("tag"), Some(&Value::str("a")));
        // Original collection is preserved, as in Fig. 3.
        assert!(out.rows[0].item.get("tags").is_some());
    }

    #[test]
    fn deterministic_across_partition_counts() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        );
        let p = b.build(g);
        let c = ctx();
        let one = run(&p, &c, ExecConfig::with_partitions(1), &NoSink).unwrap();
        let four = run(&p, &c, ExecConfig::with_partitions(4), &NoSink).unwrap();
        assert!(one.iter_items().eq(four.iter_items()));
    }

    #[test]
    fn map_udf_applies() {
        use crate::op::MapUdf;
        use std::sync::Arc;
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let m = b.map(
            r,
            MapUdf {
                name: "inc".into(),
                f: Arc::new(|d| {
                    let mut d = d.clone();
                    let v = d.get("v").unwrap().as_int().unwrap();
                    d.set("v", Value::Int(v + 1));
                    d
                }),
                output_schema: None,
            },
        );
        let out = run_plain(&b.build(m), &ctx());
        assert_eq!(out.rows[0].item.get("v"), Some(&Value::Int(11)));
    }

    #[test]
    fn select_struct_restructures() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let s = b.select(
            r,
            vec![NamedExpr::new(
                "pair",
                SelectExpr::strct([
                    ("key", SelectExpr::path("k")),
                    ("value", SelectExpr::path("v")),
                ]),
            )],
        );
        let out = run_plain(&b.build(s), &ctx());
        let pair = out.rows[0].item.get("pair").unwrap().as_item().unwrap();
        assert_eq!(pair.get("key"), Some(&Value::Int(1)));
    }

    #[test]
    fn unfused_run_produces_identical_rows_and_ids() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let s = b.select(f, vec![NamedExpr::aliased("kk", "k")]);
        let p = b.build(s);
        let c = ctx();
        let cfg = ExecConfig::with_partitions(3);
        let fused = run(&p, &c, cfg, &NoSink).unwrap();
        let unfused = run_unfused(&p, &c, cfg, &NoSink).unwrap();
        assert_eq!(fused.rows, unfused.rows);
        assert_eq!(fused.op_counts, unfused.op_counts);
    }

    #[test]
    fn ids_unique_across_operators() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::lit(true));
        let out = run_plain(&b.build(f), &ctx());
        let mut ids: Vec<ItemId> = out.rows.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.rows.len());
    }

    #[test]
    fn read_ranges_pad_small_inputs() {
        assert_eq!(read_ranges(2, 3), vec![0..1, 1..2, 2..2]);
        assert_eq!(read_ranges(0, 2), vec![0..0, 0..0]);
        assert_eq!(read_ranges(10, 3), vec![0..4, 4..8, 8..10]);
        assert_eq!(read_ranges(6, 2), vec![0..3, 3..6]);
        assert_eq!(read_ranges(5, 1), vec![0..5]);
    }

    #[test]
    fn union_partition_offset_counts_padded_partitions() {
        // 2-item sources at partitions=3: with read padding, the right
        // input's output partitions must start at offset 3 (= left
        // partition count including padding), not at the number of
        // non-empty chunks.
        let mut c = Context::new();
        c.register(
            "a",
            items_of(vec![vec![("x", Value::Int(1))], vec![("x", Value::Int(2))]]),
        );
        let mut b = ProgramBuilder::new();
        let l = b.read("a");
        let r = b.read("a");
        let u = b.union(l, r);
        let out = run(
            &b.build(u),
            &c,
            ExecConfig::with_partitions(3).workers(1),
            &NoSink,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 4);
        let pidx: Vec<u64> = out.rows.iter().map(|r| (r.id >> 32) & 0xFFFF).collect();
        assert_eq!(pidx, [0, 1, 3, 4]);
    }

    #[test]
    fn pool_and_morsels_match_sequential() {
        // Skewed fan-out pipeline exercising every unit kind: flatten →
        // filter → union (same op consumed twice) → join → group.
        let mut c = Context::new();
        let items: Vec<Vec<(&str, Value)>> = (0..40i64)
            .map(|i| {
                let tags = if i == 0 { 25 } else { i % 4 };
                vec![
                    ("id", Value::Int(i % 7)),
                    ("tags", Value::Bag((0..tags).map(Value::Int).collect())),
                ]
            })
            .collect();
        c.register("s", items_of(items));
        c.register(
            "dim",
            items_of((0..7i64).map(|i| vec![("id2", Value::Int(i))]).collect()),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("s");
        let fl = b.flatten(r, "tags", "tag");
        let f = b.filter(fl, Expr::col("tag").ge(Expr::lit(1i64)));
        let u = b.union(f, f);
        let d = b.read("dim");
        let j = b.join(u, d, vec![(Path::attr("id"), Path::attr("id2"))]);
        let g = b.group_aggregate(
            j,
            vec![GroupKey::new("id")],
            vec![AggSpec::new(AggFunc::Count, "", "n")],
        );
        let p = b.build(g);
        let baseline = run(
            &p,
            &c,
            ExecConfig::with_partitions(3).workers(1).morsel_rows(0),
            &NoSink,
        )
        .unwrap();
        for (w, m) in [(2, 1), (7, 3), (3, usize::MAX)] {
            let alt = run(
                &p,
                &c,
                ExecConfig::with_partitions(3).workers(w).morsel_rows(m),
                &NoSink,
            )
            .unwrap();
            assert_eq!(baseline.rows, alt.rows, "workers={w} morsel={m}");
            assert_eq!(baseline.op_counts, alt.op_counts, "workers={w} morsel={m}");
        }
    }

    #[test]
    fn budgeted_run_spills_and_matches_in_memory() {
        // Same skewed pipeline as above, squeezed through a budget so small
        // every intermediate spills: rows, ids and counts must be
        // byte-identical to the unbudgeted run, and the report must show
        // spill traffic for join build, group shuffle and unit outputs.
        let mut c = Context::new();
        let items: Vec<Vec<(&str, Value)>> = (0..40i64)
            .map(|i| {
                let tags = if i == 0 { 25 } else { i % 4 };
                vec![
                    ("id", Value::Int(i % 7)),
                    ("tags", Value::Bag((0..tags).map(Value::Int).collect())),
                ]
            })
            .collect();
        c.register("s", items_of(items));
        c.register(
            "dim",
            items_of((0..7i64).map(|i| vec![("id2", Value::Int(i))]).collect()),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("s");
        let fl = b.flatten(r, "tags", "tag");
        let f = b.filter(fl, Expr::col("tag").ge(Expr::lit(1i64)));
        let u = b.union(f, f);
        let d = b.read("dim");
        let j = b.join(u, d, vec![(Path::attr("id"), Path::attr("id2"))]);
        let g = b.group_aggregate(
            j,
            vec![GroupKey::new("id")],
            vec![AggSpec::new(AggFunc::Count, "", "n")],
        );
        let p = b.build(g);
        // Pin the baseline to unlimited even when PEBBLE_MEM_BUDGET is set
        // in the environment (the CI tight-budget pass does exactly that).
        let baseline = run(
            &p,
            &c,
            ExecConfig::with_partitions(3).mem_budget(0),
            &NoSink,
        )
        .unwrap();
        assert!(baseline.report.spill.is_none());
        for (budget, workers, morsel) in [(1, 1, 1), (1, 7, 3), (4096, 2, 0)] {
            let cfg = ExecConfig::with_partitions(3)
                .workers(workers)
                .morsel_rows(morsel)
                .mem_budget(budget);
            let alt = run(&p, &c, cfg, &NoSink).unwrap();
            assert_eq!(baseline.rows, alt.rows, "budget={budget}");
            assert_eq!(baseline.op_counts, alt.op_counts, "budget={budget}");
            let spill = alt.report.spill.as_ref().expect("budgeted run reports");
            assert_eq!(spill.budget_bytes, budget as u64);
            assert!(spill.spills > 0, "budget={budget}: nothing spilled");
            assert!(spill.spill_bytes > 0);
            assert!(spill.reloads > 0);
        }
    }
}
