//! Vectorized (columnar) kernels for fused per-row chains and key hashing.
//!
//! The row kernels in [`crate::exec`] interpret expressions per row:
//! every path access re-scans the item's fields comparing attribute names
//! by *content*, every select builds its output through
//! [`DataItem::push`]'s per-field duplicate scan, and every comparison
//! clones both operands. The columnar kernels compiled here do the same
//! work batch-at-a-time instead:
//!
//! * paths compile to interned [`Label`] sequences once per unit, so the
//!   per-row walk compares labels by pointer;
//! * filters *mark* survivors in a [`SelectionVector`] — rows are never
//!   moved, and dropped rows are never cloned;
//! * selects gather the accessed top-level columns in one field scan per
//!   row, project column-at-a-time into a fresh [`ColumnBatch`] (label
//!   uniqueness was checked once at plan time, so assembly skips the
//!   duplicate scan), and convert to rows once per morsel;
//! * output identifiers are positional — base id + offset within the
//!   batch — so 1:1 stages report their associations as contiguous
//!   [`StageAssoc::Run`]s instead of materialized per-row pairs.
//!
//! Planning is all-or-nothing per unit: any stage the planner cannot
//! vectorize (a `map`/scalar UDF, a select with duplicate output labels)
//! sends the whole unit down the row path, which remains the referee for
//! byte-identical rows, ids, and association tables.

use std::hash::Hasher;
use std::sync::Arc;

use pebble_nested::{ColumnBatch, ColumnData, DataItem, Label, Path, SelectionVector, Step, Value};

use crate::error::Result;
use crate::exec::{ItemId, Row, StageAssoc, TaskOut};
use crate::expr::{CmpOp, Expr, SelectExpr};
use crate::fault;
use crate::hash::FxHasher;
use crate::op::{GroupKey, OpId};
use crate::sink::ProvenanceSink;

/// A path compiled for columnar evaluation. Attr-only paths become
/// interned label sequences (pointer-compared per row); anything with a
/// positional step falls back to the interpreted [`Path`], which has
/// identical semantics.
pub(crate) enum ColPath {
    /// Non-empty sequence of attribute labels.
    Attrs(Vec<Label>),
    /// Fallback to the interpreted path.
    Slow(Path),
}

fn get_by_label<'a>(item: &'a DataItem, label: &Label) -> Option<&'a Value> {
    item.entries()
        .iter()
        .find_map(|(n, v)| (n == label).then_some(v))
}

impl ColPath {
    pub(crate) fn compile(p: &Path) -> ColPath {
        let mut labels = Vec::with_capacity(p.steps().len());
        for step in p.steps() {
            match step {
                Step::Attr(name) => labels.push(Label::new(name)),
                _ => return ColPath::Slow(p.clone()),
            }
        }
        if labels.is_empty() {
            ColPath::Slow(p.clone())
        } else {
            ColPath::Attrs(labels)
        }
    }

    /// Mirrors [`Path::eval`] exactly: attribute steps descend through
    /// items only; a missing attribute or non-item intermediate yields
    /// `None`.
    pub(crate) fn eval<'a>(&self, item: &'a DataItem) -> Option<&'a Value> {
        match self {
            ColPath::Attrs(labels) => {
                let mut cur: Option<&Value> = None;
                for label in labels {
                    let holder = match cur {
                        None => item,
                        Some(Value::Item(d)) => d,
                        _ => return None,
                    };
                    cur = Some(get_by_label(holder, label)?);
                }
                cur
            }
            ColPath::Slow(p) => p.eval(item),
        }
    }

    /// [`ColPath::eval`] against a batch view instead of an item: the root
    /// label indexes a column, the rest walks the stored value. Only
    /// called on `Attrs` paths (batch mode implies col-readiness).
    fn eval_view<'a>(&self, view: &BatchView<'a>, j: usize) -> Option<&'a Value> {
        match self {
            ColPath::Attrs(labels) => {
                let slot = view.slot(&labels[0])?;
                walk_rest(view.value(slot, j), &labels[1..])
            }
            ColPath::Slow(_) => unreachable!("positional path in batch mode"),
        }
    }

    fn is_attrs(&self) -> bool {
        matches!(self, ColPath::Attrs(_))
    }
}

/// Walks the sub-path below an already-gathered root value.
fn walk_rest<'a>(mut cur: &'a Value, rest: &[Label]) -> Option<&'a Value> {
    for label in rest {
        match cur {
            Value::Item(d) => cur = get_by_label(d, label)?,
            _ => return None,
        }
    }
    Some(cur)
}

/// Borrowed view of a dense mixed [`ColumnBatch`] flowing between chain
/// stages: label-keyed top-level columns addressed by dense row index.
/// Root lookup is a pointer-compared scan over the (few) output labels of
/// the previous select — no per-row field walk.
struct BatchView<'a> {
    cols: Vec<(&'a Label, &'a [Value])>,
}

impl<'a> BatchView<'a> {
    /// Views a batch built by [`ColumnBatch::from_mixed_columns`].
    fn of(batch: &'a ColumnBatch) -> BatchView<'a> {
        BatchView {
            cols: batch
                .columns()
                .iter()
                .map(|c| match &c.data {
                    ColumnData::Mixed(v) => (&c.label, v.as_slice()),
                    _ => unreachable!("chain batches hold dense mixed columns"),
                })
                .collect(),
        }
    }

    /// The column slot of a top-level label, if any.
    fn slot(&self, label: &Label) -> Option<usize> {
        self.cols.iter().position(|(l, _)| *l == label)
    }

    fn value(&self, slot: usize, j: usize) -> &'a Value {
        &self.cols[slot].1[j]
    }
}

/// A filter predicate compiled for columnar evaluation. The common
/// `path <op> literal` and `path contains literal` shapes avoid the
/// interpreter's per-row operand clones; everything else (still UDF-free)
/// evaluates through [`Expr`], preserving semantics bit-for-bit.
pub(crate) enum ColPred {
    /// `path <op> lit` (lit is non-null).
    Cmp(CmpOp, ColPath, Value),
    /// `lit <op> path` (lit is non-null).
    CmpRev(CmpOp, Value, ColPath),
    /// `path contains "lit"`.
    Contains(ColPath, Arc<str>),
    /// Conjunction (short-circuit, like [`Expr::eval_bool`]).
    And(Box<ColPred>, Box<ColPred>),
    /// Disjunction.
    Or(Box<ColPred>, Box<ColPred>),
    /// Negation.
    Not(Box<ColPred>),
    /// Any other UDF-free predicate, interpreted.
    Generic(Expr),
}

fn cmp_matches(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => !ord.is_eq(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

impl ColPred {
    fn compile(e: &Expr) -> ColPred {
        match e {
            Expr::Cmp(op, a, b) => match (&**a, &**b) {
                (Expr::Col(p), Expr::Lit(v)) if !v.is_null() => {
                    ColPred::Cmp(*op, ColPath::compile(p), v.clone())
                }
                (Expr::Lit(v), Expr::Col(p)) if !v.is_null() => {
                    ColPred::CmpRev(*op, v.clone(), ColPath::compile(p))
                }
                _ => ColPred::Generic(e.clone()),
            },
            Expr::Contains(h, n) => match (&**h, &**n) {
                (Expr::Col(p), Expr::Lit(Value::Str(s))) => {
                    ColPred::Contains(ColPath::compile(p), Arc::clone(s))
                }
                _ => ColPred::Generic(e.clone()),
            },
            Expr::And(a, b) => ColPred::And(Box::new(Self::compile(a)), Box::new(Self::compile(b))),
            Expr::Or(a, b) => ColPred::Or(Box::new(Self::compile(a)), Box::new(Self::compile(b))),
            Expr::Not(a) => ColPred::Not(Box::new(Self::compile(a))),
            _ => ColPred::Generic(e.clone()),
        }
    }

    /// Equivalent to [`Expr::eval_bool`] on the source predicate: null or
    /// missing operands compare false, non-boolean sub-results are false.
    fn eval(&self, item: &DataItem) -> bool {
        match self {
            ColPred::Cmp(op, p, lit) => match p.eval(item) {
                Some(v) if !v.is_null() => cmp_matches(*op, v.cmp(lit)),
                _ => false,
            },
            ColPred::CmpRev(op, lit, p) => match p.eval(item) {
                Some(v) if !v.is_null() => cmp_matches(*op, lit.cmp(v)),
                _ => false,
            },
            ColPred::Contains(p, needle) => match p.eval(item).and_then(Value::as_str) {
                Some(hay) => hay.contains(&**needle),
                None => false,
            },
            ColPred::And(a, b) => a.eval(item) && b.eval(item),
            ColPred::Or(a, b) => a.eval(item) || b.eval(item),
            ColPred::Not(a) => !a.eval(item),
            ColPred::Generic(e) => e.eval_bool(item),
        }
    }

    /// True when every operand is an attr-only path and no sub-predicate
    /// needs the expression interpreter — i.e. the predicate can evaluate
    /// directly against a dense column batch without a materialized item.
    fn col_ready(&self) -> bool {
        match self {
            ColPred::Cmp(_, p, _) | ColPred::CmpRev(_, _, p) | ColPred::Contains(p, _) => {
                p.is_attrs()
            }
            ColPred::And(a, b) | ColPred::Or(a, b) => a.col_ready() && b.col_ready(),
            ColPred::Not(a) => a.col_ready(),
            ColPred::Generic(_) => false,
        }
    }

    /// [`ColPred::eval`] against a batch view. Only called on `col_ready`
    /// predicates.
    fn eval_view(&self, view: &BatchView, j: usize) -> bool {
        match self {
            ColPred::Cmp(op, p, lit) => match p.eval_view(view, j) {
                Some(v) if !v.is_null() => cmp_matches(*op, v.cmp(lit)),
                _ => false,
            },
            ColPred::CmpRev(op, lit, p) => match p.eval_view(view, j) {
                Some(v) if !v.is_null() => cmp_matches(*op, lit.cmp(v)),
                _ => false,
            },
            ColPred::Contains(p, needle) => match p.eval_view(view, j).and_then(Value::as_str) {
                Some(hay) => hay.contains(&**needle),
                None => false,
            },
            ColPred::And(a, b) => a.eval_view(view, j) && b.eval_view(view, j),
            ColPred::Or(a, b) => a.eval_view(view, j) || b.eval_view(view, j),
            ColPred::Not(a) => !a.eval_view(view, j),
            ColPred::Generic(_) => unreachable!("interpreted predicate in batch mode"),
        }
    }
}

/// A select projection compiled for columnar evaluation. Attr-only paths
/// read their top-level root from the stage's gathered columns (`root` is
/// a slot into the gather) and walk the remainder with pointer-compared
/// labels.
pub(crate) enum ColProj {
    /// Copy the value at a path.
    Path {
        /// `(gather slot, sub-path below the root)` for attr-only paths.
        root: Option<(usize, Vec<Label>)>,
        /// Fallback interpreted path (used when `root` is `None`).
        path: ColPath,
    },
    /// Build a nested item (labels validated unique at plan time).
    Struct(Vec<(Label, ColProj)>),
    /// Computed UDF-free scalar, interpreted.
    Computed(Expr),
}

impl ColProj {
    /// Compiles a projection, registering attr-path roots in `roots`.
    /// Returns `None` when the projection cannot be vectorized (duplicate
    /// struct labels).
    fn compile(e: &SelectExpr, roots: &mut Vec<Label>) -> Option<ColProj> {
        match e {
            SelectExpr::Path(p) => {
                let path = ColPath::compile(p);
                let root = match &path {
                    ColPath::Attrs(labels) => {
                        let first = &labels[0];
                        let slot = roots.iter().position(|r| r == first).unwrap_or_else(|| {
                            roots.push(first.clone());
                            roots.len() - 1
                        });
                        Some((slot, labels[1..].to_vec()))
                    }
                    ColPath::Slow(_) => None,
                };
                Some(ColProj::Path { root, path })
            }
            SelectExpr::Struct(fields) => {
                let mut out: Vec<(Label, ColProj)> = Vec::with_capacity(fields.len());
                for (name, sub) in fields {
                    let label = Label::new(name);
                    if out.iter().any(|(l, _)| *l == label) {
                        return None; // duplicate labels would panic row-side
                    }
                    out.push((label, Self::compile(sub, roots)?));
                }
                Some(ColProj::Struct(out))
            }
            SelectExpr::Computed(e) => Some(ColProj::Computed(e.clone())),
        }
    }

    /// True when the projection reads only gathered roots (no interpreted
    /// path, no computed expression), so it can evaluate without a
    /// materialized item.
    fn col_ready(&self) -> bool {
        match self {
            ColProj::Path { root, .. } => root.is_some(),
            ColProj::Struct(fields) => fields.iter().all(|(_, sub)| sub.col_ready()),
            ColProj::Computed(_) => false,
        }
    }

    /// Equivalent to [`SelectExpr::eval`]: missing paths project `Null`.
    /// `item` is `None` in batch mode, where planning guarantees every
    /// projection reads through `gathered` roots only.
    fn eval(&self, item: Option<&DataItem>, gathered: &[Vec<Option<&Value>>], j: usize) -> Value {
        match self {
            ColProj::Path {
                root: Some((slot, rest)),
                ..
            } => match gathered[*slot][j].and_then(|v| walk_rest(v, rest)) {
                Some(v) => v.clone(),
                None => Value::Null,
            },
            ColProj::Path { root: None, path } => path
                .eval(item.expect("interpreted path in batch mode"))
                .cloned()
                .unwrap_or(Value::Null),
            ColProj::Struct(fields) => {
                let mut parts = Vec::with_capacity(fields.len());
                for (label, sub) in fields {
                    parts.push((label.clone(), sub.eval(item, gathered, j)));
                }
                Value::Item(DataItem::from_parts(parts))
            }
            ColProj::Computed(e) => e.eval(item.expect("computed projection in batch mode")),
        }
    }

    /// Batch-mode projection: roots were resolved to column slots once per
    /// stage (`root_slots`), so each value is an index plus a sub-path
    /// walk — no gather buffer, no field scan. Only called on `col_ready`
    /// projections.
    fn eval_batch(&self, view: &BatchView, root_slots: &[Option<usize>], row: usize) -> Value {
        match self {
            ColProj::Path {
                root: Some((slot, rest)),
                ..
            } => match root_slots[*slot].and_then(|cs| walk_rest(view.value(cs, row), rest)) {
                Some(v) => v.clone(),
                None => Value::Null,
            },
            ColProj::Struct(fields) => Value::Item(DataItem::from_parts(
                fields
                    .iter()
                    .map(|(label, sub)| (label.clone(), sub.eval_batch(view, root_slots, row)))
                    .collect(),
            )),
            ColProj::Path { root: None, .. } | ColProj::Computed(_) => {
                unreachable!("non-col-ready projection in batch mode")
            }
        }
    }
}

/// One vectorized stage of a fused chain. `col_ready` marks stages that
/// evaluate directly against the dense column batch flowing out of an
/// upstream select; a stage without it forces the batch to materialize
/// into items once, after which the chain continues row-wise.
pub(crate) enum ColStage {
    /// Mark surviving rows in the selection vector.
    Filter {
        /// Compiled predicate.
        pred: ColPred,
        /// Evaluable against a column batch (attr-only, uninterpreted).
        col_ready: bool,
    },
    /// Project the selection column-at-a-time into a new batch.
    Select {
        /// Output attribute labels, in projection order (unique).
        labels: Vec<Label>,
        /// Compiled projections, aligned with `labels`.
        projs: Vec<ColProj>,
        /// Distinct top-level roots gathered once per row.
        roots: Vec<Label>,
        /// Every projection reads through gathered roots only.
        col_ready: bool,
    },
}

/// A fused chain compiled for columnar execution.
pub(crate) struct ColChainKernel {
    /// Operator ids, stage-aligned (same as the row kernel).
    pub(crate) ops: Vec<OpId>,
    pub(crate) stages: Vec<ColStage>,
}

/// Plans the columnar form of a fused chain from the already-built row
/// stages. Returns `None` — falling back to the row path for the whole
/// unit — when any stage hosts user code (`map`, UDF expressions, whose
/// panic containment is a row-path contract) or a select with duplicate
/// output labels (the row path panics; the planner refuses to diverge).
pub(crate) fn plan_columnar(
    ops: Vec<OpId>,
    stages: &[crate::exec::OwnedStage],
) -> Option<ColChainKernel> {
    use crate::exec::OwnedStage;
    let mut out = Vec::with_capacity(stages.len());
    for stage in stages {
        match stage {
            OwnedStage::Filter { pred, can_panic } => {
                if *can_panic {
                    return None;
                }
                let pred = ColPred::compile(pred);
                out.push(ColStage::Filter {
                    col_ready: pred.col_ready(),
                    pred,
                });
            }
            OwnedStage::Select {
                exprs,
                labels,
                can_panic,
            } => {
                if *can_panic {
                    return None;
                }
                for (i, l) in labels.iter().enumerate() {
                    if labels[..i].contains(l) {
                        return None; // duplicate output labels panic row-side
                    }
                }
                let mut roots = Vec::new();
                let mut projs = Vec::with_capacity(exprs.len());
                for ne in exprs {
                    projs.push(ColProj::compile(&ne.expr, &mut roots)?);
                }
                out.push(ColStage::Select {
                    col_ready: projs.iter().all(ColProj::col_ready),
                    labels: labels.clone(),
                    projs,
                    roots,
                });
            }
            OwnedStage::Map(_) => return None,
        }
    }
    Some(ColChainKernel { ops, stages: out })
}

/// Gathers the values of `roots` for every selected row in one field scan
/// per item (labels compared by pointer). Column-major: `result[slot][j]`
/// is root `slot` of the `j`-th selected row.
fn gather_roots<'a>(
    items: impl Fn(u32) -> &'a DataItem,
    sel: &SelectionVector,
    roots: &[Label],
) -> Vec<Vec<Option<&'a Value>>> {
    let mut cols: Vec<Vec<Option<&Value>>> = roots.iter().map(|_| vec![None; sel.len()]).collect();
    for (j, &row) in sel.indices().iter().enumerate() {
        let mut missing = roots.len();
        for (label, value) in items(row).entries() {
            for (slot, root) in roots.iter().enumerate() {
                if label == root {
                    if cols[slot][j].is_none() {
                        missing -= 1;
                    }
                    cols[slot][j] = Some(value);
                    break;
                }
            }
            if missing == 0 {
                break;
            }
        }
    }
    cols
}

/// Executes one morsel through a vectorized chain. Morsel-local output
/// identifiers and stage associations use the exact same layout as
/// [`crate::exec::chain_morsel`] (full `op | partition | seq` ids with
/// per-morsel sequences from 0), so the scheduler stitches both kernels
/// with the same arithmetic.
pub(crate) fn col_chain_morsel<S: ProvenanceSink>(
    kernel: &ColChainKernel,
    pidx: usize,
    rows: &[Row],
) -> Result<TaskOut> {
    for row in rows {
        // Injected faults target the chain head, as in the row kernel.
        fault::check(kernel.ops[0], row.id)?;
    }
    let n = kernel.stages.len();
    let base = |s: usize| ((kernel.ops[s] as u64) << 48) | ((pidx as u64) << 32);
    // Input ids are consecutive for every upstream operator except
    // group-aggregate (whose output is globally key-sorted); a consecutive
    // prefix lets 1:1 stage-0 associations collapse into a run.
    // checked in full: key-sorted ids can be a permutation whose first and
    // last elements alone look consecutive.
    let input_consecutive = rows.windows(2).all(|w| w[1].id == w[0].id + 1);
    let mut counts = vec![0usize; n];
    let mut stage_assocs: Vec<StageAssoc> = Vec::with_capacity(if S::ENABLED { n } else { 0 });
    // Rows surviving so far, in one of three forms: borrowed input rows
    // (before the first select), the dense column batch a select produced
    // (the fast path — downstream col-ready stages read columns directly,
    // no items are built between stages), or materialized items (a
    // non-col-ready stage needed them). `sel` indexes the current form.
    enum Working<'a> {
        Rows(&'a [Row]),
        Batch(ColumnBatch),
        Owned(Vec<DataItem>),
    }
    let mut working = Working::Rows(rows);
    let mut sel = SelectionVector::all(rows.len());
    let mut batches = 0u32;
    let mut filter_in = 0u64;
    let mut filter_kept = 0u64;
    for (s, stage) in kernel.stages.iter().enumerate() {
        // A stage that needs materialized items (interpreted predicate,
        // positional path, computed projection) tears the batch down once;
        // the chain continues row-wise from there.
        let col_ready = match stage {
            ColStage::Filter { col_ready, .. } | ColStage::Select { col_ready, .. } => *col_ready,
        };
        if !col_ready {
            working = match working {
                Working::Batch(b) => Working::Owned(b.into_items()),
                w => w,
            };
        }
        match stage {
            ColStage::Filter { pred, .. } => {
                let before = sel.len();
                let mut pairs: Vec<(ItemId, ItemId)> = Vec::new();
                {
                    let view = match &working {
                        Working::Batch(b) => Some(BatchView::of(b)),
                        _ => None,
                    };
                    let pass = |row: u32| match &working {
                        Working::Rows(rows) => pred.eval(&rows[row as usize].item),
                        Working::Owned(items) => pred.eval(&items[row as usize]),
                        Working::Batch(_) => {
                            pred.eval_view(view.as_ref().expect("batch view"), row as usize)
                        }
                    };
                    let mut kept = 0u64;
                    sel.retain(|pos, row| {
                        if pass(row) {
                            if S::ENABLED {
                                let input = if s == 0 {
                                    rows[row as usize].id
                                } else {
                                    base(s - 1) | pos as u64
                                };
                                pairs.push((input, base(s) | kept));
                            }
                            kept += 1;
                            true
                        } else {
                            false
                        }
                    });
                }
                counts[s] = sel.len();
                filter_in += before as u64;
                filter_kept += sel.len() as u64;
                if S::ENABLED {
                    // An all-kept filter over consecutive inputs is itself
                    // a run; represent it as one so the capture sink can
                    // append a range instead of `before` pairs.
                    let all_kept = sel.len() == before && before > 0;
                    if all_kept && (s > 0 || input_consecutive) {
                        let in_first = if s == 0 {
                            rows[sel.indices()[0] as usize].id
                        } else {
                            base(s - 1)
                        };
                        stage_assocs.push(StageAssoc::Run {
                            in_first,
                            out_first: base(s),
                            len: before,
                        });
                    } else {
                        stage_assocs.push(StageAssoc::Pairs(pairs));
                    }
                }
            }
            ColStage::Select {
                labels,
                projs,
                roots,
                ..
            } => {
                let kcount = sel.len();
                // Projection is column-at-a-time on purpose: one
                // projection's dispatch and memory stream at a time beats
                // row-major evaluation (measured), and the final transpose
                // back to rows is sequential moves.
                let out_cols: Vec<Vec<Value>> = match &working {
                    Working::Batch(b) => {
                        // Roots resolve to column slots once per stage;
                        // per-row access is an index plus sub-path walk —
                        // no gather buffer, no field scan.
                        let view = BatchView::of(b);
                        let root_slots: Vec<Option<usize>> =
                            roots.iter().map(|root| view.slot(root)).collect();
                        projs
                            .iter()
                            .map(|proj| {
                                sel.indices()
                                    .iter()
                                    .map(|&row| proj.eval_batch(&view, &root_slots, row as usize))
                                    .collect()
                            })
                            .collect()
                    }
                    _ => {
                        let item_at = |row: u32| -> &DataItem {
                            match &working {
                                Working::Rows(rows) => &rows[row as usize].item,
                                Working::Owned(items) => &items[row as usize],
                                Working::Batch(_) => unreachable!("handled above"),
                            }
                        };
                        let gathered = gather_roots(item_at, &sel, roots);
                        projs
                            .iter()
                            .map(|proj| {
                                sel.indices()
                                    .iter()
                                    .enumerate()
                                    .map(|(j, &row)| proj.eval(Some(item_at(row)), &gathered, j))
                                    .collect()
                            })
                            .collect()
                    }
                };
                batches += 1;
                if S::ENABLED {
                    let assoc = if s == 0 {
                        if input_consecutive {
                            StageAssoc::Run {
                                in_first: rows.first().map_or(0, |r| r.id),
                                out_first: base(s),
                                len: kcount,
                            }
                        } else {
                            StageAssoc::Pairs(
                                sel.indices()
                                    .iter()
                                    .enumerate()
                                    .map(|(j, &row)| (rows[row as usize].id, base(s) | j as u64))
                                    .collect(),
                            )
                        }
                    } else {
                        // 1:1 over the previous stage's (dense) output.
                        StageAssoc::Run {
                            in_first: base(s - 1),
                            out_first: base(s),
                            len: kcount,
                        }
                    };
                    stage_assocs.push(assoc);
                }
                counts[s] = kcount;
                working = Working::Batch(ColumnBatch::from_mixed_columns(
                    kcount,
                    labels.clone(),
                    out_cols,
                ));
                sel = SelectionVector::all(kcount);
            }
        }
    }
    let last = base(n - 1);
    let with_ids = |items: Vec<DataItem>| -> Vec<Row> {
        items
            .into_iter()
            .enumerate()
            .map(|(j, item)| Row {
                id: last | j as u64,
                item,
            })
            .collect()
    };
    let out = match working {
        Working::Rows(_) => sel
            .indices()
            .iter()
            .enumerate()
            .map(|(j, &row)| Row {
                id: last | j as u64,
                item: rows[row as usize].item.clone(),
            })
            .collect(),
        Working::Owned(items) if sel.len() == items.len() => with_ids(items),
        Working::Owned(items) => sel
            .indices()
            .iter()
            .enumerate()
            .map(|(j, &row)| Row {
                id: last | j as u64,
                item: items[row as usize].clone(),
            })
            .collect(),
        // Items materialize exactly once, here at the chain boundary. A
        // trailing filter compacts the columns in place first — values
        // move, nothing is cloned.
        Working::Batch(b) => {
            let items = if sel.len() == b.len() {
                b.into_items()
            } else {
                let dense = b.len();
                let (labels, mut cols) = b.into_mixed_columns();
                let mut keep = vec![false; dense];
                for &row in sel.indices() {
                    keep[row as usize] = true;
                }
                for col in &mut cols {
                    let mut i = 0;
                    col.retain(|_| {
                        let k = keep[i];
                        i += 1;
                        k
                    });
                }
                ColumnBatch::from_mixed_columns(sel.len(), labels, cols).into_items()
            };
            with_ids(items)
        }
    };
    Ok(TaskOut::ColChain {
        rows: out,
        stages: stage_assocs,
        counts,
        rows_in: rows.len(),
        batches,
        filter_in,
        filter_kept,
    })
}

// ---------------------------------------------------------------------------
// Column-at-a-time key hashing (shuffle and join probe)
// ---------------------------------------------------------------------------

/// Group-by key paths compiled for columnar evaluation.
pub(crate) struct ColKeys {
    paths: Vec<ColPath>,
}

impl ColKeys {
    pub(crate) fn compile_group(keys: &[GroupKey]) -> ColKeys {
        ColKeys {
            paths: keys.iter().map(|k| ColPath::compile(&k.path)).collect(),
        }
    }

    pub(crate) fn compile_paths(paths: &[Path]) -> ColKeys {
        ColKeys {
            paths: paths.iter().map(ColPath::compile).collect(),
        }
    }

    /// Shuffle buckets for a morsel, computed column-at-a-time: one hasher
    /// per row is seeded with the key length, then each key column folds
    /// its value in. Reproduces `hash_one(&key_vec) % parts` bit-for-bit
    /// (missing paths hash as `Null`) without cloning a single key value.
    pub(crate) fn shuffle_buckets(&self, rows: &[Row], parts: usize) -> Vec<usize> {
        let mut hashers: Vec<FxHasher> = vec![FxHasher::default(); rows.len()];
        for h in &mut hashers {
            h.write_usize(self.paths.len());
        }
        for path in &self.paths {
            for (row, h) in rows.iter().zip(&mut hashers) {
                match path.eval(&row.item) {
                    Some(v) => std::hash::Hash::hash(v, h),
                    None => std::hash::Hash::hash(&Value::Null, h),
                }
            }
        }
        hashers
            .into_iter()
            .map(|h| (h.finish() as usize) % parts)
            .collect()
    }

    /// Join-probe keys for a morsel, column-at-a-time: `None` for rows
    /// with a null or missing key component (which never join), otherwise
    /// the borrowed key values and their cached hash.
    pub(crate) fn probe_keys<'a>(&self, rows: &'a [Row]) -> Vec<Option<(Vec<&'a Value>, u64)>> {
        let mut keys: Vec<Option<Vec<&Value>>> = rows
            .iter()
            .map(|_| Some(Vec::with_capacity(self.paths.len())))
            .collect();
        for path in &self.paths {
            for (row, slot) in rows.iter().zip(&mut keys) {
                if let Some(key) = slot {
                    match path.eval(&row.item) {
                        Some(v) if !v.is_null() => key.push(v),
                        _ => *slot = None,
                    }
                }
            }
        }
        keys.into_iter()
            .map(|slot| {
                slot.map(|key| {
                    let h = crate::hash::hash_value_refs(&key);
                    (key, h)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_one;

    fn item() -> DataItem {
        DataItem::from_fields([
            ("text", Value::str("Hello World")),
            (
                "user",
                Value::Item(DataItem::from_fields([
                    ("id_str", Value::str("lp")),
                    ("name", Value::str("Lisa Paul")),
                ])),
            ),
            ("retweet_count", Value::Int(0)),
        ])
    }

    #[test]
    fn col_path_matches_interpreted_path() {
        let d = item();
        for raw in [
            "text",
            "user.id_str",
            "user.name",
            "missing",
            "user.nope",
            "text.x",
        ] {
            let p = Path::parse(raw);
            assert_eq!(ColPath::compile(&p).eval(&d), p.eval(&d), "path {raw}");
        }
    }

    #[test]
    fn col_pred_matches_expr_eval_bool() {
        let d = item();
        let preds = [
            Expr::col("retweet_count").eq(Expr::lit(0i64)),
            Expr::col("retweet_count").gt(Expr::lit(0i64)),
            Expr::col("text").contains(Expr::lit("World")),
            Expr::col("text").contains(Expr::lit("zzz")),
            Expr::col("missing").eq(Expr::lit(1i64)),
            Expr::col("retweet_count")
                .le(Expr::lit(5i64))
                .and(Expr::col("text").contains(Expr::lit("Hello"))),
            Expr::col("missing").eq(Expr::lit(1i64)).or(Expr::lit(true)),
            Expr::col("retweet_count").eq(Expr::lit(0i64)).not(),
            Expr::lit(1i64).lt(Expr::col("retweet_count")),
        ];
        for e in preds {
            assert_eq!(ColPred::compile(&e).eval(&d), e.eval_bool(&d), "{e:?}");
        }
    }

    #[test]
    fn shuffle_buckets_match_row_hashing() {
        let rows: Vec<Row> = (0..7)
            .map(|i| Row {
                id: i,
                item: DataItem::from_fields([
                    ("k", Value::Int(i as i64 % 3)),
                    ("s", Value::str(format!("v{i}"))),
                ]),
            })
            .collect();
        let keys = vec![
            GroupKey::new("k"),
            GroupKey::new("s"),
            GroupKey::new("gone"),
        ];
        let compiled = ColKeys::compile_group(&keys);
        let buckets = compiled.shuffle_buckets(&rows, 5);
        for (row, &b) in rows.iter().zip(&buckets) {
            let key: Vec<Value> = keys
                .iter()
                .map(|k| crate::op::key_value(&row.item, &k.path))
                .collect();
            assert_eq!(b, (hash_one(&key) as usize) % 5);
        }
    }
}
