//! # pebble-dataflow — a partitioned nested-dataflow engine (Sec. 4.2)
//!
//! The DISC-system substrate standing in for Apache Spark: programs are
//! DAGs of `read`, `filter`, `select`, `map`, `join`, `union`, `flatten`
//! and `group-aggregate` operators over datasets of nested items, executed
//! partition-parallel with deterministic output order.
//!
//! Provenance hooks: the executor is generic over a [`sink::ProvenanceSink`]
//! that receives the identifier associations of Tab. 6; [`sink::NoSink`]
//! monomorphizes recording away for plain runs.

#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fault;
pub mod hash;
pub mod io;
pub mod op;
pub mod optimize;
pub mod pool;
pub mod program;
pub mod sink;
pub mod spawn;
pub mod spill;
pub mod vector;

pub use context::Context;
pub use error::{panic_message, EngineError, Result};
pub use exec::{
    run, run_observed, run_unfused, run_unfused_observed, ExecConfig, ItemId, Row, RunOutput,
};
pub use expr::{CmpOp, Expr, SelectExpr};
pub use op::{AggFunc, AggSpec, GroupKey, MapUdf, NamedExpr, OpId, OpKind};
pub use optimize::{optimize, OptimizeStats};
pub use pebble_obs::{ObsConfig, RunReport};
pub use pool::WorkerPool;
pub use program::{Operator, Program, ProgramBuilder};
pub use sink::{NoSink, ProvenanceSink, Tee};
pub use spawn::{run_spawn, run_spawn_unfused};
pub use spill::MemoryTracker;
