//! Legacy per-operator spawning executor.
//!
//! This is the executor the morsel-driven scheduler ([`crate::exec`])
//! replaced: operators execute in topological (id) order, each operator
//! spawns (and joins) a fresh set of scoped threads over its input
//! partitions, and a full barrier separates stages. It is kept — bit-for-
//! bit output-compatible with the pool executor — for two reasons:
//!
//! * the differential oracle uses it as the *referee*: identifiers,
//!   association tables, batch orders — and, on failing runs, the
//!   propagated error — of the pool scheduler must match this executor
//!   exactly at every worker count;
//! * the scheduler benchmark uses it as the baseline the pool is measured
//!   against (`BENCH_2.json`).
//!
//! The per-row/per-bucket kernels themselves are shared with
//! [`crate::exec`] (one morsel per partition, so morsel-local identifiers
//! are already final here), so the two executors cannot drift apart
//! silently — including their error behavior: a failing operator produces
//! the same typed [`EngineError`], selected by the same
//! `(operator id, task index)` minimum, in both executors.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pebble_nested::{DataItem, Label, Path};

use crate::context::Context;
use crate::error::{panic_message, EngineError, Result};
use crate::exec::{
    agg_bucket, chain_morsel, flatten_morsel, fusable_chain_len, join_build, join_probe,
    owned_stage, read_ranges, shuffle_morsel, union_morsel, ChainKernel, ExecConfig, GroupKernel,
    IdGen, ItemId, KeyedRow, Partitions, Row, RunOutput, TaskOut,
};
use crate::op::OpId;
use crate::op::{AggSpec, GroupKey, OpKind};
use crate::program::{Operator, Program};
use crate::sink::ProvenanceSink;

/// Executes `program` with the legacy per-operator spawning strategy.
///
/// Output (rows, identifiers, captured provenance, batch order) is
/// specified to be byte-identical to [`crate::exec::run`] — and so is the
/// returned error when a run fails.
pub fn run_spawn<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, true)
}

/// [`run_spawn`] with operator fusion disabled.
pub fn run_spawn_unfused<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, false)
}

fn run_with_fusion<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
    fuse: bool,
) -> Result<RunOutput> {
    let op_schemas = program.infer_schemas(&ctx.source_schemas())?;
    let ops = program.operators();
    let mut outputs: Vec<Partitions> = Vec::with_capacity(ops.len());
    let mut op_counts = Vec::with_capacity(ops.len());
    let parts = config.partitions.max(1);
    let consumers = program.consumers();

    let mut idx = 0;
    while idx < ops.len() {
        let op = &ops[idx];
        // Per-row operators run through the shared chain kernel — fused
        // into maximal single-consumer chains when fusion is on, as
        // singleton chains otherwise. Either way the kernel (and therefore
        // every failure message and its attribution) is the one the morsel
        // executor runs.
        if matches!(
            op.kind,
            OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. }
        ) {
            let chain_len = if fuse {
                fusable_chain_len(ops, program.sink(), &consumers, idx)
            } else {
                1
            };
            let chain: Vec<&Operator> = ops[idx..idx + chain_len].iter().collect();
            let input = &outputs[op.inputs[0] as usize];
            let (counts, fused) = exec_chain::<S>(&chain, input, sink)?;
            for (i, count) in counts.iter().enumerate() {
                op_counts.push(*count);
                if i + 1 < counts.len() {
                    // Fused-away intermediate: nothing consumes its rows.
                    outputs.push(Vec::new());
                }
            }
            outputs.push(fused);
            idx += chain_len;
            continue;
        }
        let result: Partitions = match &op.kind {
            OpKind::Read { source } => {
                let items = ctx
                    .source(source)
                    .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;
                exec_read::<S>(op.id, items, parts, sink)
            }
            OpKind::Flatten { col, new_attr } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_flatten::<S>(op.id, input, col, new_attr, sink)?
            }
            OpKind::Join { keys } => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                exec_join::<S>(op.id, left, right, keys, sink)?
            }
            OpKind::Union => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                exec_union::<S>(op.id, left, right, sink)?
            }
            OpKind::GroupAggregate { keys, aggs } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_group_aggregate::<S>(op.id, input, keys, aggs, parts, sink)?
            }
            OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. } => {
                return Err(EngineError::Internal(
                    "per-row operator escaped the chain path".into(),
                ))
            }
        };
        op_counts.push(result.iter().map(Vec::len).sum());
        outputs.push(result);
        idx += 1;
    }

    let rows: Vec<Row> = std::mem::take(&mut outputs[program.sink() as usize])
        .into_iter()
        .flatten()
        .collect();
    let report = crate::exec::base_report(ops, &op_counts, ctx, &config, "spawn", S::ENABLED, None);
    Ok(RunOutput {
        rows,
        op_schemas,
        op_counts,
        report,
    })
}

/// Runs `f` over every input partition, in parallel when there are several,
/// containing panics either way.
///
/// This is the per-operator spawn/join this executor is named after: a
/// fresh scoped thread per partition, torn down at the end of the call.
/// A panicking partition worker never takes the process down — its payload
/// is returned in that partition's slot for [`collect_unit`] to convert
/// into a typed [`EngineError::WorkerPanic`].
fn par_map<I, T, F>(inputs: &[I], f: F) -> Vec<std::thread::Result<T>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync + Send,
{
    let f = &f;
    if inputs.len() <= 1 {
        return inputs
            .iter()
            .enumerate()
            .map(|(i, p)| catch_unwind(AssertUnwindSafe(|| f(i, p))))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, p)| scope.spawn(move || f(i, p)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
}

/// Scans one operator's per-partition task results for failures and, if
/// any, surfaces the same winner the morsel scheduler's `fail_unit`
/// derives: the candidate with the minimum `(operator id, task index)`
/// key. Worker panics carry no operator and attribute to the unit head;
/// chain row failures attribute to the failing stage's operator. Task
/// order here is partition order, which matches the scheduler's
/// partition-major morsel order.
fn collect_unit(
    head_op: OpId,
    chain_ops: &[OpId],
    results: Vec<std::thread::Result<Result<TaskOut>>>,
) -> Result<Vec<TaskOut>> {
    let mut best: Option<((u32, usize), EngineError)> = None;
    let record = |best: &mut Option<((u32, usize), EngineError)>, key, err| {
        if best.as_ref().is_none_or(|(k, _)| key < *k) {
            *best = Some((key, err));
        }
    };
    let mut outs = Vec::with_capacity(results.len());
    for (t, res) in results.into_iter().enumerate() {
        match res {
            Err(payload) => record(
                &mut best,
                (head_op, t),
                EngineError::WorkerPanic {
                    payload: panic_message(&*payload),
                },
            ),
            Ok(Err(e)) => {
                let key = (e.op().unwrap_or(head_op), t);
                record(&mut best, key, e);
            }
            Ok(Ok(out)) => {
                if let TaskOut::Chain { err: Some(ce), .. } = &out {
                    // One morsel per partition: the stage's input ids
                    // started at sequence 0, so `input_local` is final and
                    // needs none of the scheduler's offset stitching.
                    let stage_op = chain_ops[ce.stage];
                    record(
                        &mut best,
                        (stage_op, t),
                        EngineError::RowError {
                            op: stage_op,
                            item: ce.input_local,
                            message: ce.message.clone(),
                        },
                    );
                }
                outs.push(out);
            }
        }
    }
    match best {
        Some((_, err)) => Err(err),
        None => Ok(outs),
    }
}

/// Executes a chain of per-row operators (length ≥ 1) in one pass over
/// `input` via the shared [`chain_morsel`] kernel.
///
/// Per-row operators map input partition `p` to output partition `p` with
/// sequentially assigned ids, so running every stage inside one loop with
/// per-stage [`IdGen`]s reproduces exactly the ids — and, per stage, the
/// association batches — that separate passes would have produced. Only the
/// last stage's rows are materialized. Returns per-stage output counts and
/// the final stage's partitions.
fn exec_chain<S: ProvenanceSink>(
    chain: &[&Operator],
    input: &Partitions,
    sink: &S,
) -> Result<(Vec<usize>, Partitions)> {
    let kernel = ChainKernel {
        ops: chain.iter().map(|op| op.id).collect(),
        stages: chain
            .iter()
            .map(|op| owned_stage(&op.kind))
            .collect::<Result<Vec<_>>>()?,
    };
    let n = chain.len();
    let results = collect_unit(
        kernel.ops[0],
        &kernel.ops,
        par_map(input, |pidx, partition| {
            chain_morsel::<S>(&kernel, pidx, partition)
        }),
    )?;
    let mut unpacked = Vec::with_capacity(results.len());
    for out in results {
        let TaskOut::Chain {
            rows,
            assocs,
            counts,
            err: _,
            panics: _,
        } = out
        else {
            return Err(EngineError::Internal(
                "chain task returned a non-chain result".into(),
            ));
        };
        unpacked.push((rows, assocs, counts));
    }
    if S::ENABLED {
        // Stage-major, partition-ordered emission — the batch sequence an
        // unfused execution reports per operator.
        for (s, op) in chain.iter().enumerate() {
            for (_, assocs, _) in &unpacked {
                if !assocs[s].is_empty() {
                    sink.unary_batch(op.id, &assocs[s]);
                }
            }
        }
    }
    let mut totals = vec![0usize; n];
    let mut partitions = Vec::with_capacity(unpacked.len());
    for (rows, _, counts) in unpacked {
        for (s, c) in counts.iter().enumerate() {
            totals[s] += c;
        }
        partitions.push(rows);
    }
    Ok((totals, partitions))
}

fn exec_read<S: ProvenanceSink>(
    op: OpId,
    items: &[DataItem],
    parts: usize,
    sink: &S,
) -> Partitions {
    // Contiguous chunks keep dataset order; ids are assigned in order. The
    // shared `read_ranges` layout pads with empty trailing partitions so
    // both executors always produce exactly `parts` partitions.
    let mut out = Vec::with_capacity(parts);
    for (pidx, range) in read_ranges(items.len(), parts).into_iter().enumerate() {
        let mut ids = IdGen::new(op, pidx);
        let rows: Vec<Row> = items[range]
            .iter()
            .map(|item| Row {
                id: ids.next(),
                item: item.clone(),
            })
            .collect();
        if S::ENABLED && !rows.is_empty() {
            let ids: Vec<ItemId> = rows.iter().map(|r| r.id).collect();
            sink.read_batch(op, &ids);
        }
        out.push(rows);
    }
    out
}

fn exec_flatten<S: ProvenanceSink>(
    op: OpId,
    input: &Partitions,
    col: &Path,
    new_attr: &str,
    sink: &S,
) -> Result<Partitions> {
    let attr = Label::new(new_attr);
    let results = collect_unit(
        op,
        &[op],
        par_map(input, |pidx, partition| {
            flatten_morsel::<S>(op, pidx, col, &attr, partition)
        }),
    )?;
    let mut partitions = Vec::with_capacity(results.len());
    for out in results {
        let TaskOut::Flatten { rows, assoc } = out else {
            return Err(EngineError::Internal(
                "flatten task returned a non-flatten result".into(),
            ));
        };
        if S::ENABLED && !assoc.is_empty() {
            sink.flatten_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    Ok(partitions)
}

fn exec_join<S: ProvenanceSink>(
    op: OpId,
    left: &Partitions,
    right: &Partitions,
    keys: &[(Path, Path)],
    sink: &S,
) -> Result<Partitions> {
    let left_paths: Vec<Path> = keys.iter().map(|(l, _)| l.clone()).collect();
    let right_paths: Vec<Path> = keys.iter().map(|(_, r)| r.clone()).collect();

    // Build side: hash the (smaller, by convention right) input.
    let build = join_build(right, &right_paths);

    let results = collect_unit(
        op,
        &[op],
        par_map(left, |pidx, partition| {
            join_probe::<S>(op, pidx, &build, &left_paths, partition)
        }),
    )?;
    let mut partitions = Vec::with_capacity(results.len());
    for out in results {
        let TaskOut::Binary { rows, assoc } = out else {
            return Err(EngineError::Internal(
                "join probe returned a non-binary result".into(),
            ));
        };
        if S::ENABLED && !assoc.is_empty() {
            sink.binary_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    Ok(partitions)
}

fn exec_union<S: ProvenanceSink>(
    op: OpId,
    left: &Partitions,
    right: &Partitions,
    sink: &S,
) -> Result<Partitions> {
    // Left branch tasks precede right branch tasks, matching the
    // scheduler's task order, so error tie-breaks agree.
    let relabel = |branch: &Partitions, is_left: bool, pidx_offset: usize| -> Result<Partitions> {
        let results = collect_unit(
            op,
            &[op],
            par_map(branch, |pidx, partition| {
                union_morsel::<S>(op, pidx_offset + pidx, is_left, partition)
            }),
        )?;
        let mut out = Vec::with_capacity(results.len());
        for task in results {
            let TaskOut::Binary { rows, assoc } = task else {
                return Err(EngineError::Internal(
                    "union task returned a non-binary result".into(),
                ));
            };
            if S::ENABLED && !assoc.is_empty() {
                sink.binary_batch(op, &assoc);
            }
            out.push(rows);
        }
        Ok(out)
    };
    let mut partitions = relabel(left, true, 0)?;
    partitions.extend(relabel(right, false, left.len())?);
    Ok(partitions)
}

fn exec_group_aggregate<S: ProvenanceSink>(
    op: OpId,
    input: &Partitions,
    keys: &[GroupKey],
    aggs: &[AggSpec],
    parts: usize,
    sink: &S,
) -> Result<Partitions> {
    // Shuffle: hash-partition rows by grouping key so each bucket can be
    // aggregated independently. Row order within a bucket follows the
    // global input order (partitions visited in order), keeping nesting
    // positions deterministic regardless of the partition count.
    let mut buckets: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
    for partition in input {
        for (b, rows) in shuffle_morsel(keys, parts, partition)
            .into_iter()
            .enumerate()
        {
            buckets[b].extend(rows);
        }
    }

    let kernel = GroupKernel {
        op,
        keys: keys.to_vec(),
        aggs: aggs.to_vec(),
        key_labels: keys.iter().map(|k| Label::new(&k.name)).collect(),
        agg_labels: aggs.iter().map(|a| Label::new(&a.output)).collect(),
    };
    let results = collect_unit(
        op,
        &[op],
        par_map(&buckets, |bidx, rows| agg_bucket::<S>(&kernel, bidx, rows)),
    )?;
    // Bucket placement depends on the partition count, so impose a
    // canonical global order: sort all groups by key. This makes program
    // output identical across partition configurations.
    let mut keyed: Vec<KeyedRow> = Vec::new();
    for out in results {
        let TaskOut::Agg { rows, assoc } = out else {
            return Err(EngineError::Internal(
                "aggregate task returned a non-aggregate result".into(),
            ));
        };
        if S::ENABLED && !assoc.is_empty() {
            sink.agg_batch(op, assoc);
        }
        keyed.extend(rows);
    }
    keyed.sort_by(|a, b| a.key.cmp(&b.key));
    let chunk = keyed.len().div_ceil(parts).max(1);
    let mut partitions: Partitions = Vec::with_capacity(parts);
    let mut current = Vec::with_capacity(chunk.min(keyed.len()));
    for k in keyed {
        current.push(Row {
            id: k.id,
            item: k.item,
        });
        if current.len() == chunk {
            partitions.push(std::mem::replace(&mut current, Vec::with_capacity(chunk)));
        }
    }
    if !current.is_empty() {
        partitions.push(current);
    }
    if partitions.is_empty() {
        partitions.push(Vec::new());
    }
    Ok(partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::items_of;
    use crate::exec::run;
    use crate::expr::Expr;
    use crate::op::{AggFunc, NamedExpr};
    use crate::program::ProgramBuilder;
    use crate::sink::NoSink;
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "nums",
            items_of(vec![
                vec![("k", Value::Int(1)), ("v", Value::Int(10))],
                vec![("k", Value::Int(2)), ("v", Value::Int(20))],
                vec![("k", Value::Int(1)), ("v", Value::Int(30))],
                vec![("k", Value::Int(3)), ("v", Value::Int(40))],
            ]),
        );
        c
    }

    #[test]
    fn spawn_matches_pool_executor_bit_for_bit() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let g = b.group_aggregate(
            f,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        );
        let p = b.build(g);
        let c = ctx();
        for parts in [1, 3] {
            let cfg = ExecConfig::with_partitions(parts).workers(1);
            let legacy = run_spawn(&p, &c, cfg, &NoSink).unwrap();
            let pooled = run(&p, &c, cfg, &NoSink).unwrap();
            assert_eq!(legacy.rows, pooled.rows, "parts={parts}");
            assert_eq!(legacy.op_counts, pooled.op_counts, "parts={parts}");
        }
    }

    #[test]
    fn spawn_unfused_matches_fused() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let s = b.select(f, vec![NamedExpr::aliased("kk", "k")]);
        let p = b.build(s);
        let c = ctx();
        let cfg = ExecConfig::with_partitions(3).workers(1);
        let fused = run_spawn(&p, &c, cfg, &NoSink).unwrap();
        let unfused = run_spawn_unfused(&p, &c, cfg, &NoSink).unwrap();
        assert_eq!(fused.rows, unfused.rows);
        assert_eq!(fused.op_counts, unfused.op_counts);
    }

    /// A panicking UDF surfaces as the same typed row error from both
    /// executors, at every partitioning.
    #[test]
    fn panicking_udf_yields_identical_row_error() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let m = b.map(
            r,
            crate::op::MapUdf {
                name: "boom".into(),
                f: std::sync::Arc::new(|item: &DataItem| {
                    if matches!(Path::attr("v").eval(item), Some(Value::Int(30))) {
                        panic!("bad value 30");
                    }
                    item.clone()
                }),
                output_schema: None,
            },
        );
        let p = b.build(m);
        let c = ctx();
        for parts in [1, 2, 4] {
            let cfg = ExecConfig::with_partitions(parts).workers(2);
            let legacy = run_spawn(&p, &c, cfg, &NoSink)
                .err()
                .expect("spawn run must fail");
            let pooled = run(&p, &c, cfg, &NoSink).err().expect("pool run must fail");
            assert_eq!(legacy, pooled, "parts={parts}");
            let EngineError::RowError { op, message, .. } = &legacy else {
                panic!("expected a row error, got: {legacy}");
            };
            assert_eq!(*op, m);
            assert_eq!(message, "udf `boom` panicked: bad value 30");
        }
    }
}
