//! Legacy per-operator spawning executor.
//!
//! This is the executor the morsel-driven scheduler ([`crate::exec`])
//! replaced: operators execute in topological (id) order, each operator
//! spawns (and joins) a fresh set of scoped threads over its input
//! partitions, and a full barrier separates stages. It is kept — bit-for-
//! bit output-compatible with the pool executor — for two reasons:
//!
//! * the differential oracle uses it as the *referee*: identifiers,
//!   association tables, and batch orders of the pool scheduler must match
//!   this executor exactly at every worker count;
//! * the scheduler benchmark uses it as the baseline the pool is measured
//!   against (`BENCH_2.json`).
//!
//! Shared pieces (identifier scheme, row/partition types, per-row kernels'
//! semantics, aggregate evaluation, read partition layout) live in
//! [`crate::exec`] and are reused here, so the two executors cannot drift
//! apart silently.

use pebble_nested::{DataItem, Label, Path, Value};

use crate::context::Context;
use crate::error::{EngineError, Result};
use crate::exec::{
    eval_agg, fusable_chain_len, join_key, read_ranges, ExecConfig, IdGen, ItemId, KeyedRow,
    Partitions, Row, RunOutput,
};
use crate::expr::Expr;
use crate::hash::{hash_one, FxHashMap};
use crate::op::OpId;
use crate::op::{key_value, AggSpec, GroupKey, MapUdf, NamedExpr, OpKind};
use crate::program::{Operator, Program};
use crate::sink::ProvenanceSink;

/// Executes `program` with the legacy per-operator spawning strategy.
///
/// Output (rows, identifiers, captured provenance, batch order) is
/// specified to be byte-identical to [`crate::exec::run`].
pub fn run_spawn<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, true)
}

/// [`run_spawn`] with operator fusion disabled.
pub fn run_spawn_unfused<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
) -> Result<RunOutput> {
    run_with_fusion(program, ctx, config, sink, false)
}

fn run_with_fusion<S: ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    sink: &S,
    fuse: bool,
) -> Result<RunOutput> {
    let op_schemas = program.infer_schemas(&ctx.source_schemas())?;
    let ops = program.operators();
    let mut outputs: Vec<Partitions> = Vec::with_capacity(ops.len());
    let mut op_counts = Vec::with_capacity(ops.len());
    let parts = config.partitions.max(1);
    let consumers = program.consumers();

    let mut idx = 0;
    while idx < ops.len() {
        let op = &ops[idx];
        // Fuse maximal chains of single-consumer per-row operators into one
        // pass over the head's input: no intermediate Vec<Row> is
        // materialized, while per-stage id generators and association
        // buffers keep identifiers and captured provenance byte-identical
        // to the unfused execution.
        let chain_len = if fuse {
            fusable_chain_len(ops, program.sink(), &consumers, idx)
        } else {
            1
        };
        if chain_len >= 2 {
            let chain: Vec<&Operator> = ops[idx..idx + chain_len].iter().collect();
            let input = &outputs[op.inputs[0] as usize];
            let (counts, fused) = exec_fused_chain::<S>(&chain, input, sink);
            for (i, count) in counts.iter().enumerate() {
                op_counts.push(*count);
                if i + 1 < counts.len() {
                    // Fused-away intermediate: nothing consumes its rows.
                    outputs.push(Vec::new());
                }
            }
            outputs.push(fused);
            idx += chain_len;
            continue;
        }
        let result: Partitions = match &op.kind {
            OpKind::Read { source } => {
                let items = ctx
                    .source(source)
                    .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;
                exec_read::<S>(op.id, items, parts, sink)
            }
            OpKind::Filter { predicate } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_per_row::<S, _>(op.id, input, sink, |row, out, assoc, ids| {
                    if predicate.eval_bool(&row.item) {
                        let id = ids.next();
                        out.push(Row {
                            id,
                            item: row.item.clone(),
                        });
                        if S::ENABLED {
                            assoc.push((row.id, id));
                        }
                    }
                })
            }
            OpKind::Select { exprs } => {
                let input = &outputs[op.inputs[0] as usize];
                let labels: Vec<Label> = exprs.iter().map(|ne| Label::new(&ne.name)).collect();
                exec_per_row::<S, _>(op.id, input, sink, |row, out, assoc, ids| {
                    let mut item = DataItem::new();
                    for (ne, label) in exprs.iter().zip(&labels) {
                        item.push(label.clone(), ne.expr.eval(&row.item));
                    }
                    let id = ids.next();
                    out.push(Row { id, item });
                    if S::ENABLED {
                        assoc.push((row.id, id));
                    }
                })
            }
            OpKind::Map { udf } => {
                let input = &outputs[op.inputs[0] as usize];
                let f = &udf.f;
                exec_per_row::<S, _>(op.id, input, sink, |row, out, assoc, ids| {
                    let item = f(&row.item);
                    let id = ids.next();
                    out.push(Row { id, item });
                    if S::ENABLED {
                        assoc.push((row.id, id));
                    }
                })
            }
            OpKind::Flatten { col, new_attr } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_flatten::<S>(op.id, input, col, new_attr, sink)
            }
            OpKind::Join { keys } => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                exec_join::<S>(op.id, left, right, keys, sink)
            }
            OpKind::Union => {
                let left = &outputs[op.inputs[0] as usize];
                let right = &outputs[op.inputs[1] as usize];
                exec_union::<S>(op.id, left, right, sink)
            }
            OpKind::GroupAggregate { keys, aggs } => {
                let input = &outputs[op.inputs[0] as usize];
                exec_group_aggregate::<S>(op.id, input, keys, aggs, parts, sink)
            }
        };
        op_counts.push(result.iter().map(Vec::len).sum());
        outputs.push(result);
        idx += 1;
    }

    let rows: Vec<Row> = std::mem::take(&mut outputs[program.sink() as usize])
        .into_iter()
        .flatten()
        .collect();
    Ok(RunOutput {
        rows,
        op_schemas,
        op_counts,
    })
}

/// One per-row stage of a fused chain.
enum StageKind<'a> {
    Filter(&'a Expr),
    Select {
        exprs: &'a [NamedExpr],
        labels: Vec<Label>,
    },
    Map(&'a MapUdf),
}

fn stage_kind(kind: &OpKind) -> Option<StageKind<'_>> {
    match kind {
        OpKind::Filter { predicate } => Some(StageKind::Filter(predicate)),
        OpKind::Select { exprs } => Some(StageKind::Select {
            exprs,
            labels: exprs.iter().map(|ne| Label::new(&ne.name)).collect(),
        }),
        OpKind::Map { udf } => Some(StageKind::Map(udf)),
        _ => None,
    }
}

/// Executes a fused chain of per-row operators in one pass over `input`.
///
/// Per-row operators map input partition `p` to output partition `p` with
/// sequentially assigned ids, so running every stage inside one loop with
/// per-stage [`IdGen`]s reproduces exactly the ids — and, per stage, the
/// association batches — that separate passes would have produced. Only the
/// last stage's rows are materialized. Returns per-stage output counts and
/// the final stage's partitions.
fn exec_fused_chain<S: ProvenanceSink>(
    chain: &[&Operator],
    input: &Partitions,
    sink: &S,
) -> (Vec<usize>, Partitions) {
    let stages: Vec<StageKind<'_>> = chain
        .iter()
        .map(|op| stage_kind(&op.kind).expect("chain ops are per-row"))
        .collect();
    let n = stages.len();
    let results = par_map(input, |pidx, partition| {
        let mut ids: Vec<IdGen> = chain.iter().map(|op| IdGen::new(op.id, pidx)).collect();
        let mut assocs: Vec<Vec<(ItemId, ItemId)>> = (0..n)
            .map(|_| Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 }))
            .collect();
        let mut counts = vec![0usize; n];
        let mut out = Vec::with_capacity(partition.len());
        'rows: for row in partition {
            let mut item = row.item.clone();
            let mut prev_id = row.id;
            for (s, stage) in stages.iter().enumerate() {
                match stage {
                    StageKind::Filter(pred) => {
                        if !pred.eval_bool(&item) {
                            continue 'rows;
                        }
                    }
                    StageKind::Select { exprs, labels } => {
                        let mut next = DataItem::new();
                        for (ne, label) in exprs.iter().zip(labels) {
                            next.push(label.clone(), ne.expr.eval(&item));
                        }
                        item = next;
                    }
                    StageKind::Map(udf) => item = (udf.f)(&item),
                }
                let id = ids[s].next();
                if S::ENABLED {
                    assocs[s].push((prev_id, id));
                }
                counts[s] += 1;
                prev_id = id;
            }
            out.push(Row { id: prev_id, item });
        }
        (out, assocs, counts)
    });
    if S::ENABLED {
        // Stage-major, partition-ordered emission — the batch sequence an
        // unfused execution reports per operator.
        for (s, op) in chain.iter().enumerate() {
            for (_, assocs, _) in &results {
                if !assocs[s].is_empty() {
                    sink.unary_batch(op.id, &assocs[s]);
                }
            }
        }
    }
    let mut totals = vec![0usize; n];
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, _, counts) in results {
        for (s, c) in counts.iter().enumerate() {
            totals[s] += c;
        }
        partitions.push(rows);
    }
    (totals, partitions)
}

/// Runs `f` over every input partition, in parallel when there are several.
///
/// This is the per-operator spawn/join this executor is named after: a
/// fresh scoped thread per partition, torn down at the end of the call.
fn par_map<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync + Send,
{
    if inputs.len() <= 1 {
        return inputs.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, p)| scope.spawn(move || f(i, p)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
}

fn exec_read<S: ProvenanceSink>(
    op: OpId,
    items: &[DataItem],
    parts: usize,
    sink: &S,
) -> Partitions {
    // Contiguous chunks keep dataset order; ids are assigned in order. The
    // shared `read_ranges` layout pads with empty trailing partitions so
    // both executors always produce exactly `parts` partitions.
    let mut out = Vec::with_capacity(parts);
    for (pidx, range) in read_ranges(items.len(), parts).into_iter().enumerate() {
        let mut ids = IdGen::new(op, pidx);
        let rows: Vec<Row> = items[range]
            .iter()
            .map(|item| Row {
                id: ids.next(),
                item: item.clone(),
            })
            .collect();
        if S::ENABLED && !rows.is_empty() {
            let ids: Vec<ItemId> = rows.iter().map(|r| r.id).collect();
            sink.read_batch(op, &ids);
        }
        out.push(rows);
    }
    out
}

/// Shared driver for per-row unary operators (filter/select/map).
fn exec_per_row<S, F>(op: OpId, input: &Partitions, sink: &S, body: F) -> Partitions
where
    S: ProvenanceSink,
    F: Fn(&Row, &mut Vec<Row>, &mut Vec<(ItemId, ItemId)>, &mut IdGen) + Sync + Send,
{
    let results = par_map(input, |pidx, partition| {
        let mut ids = IdGen::new(op, pidx);
        let mut out = Vec::with_capacity(partition.len());
        let mut assoc = Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
        for row in partition {
            body(row, &mut out, &mut assoc, &mut ids);
        }
        (out, assoc)
    });
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.unary_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    partitions
}

fn exec_flatten<S: ProvenanceSink>(
    op: OpId,
    input: &Partitions,
    col: &Path,
    new_attr: &str,
    sink: &S,
) -> Partitions {
    let attr = Label::new(new_attr);
    let results = par_map(input, |pidx, partition| {
        let mut ids = IdGen::new(op, pidx);
        let mut out = Vec::with_capacity(partition.len());
        let mut assoc: Vec<(ItemId, u32, ItemId)> =
            Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
        for row in partition {
            let Some(elements) = col.eval(&row.item).and_then(Value::as_collection) else {
                continue; // missing/null collections produce no rows
            };
            for (idx, element) in elements.iter().enumerate() {
                let mut item = row.item.clone();
                item.push(attr.clone(), element.clone());
                let id = ids.next();
                out.push(Row { id, item });
                if S::ENABLED {
                    assoc.push((row.id, idx as u32 + 1, id));
                }
            }
        }
        (out, assoc)
    });
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.flatten_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    partitions
}

fn exec_join<S: ProvenanceSink>(
    op: OpId,
    left: &Partitions,
    right: &Partitions,
    keys: &[(Path, Path)],
    sink: &S,
) -> Partitions {
    let left_paths: Vec<Path> = keys.iter().map(|(l, _)| l.clone()).collect();
    let right_paths: Vec<Path> = keys.iter().map(|(_, r)| r.clone()).collect();

    // Build side: hash the (smaller, by convention right) input.
    let mut build: FxHashMap<Vec<Value>, Vec<&Row>> = FxHashMap::default();
    for partition in right {
        for row in partition {
            if let Some(k) = join_key(&row.item, &right_paths) {
                build.entry(k).or_default().push(row);
            }
        }
    }

    let results = par_map(left, |pidx, partition| {
        let mut ids = IdGen::new(op, pidx);
        let mut out = Vec::with_capacity(partition.len());
        let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
            Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
        for lrow in partition {
            let Some(k) = join_key(&lrow.item, &left_paths) else {
                continue;
            };
            if let Some(matches) = build.get(&k) {
                for rrow in matches {
                    let item = lrow.item.merged(&rrow.item);
                    let id = ids.next();
                    out.push(Row { id, item });
                    if S::ENABLED {
                        assoc.push((Some(lrow.id), Some(rrow.id), id));
                    }
                }
            }
        }
        (out, assoc)
    });
    let mut partitions = Vec::with_capacity(results.len());
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.binary_batch(op, &assoc);
        }
        partitions.push(rows);
    }
    partitions
}

fn exec_union<S: ProvenanceSink>(
    op: OpId,
    left: &Partitions,
    right: &Partitions,
    sink: &S,
) -> Partitions {
    let relabel = |partitions: &Partitions, is_left: bool, pidx_offset: usize| -> Partitions {
        let results = par_map(partitions, |pidx, partition| {
            let mut ids = IdGen::new(op, pidx_offset + pidx);
            let mut out = Vec::with_capacity(partition.len());
            let mut assoc: Vec<(Option<ItemId>, Option<ItemId>, ItemId)> =
                Vec::with_capacity(if S::ENABLED { partition.len() } else { 0 });
            for row in partition {
                let id = ids.next();
                out.push(Row {
                    id,
                    item: row.item.clone(),
                });
                if S::ENABLED {
                    if is_left {
                        assoc.push((Some(row.id), None, id));
                    } else {
                        assoc.push((None, Some(row.id), id));
                    }
                }
            }
            (out, assoc)
        });
        let mut out = Vec::with_capacity(results.len());
        for (rows, assoc) in results {
            if S::ENABLED && !assoc.is_empty() {
                sink.binary_batch(op, &assoc);
            }
            out.push(rows);
        }
        out
    };
    let mut partitions = relabel(left, true, 0);
    partitions.extend(relabel(right, false, left.len()));
    partitions
}

fn exec_group_aggregate<S: ProvenanceSink>(
    op: OpId,
    input: &Partitions,
    keys: &[GroupKey],
    aggs: &[AggSpec],
    parts: usize,
    sink: &S,
) -> Partitions {
    // Shuffle: hash-partition rows by grouping key so each bucket can be
    // aggregated independently. Row order within a bucket follows the
    // global input order (partitions visited in order), keeping nesting
    // positions deterministic regardless of the partition count.
    let mut buckets: Vec<Vec<&Row>> = (0..parts).map(|_| Vec::new()).collect();
    for partition in input {
        for row in partition {
            let key: Vec<Value> = keys.iter().map(|k| key_value(&row.item, &k.path)).collect();
            let bucket = (hash_one(&key) as usize) % parts;
            buckets[bucket].push(row);
        }
    }

    let key_labels: Vec<Label> = keys.iter().map(|k| Label::new(&k.name)).collect();
    let agg_labels: Vec<Label> = aggs.iter().map(|a| Label::new(&a.output)).collect();
    let results = par_map(&buckets, |pidx, rows| {
        let mut ids = IdGen::new(op, pidx);
        // First-seen-ordered grouping within the bucket. The map holds an
        // index into `grouped`, so each distinct key is cloned exactly once
        // (on first sight) instead of once per probing row.
        let mut index: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
        let mut grouped: Vec<(Vec<Value>, Vec<&Row>)> = Vec::new();
        for row in rows.iter() {
            let key: Vec<Value> = keys.iter().map(|k| key_value(&row.item, &k.path)).collect();
            match index.get(&key) {
                Some(&slot) => grouped[slot].1.push(row),
                None => {
                    index.insert(key.clone(), grouped.len());
                    grouped.push((key, vec![row]));
                }
            }
        }
        let mut out = Vec::with_capacity(grouped.len());
        let mut assoc: Vec<(Vec<ItemId>, ItemId)> =
            Vec::with_capacity(if S::ENABLED { grouped.len() } else { 0 });
        for (key, members) in grouped {
            let mut item = DataItem::new();
            for (label, kv) in key_labels.iter().zip(&key) {
                item.push(label.clone(), kv.clone());
            }
            for (agg, label) in aggs.iter().zip(&agg_labels) {
                item.push(label.clone(), eval_agg(agg, &members));
            }
            let id = ids.next();
            if S::ENABLED {
                assoc.push((members.iter().map(|r| r.id).collect(), id));
            }
            out.push(KeyedRow { key, id, item });
        }
        (out, assoc)
    });
    // Bucket placement depends on the partition count, so impose a
    // canonical global order: sort all groups by key. This makes program
    // output identical across partition configurations.
    let mut keyed: Vec<KeyedRow> = Vec::new();
    for (rows, assoc) in results {
        if S::ENABLED && !assoc.is_empty() {
            sink.agg_batch(op, assoc);
        }
        keyed.extend(rows);
    }
    keyed.sort_by(|a, b| a.key.cmp(&b.key));
    let chunk = keyed.len().div_ceil(parts).max(1);
    let mut partitions: Partitions = Vec::with_capacity(parts);
    let mut current = Vec::with_capacity(chunk.min(keyed.len()));
    for k in keyed {
        current.push(Row {
            id: k.id,
            item: k.item,
        });
        if current.len() == chunk {
            partitions.push(std::mem::replace(&mut current, Vec::with_capacity(chunk)));
        }
    }
    if !current.is_empty() {
        partitions.push(current);
    }
    if partitions.is_empty() {
        partitions.push(Vec::new());
    }
    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::items_of;
    use crate::exec::run;
    use crate::op::AggFunc;
    use crate::program::ProgramBuilder;
    use crate::sink::NoSink;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "nums",
            items_of(vec![
                vec![("k", Value::Int(1)), ("v", Value::Int(10))],
                vec![("k", Value::Int(2)), ("v", Value::Int(20))],
                vec![("k", Value::Int(1)), ("v", Value::Int(30))],
                vec![("k", Value::Int(3)), ("v", Value::Int(40))],
            ]),
        );
        c
    }

    #[test]
    fn spawn_matches_pool_executor_bit_for_bit() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let g = b.group_aggregate(
            f,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        );
        let p = b.build(g);
        let c = ctx();
        for parts in [1, 3] {
            let cfg = ExecConfig::with_partitions(parts).workers(1);
            let legacy = run_spawn(&p, &c, cfg, &NoSink).unwrap();
            let pooled = run(&p, &c, cfg, &NoSink).unwrap();
            assert_eq!(legacy.rows, pooled.rows, "parts={parts}");
            assert_eq!(legacy.op_counts, pooled.op_counts, "parts={parts}");
        }
    }

    #[test]
    fn spawn_unfused_matches_fused() {
        let mut b = ProgramBuilder::new();
        let r = b.read("nums");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(20i64)));
        let s = b.select(f, vec![NamedExpr::aliased("kk", "k")]);
        let p = b.build(s);
        let c = ctx();
        let cfg = ExecConfig::with_partitions(3).workers(1);
        let fused = run_spawn(&p, &c, cfg, &NoSink).unwrap();
        let unfused = run_spawn_unfused(&p, &c, cfg, &NoSink).unwrap();
        assert_eq!(fused.rows, unfused.rows);
        assert_eq!(fused.op_counts, unfused.op_counts);
    }
}
