//! Deterministic fault injection for testing the engine's containment.
//!
//! A test arms one [`FaultPlan`] process-wide; every executor kernel calls
//! [`check`] at the top of its row loop and fails (typed error or panic,
//! by [`FaultKind`]) when it is about to evaluate a matching row. This is
//! how the panic-injection harness exercises the catch_unwind boundary of
//! both the morsel executor and the legacy spawn executor with the *same*
//! failure, so the oracle can assert they return byte-identical errors.
//!
//! ### Matching and determinism
//!
//! A plan matches rows of operator `op` whose identifier has sequence
//! number `seq` (the low 32 bits of an [`ItemId`]). Sequence numbers
//! restart per partition, so several rows can match; both executors
//! resolve the tie identically — the lowest partition in task order wins —
//! which is exactly the determinism contract the oracle verifies.
//!
//! Faults must target *unit heads* (the first operator of a fused chain,
//! or any non-fusable operator): later chain stages see morsel-local
//! identifiers before stitching, so a mid-chain match would fire on
//! different rows at different morsel sizes. `FaultKind::Panic` messages
//! deliberately omit the row identifier for the same reason — the panic
//! escapes to the task boundary where per-row attribution is gone.
//!
//! The hook is compiled in unconditionally (it is two relaxed atomic loads
//! when disarmed, invisible next to per-row evaluation work) so the
//! integration harness can test release builds.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{EngineError, Result};
use crate::exec::ItemId;
use crate::op::OpId;

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a typed [`EngineError::RowError`] from the kernel.
    Error,
    /// Panic, exercising the `catch_unwind` boundary (surfaces as
    /// [`EngineError::WorkerPanic`]).
    Panic,
}

/// An armed fault: fail when operator `op` evaluates a row whose
/// identifier carries sequence number `seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Target operator (must be a unit head — see the module docs).
    pub op: OpId,
    /// Row sequence number (low 32 bits of the row's [`ItemId`]).
    pub seq: u32,
    /// Fail as a typed error or as a panic.
    pub kind: FaultKind,
}

/// Packed armed state: `0` = disarmed, else
/// `1 << 63 | kind << 62 | op << 32 | seq`. A single word keeps the
/// disarmed fast path to one relaxed load.
static PLAN: AtomicU64 = AtomicU64::new(0);

const ARMED_BIT: u64 = 1 << 63;
const PANIC_BIT: u64 = 1 << 62;

/// Arms `plan` process-wide. Tests using this must not run concurrently
/// with other engine executions (use a dedicated integration-test binary).
pub fn arm(plan: FaultPlan) {
    let kind = if plan.kind == FaultKind::Panic {
        PANIC_BIT
    } else {
        0
    };
    PLAN.store(
        ARMED_BIT | kind | ((plan.op as u64) << 32) | plan.seq as u64,
        Ordering::SeqCst,
    );
}

/// Armed spill fault: `0` = disarmed, else `1 << 63 | op`. Fires whenever
/// the engine is about to write spilled state for the target operator.
static SPILL_PLAN: AtomicU64 = AtomicU64::new(0);

/// Arms a spill-write fault for `op` process-wide: every attempt to write
/// spilled state (operator output blocks, grace-join buckets, capture
/// association chunks) for that operator fails with a deterministic
/// [`EngineError::SpillError`]. The error message carries no filesystem
/// paths, so failing runs stay `Display`-comparable across configurations.
pub fn arm_spill(op: OpId) {
    SPILL_PLAN.store(ARMED_BIT | op as u64, Ordering::SeqCst);
}

/// Disarms any armed fault (row-level and spill).
pub fn disarm() {
    PLAN.store(0, Ordering::SeqCst);
    SPILL_PLAN.store(0, Ordering::SeqCst);
}

/// Spill hook: fails iff a spill fault is armed for `op`. Public because
/// the capture layer (a downstream crate) calls it before writing
/// association spill chunks.
#[inline]
pub fn check_spill(op: OpId) -> Result<()> {
    let packed = SPILL_PLAN.load(Ordering::Relaxed);
    if packed == 0 {
        return Ok(());
    }
    check_spill_armed(packed, op)
}

#[cold]
fn check_spill_armed(packed: u64, op: OpId) -> Result<()> {
    if (packed & !ARMED_BIT) as u32 != op {
        return Ok(());
    }
    Err(EngineError::SpillError {
        op,
        message: "injected spill-write failure".into(),
    })
}

/// Kernel hook: fails iff an armed plan matches `(op, row)`.
#[inline]
pub(crate) fn check(op: OpId, row: ItemId) -> Result<()> {
    let packed = PLAN.load(Ordering::Relaxed);
    if packed == 0 {
        return Ok(());
    }
    check_armed(packed, op, row)
}

#[cold]
fn check_armed(packed: u64, op: OpId, row: ItemId) -> Result<()> {
    let target_op = ((packed >> 32) & 0x3FFF_FFFF) as u32;
    let target_seq = packed as u32;
    if op != target_op || (row & 0xFFFF_FFFF) as u32 != target_seq {
        return Ok(());
    }
    if packed & PANIC_BIT != 0 {
        // No row identifier in the message: any matching partition may
        // reach the panic first, but the payload must not depend on which.
        panic!("injected fault: operator #{op} poisoned at sequence {target_seq}");
    }
    Err(EngineError::RowError {
        op,
        item: row,
        message: format!("injected fault at sequence {target_seq}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_silent() {
        disarm();
        assert!(check(3, 0x0003_0000_0000_0005).is_ok());
    }

    #[test]
    fn armed_error_matches_op_and_seq() {
        arm(FaultPlan {
            op: 3,
            seq: 5,
            kind: FaultKind::Error,
        });
        // Wrong op and wrong seq pass through.
        assert!(check(2, 0x0002_0000_0000_0005).is_ok());
        assert!(check(3, 0x0003_0000_0000_0004).is_ok());
        // Match fails with a row error carrying op + item id.
        let err = check(3, 0x0003_0001_0000_0005).unwrap_err();
        assert_eq!(
            err,
            EngineError::RowError {
                op: 3,
                item: 0x0003_0001_0000_0005,
                message: "injected fault at sequence 5".into(),
            }
        );
        disarm();
    }
}
