//! Out-of-core support: memory accounting and spill files.
//!
//! The morsel scheduler runs under an optional memory budget
//! ([`crate::ExecConfig::mem_budget_bytes`] / `PEBBLE_MEM_BUDGET`). A
//! [`MemoryTracker`] accounts for pipeline-resident state (materialized
//! unit outputs); when adding more state would exceed the budget, the
//! scheduler spills it to disk instead:
//!
//! * unit outputs are encoded morsel-by-morsel into checksummed blocks
//!   (the segment framing of `pebble-serve`, factored into
//!   [`pebble_nested::encode`]) and re-read block-at-a-time by consumer
//!   jobs — a spilled block is simply a morsel, and the scheduler's
//!   stitching is specified byte-identical at any morsel size, so results
//!   and provenance do not change;
//! * join build sides grace-hash partition into on-disk buckets that the
//!   probe phase re-reads and processes one at a time;
//! * group shuffle buckets stream to per-bucket files consumed by the
//!   aggregation jobs.
//!
//! Spill files live in a per-run subdirectory of `PEBBLE_SPILL_DIR`
//! (default: the system temp dir) and are removed when the run's
//! [`SpillDir`] drops. Every block is CRC-framed; a corrupt or truncated
//! re-read surfaces as a typed [`EngineError::SpillError`] — never a
//! panic, and never a message containing a filesystem path (spill paths
//! are per-run, and failing runs are compared by their `Display`
//! rendering).

use std::fs;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use pebble_nested::encode::{
    crc32, get_ids_delta, get_item, get_varint, put_ids_delta, put_item, put_varint, take_frame,
    CodecError, StringTable,
};

use crate::error::{EngineError, Result};
use crate::exec::Row;
use crate::op::OpId;

/// Block type tag for a spilled row block (the only tag spill files use;
/// the framing is shared with the richer segment format).
pub(crate) const BLOCK_SPILL_ROWS: u8 = 0x52; // 'R'
pub(crate) const BLOCK_SPILL_ROWS_SHARED: u8 = 0x53; // 'S'

/// Central accountant for pipeline-resident bytes.
///
/// `budget == 0` disables tracking entirely (the unlimited in-memory
/// path). All mutation happens on the scheduler thread; the atomics exist
/// so the capture layer can share the same type.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    budget: usize,
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryTracker {
    /// Tracker with the given budget (`0` = unlimited, tracking off).
    pub fn new(budget: usize) -> Self {
        MemoryTracker {
            budget,
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Whether a budget is in force.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The configured budget in bytes (`0` = unlimited).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Would tracking `extra` more bytes exceed the budget?
    pub fn would_exceed(&self, extra: usize) -> bool {
        self.enabled() && self.current.load(Ordering::Relaxed).saturating_add(extra) > self.budget
    }

    /// Tracks `bytes` of newly resident state.
    pub fn add(&self, bytes: usize) {
        if !self.enabled() {
            return;
        }
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes` of tracked state.
    pub fn sub(&self, bytes: usize) {
        if !self.enabled() {
            return;
        }
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Currently tracked bytes.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Approximate resident footprint of one [`Row`].
pub(crate) fn row_bytes(row: &Row) -> usize {
    std::mem::size_of::<Row>() + row.item.deep_size()
}

/// Resident cost of a row whose item aliases data that outlives the run
/// (e.g. a scan of a `Context` source): the `Row` struct plus the shared
/// handle — spilling such rows cannot release the aliased bytes.
pub(crate) const ROW_SHELL_BYTES: usize = std::mem::size_of::<Row>() + 8;

/// Row count up to which footprint estimates walk every row; larger
/// slices are sampled (see [`rows_bytes`]).
const SIZE_SAMPLE_EXACT: usize = 256;
/// Rows sampled (evenly strided) from a large slice to estimate its
/// footprint.
const SIZE_SAMPLE_ROWS: usize = 128;

/// Approximate resident footprint of a slice of rows.
///
/// Small slices are measured exactly; large ones deterministically sample
/// an even stride of rows and scale up. The estimate only feeds the
/// memory-budget spill decision — results are byte-identical whichever
/// way the decision goes, so trading a little accuracy for not deep-
/// walking hundreds of thousands of rows per operator output is free.
pub(crate) fn rows_bytes(rows: &[Row]) -> usize {
    if rows.len() <= SIZE_SAMPLE_EXACT {
        return rows.iter().map(row_bytes).sum();
    }
    let stride = rows.len().div_ceil(SIZE_SAMPLE_ROWS);
    let mut sampled = 0usize;
    let mut count = 0usize;
    let mut i = 0;
    while i < rows.len() {
        sampled += row_bytes(&rows[i]);
        count += 1;
        i += stride;
    }
    sampled * rows.len() / count.max(1)
}

/// Approximate resident footprint of a partitioned row set.
pub(crate) fn parts_bytes(parts: &[Vec<Row>]) -> usize {
    parts.iter().map(|p| rows_bytes(p)).sum()
}

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-run scratch directory name prefixes this process (and its peers)
/// create under the spill base; stale-sweep candidates.
const RUN_DIR_PREFIXES: [&str; 2] = ["pebble-spill-", "pebble-capture-"];

/// Removes sibling per-run scratch directories left behind by processes
/// that died before their `Drop` ran (kill -9, panic=abort). Returns the
/// number of directories removed.
///
/// Only directories named `pebble-spill-<pid>-<seq>` or
/// `pebble-capture-<pid>-<seq>` whose pid is provably dead are touched.
/// Liveness is probed via `/proc/<pid>`; where that is unavailable every
/// pid counts as alive and nothing is swept. A pid that was reused by an
/// unrelated live process therefore also counts as alive — the orphan dir
/// survives until that pid dies, which is the safe side of the collision.
pub fn sweep_stale_run_dirs(base: &Path) -> usize {
    let Ok(entries) = fs::read_dir(base) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = run_dir_pid(name.to_str().unwrap_or("")) else {
            continue;
        };
        if pid == std::process::id() || pid_alive(pid) {
            continue;
        }
        let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
        if is_dir && fs::remove_dir_all(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// The owning pid of a per-run scratch directory name, or `None` when the
/// name does not match `<prefix><pid>-<seq>` with numeric pid and seq.
fn run_dir_pid(name: &str) -> Option<u32> {
    let rest = RUN_DIR_PREFIXES.iter().find_map(|p| name.strip_prefix(p))?;
    let (pid, seq) = rest.split_once('-')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse::<u32>().ok()
}

/// Whether a process with this pid is currently running. Conservative:
/// without a `/proc` to consult, everything is considered alive.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Sweeps stale run directories under `base` at most once per process per
/// base path — runs under a budget are frequent and the readdir need not
/// be repaid on every one.
pub fn sweep_stale_run_dirs_once(base: &Path) {
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static SWEPT: OnceLock<std::sync::Mutex<HashSet<PathBuf>>> = OnceLock::new();
    let mut seen = SWEPT
        .get_or_init(|| std::sync::Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if seen.insert(base.to_path_buf()) {
        sweep_stale_run_dirs(base);
    }
}

/// A per-run spill directory, removed (with everything in it) on drop.
///
/// The parent directory comes from `PEBBLE_SPILL_DIR` when set (and
/// non-empty), else the system temp dir; the per-run subdirectory name is
/// unique per process and run.
#[derive(Debug)]
pub(crate) struct SpillDir {
    path: PathBuf,
    created: std::sync::Mutex<bool>,
}

impl SpillDir {
    pub(crate) fn for_run() -> SpillDir {
        let base = match std::env::var("PEBBLE_SPILL_DIR") {
            Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
            _ => std::env::temp_dir(),
        };
        sweep_stale_run_dirs_once(&base);
        let unique = format!(
            "pebble-spill-{}-{}",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        SpillDir {
            path: base.join(unique),
            created: std::sync::Mutex::new(false),
        }
    }

    /// Absolute path of a (not yet created) spill file inside the run
    /// directory, creating the directory on first use.
    pub(crate) fn file(&self, name: &str) -> Result<PathBuf, std::io::Error> {
        let mut created = self.created.lock().unwrap_or_else(|p| p.into_inner());
        if !*created {
            fs::create_dir_all(&self.path)?;
            *created = true;
        }
        Ok(self.path.join(name))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let created = self.created.lock().map(|c| *c).unwrap_or(true);
        if created {
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

/// Location of one encoded block within a spill file.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockMeta {
    pub(crate) offset: u64,
    pub(crate) len: usize,
    pub(crate) rows: usize,
}

/// Encodes a row block: row count, delta-encoded ids, a block-local string
/// table, then the items.
///
/// The frame is assembled in place (type byte, fixed-width length
/// placeholder patched at the end, body, checksum) rather than through
/// [`frame_block`]: spilling moves hundreds of megabytes per budgeted run
/// and the extra whole-payload copy is measurable. The bytes produced are
/// identical.
pub(crate) fn encode_row_block(rows: &[Row]) -> Vec<u8> {
    // Items go to a scratch buffer first — the wire format puts the string
    // table (only known after encoding them) ahead of the item bytes.
    let mut table = StringTable::new();
    let mut items = Vec::with_capacity(rows.len() * 128);
    for row in rows {
        put_item(&mut items, &mut table, &row.item);
    }
    let mut out = Vec::with_capacity(items.len() + items.len() / 4 + rows.len() * 2 + 64);
    out.push(BLOCK_SPILL_ROWS);
    out.extend_from_slice(&[0u8; 4]); // length, patched below
    let body_start = out.len();
    let ids: Vec<u64> = rows.iter().map(|r| r.id).collect();
    put_ids_delta(&mut out, &ids);
    table.encode(&mut out);
    put_varint(&mut out, items.len() as u64);
    out.extend_from_slice(&items);
    let body_len = (out.len() - body_start) as u32;
    out[1..5].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encodes a row block whose string table lives at file scope: the block
/// carries only the strings `table` had not seen before (see
/// [`StringTable::encode_from`]). On workloads where string payloads recur
/// across blocks — the common case for join outputs, where the same text
/// joins against many rows — this writes each unique string once per file
/// instead of once per block. Only valid for files read sequentially from
/// the start ([`SpilledBucket`]); randomly accessed files keep
/// self-contained blocks.
pub(crate) fn encode_row_block_shared(rows: &[Row], table: &mut StringTable) -> Vec<u8> {
    let mark = table.len();
    let mut items = Vec::with_capacity(rows.len() * 128);
    for row in rows {
        put_item(&mut items, table, &row.item);
    }
    let mut out = Vec::with_capacity(items.len() + items.len() / 4 + rows.len() * 2 + 64);
    out.push(BLOCK_SPILL_ROWS_SHARED);
    out.extend_from_slice(&[0u8; 4]); // length, patched below
    let body_start = out.len();
    let ids: Vec<u64> = rows.iter().map(|r| r.id).collect();
    put_ids_delta(&mut out, &ids);
    table.encode_from(mark, &mut out);
    put_varint(&mut out, items.len() as u64);
    out.extend_from_slice(&items);
    let body_len = (out.len() - body_start) as u32;
    out[1..5].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes one framed block written by [`encode_row_block_shared`],
/// appending its table delta to `table`. Blocks must be decoded in file
/// order with the same running table the writer used.
pub(crate) fn decode_row_block_shared(
    mut bytes: &[u8],
    table: &mut StringTable,
) -> Result<Vec<Row>, CodecError> {
    let (ty, payload) = take_frame(&mut bytes)?;
    if ty != BLOCK_SPILL_ROWS_SHARED {
        return Err(CodecError(format!("unexpected spill block type {ty}")));
    }
    if !bytes.is_empty() {
        return Err(CodecError("trailing bytes after spill block".into()));
    }
    let mut cur = payload;
    let ids = get_ids_delta(&mut cur)?;
    table.decode_append(&mut cur)?;
    let items_len = get_varint(&mut cur)? as usize;
    if cur.len() != items_len {
        return Err(CodecError(
            "spill block item section length mismatch".into(),
        ));
    }
    let mut rows = Vec::with_capacity(ids.len());
    for id in ids {
        let item = get_item(&mut cur, table)?;
        rows.push(Row { id, item });
    }
    if !cur.is_empty() {
        return Err(CodecError("trailing bytes after spill block items".into()));
    }
    Ok(rows)
}

/// Decodes one framed row block written by [`encode_row_block`].
pub(crate) fn decode_row_block(mut bytes: &[u8]) -> Result<Vec<Row>, CodecError> {
    let (ty, payload) = take_frame(&mut bytes)?;
    if ty != BLOCK_SPILL_ROWS {
        return Err(CodecError(format!("unexpected spill block type {ty}")));
    }
    if !bytes.is_empty() {
        return Err(CodecError("trailing bytes after spill block".into()));
    }
    let mut cur = payload;
    let ids = get_ids_delta(&mut cur)?;
    let table = StringTable::decode(&mut cur)?;
    let items_len = get_varint(&mut cur)? as usize;
    if cur.len() != items_len {
        return Err(CodecError(
            "spill block item section length mismatch".into(),
        ));
    }
    let mut rows = Vec::with_capacity(ids.len());
    for id in ids {
        let item = get_item(&mut cur, &table)?;
        rows.push(Row { id, item });
    }
    if !cur.is_empty() {
        return Err(CodecError("trailing bytes after spill block items".into()));
    }
    Ok(rows)
}

/// Append-only writer of framed row blocks for one spill file.
pub(crate) struct SpillWriter {
    file: std::io::BufWriter<fs::File>,
    offset: u64,
    op: OpId,
}

impl SpillWriter {
    /// Creates (truncates) the spill file at `path`. Any I/O failure is a
    /// [`EngineError::SpillError`] attributed to `op`.
    pub(crate) fn create(op: OpId, path: &Path) -> Result<SpillWriter> {
        crate::fault::check_spill(op)?;
        let file = fs::File::create(path).map_err(|e| spill_io(op, "create spill file", &e))?;
        Ok(SpillWriter {
            file: std::io::BufWriter::new(file),
            offset: 0,
            op,
        })
    }

    /// Appends `rows` as one framed block, returning its location.
    pub(crate) fn write_rows(&mut self, rows: &[Row]) -> Result<BlockMeta> {
        crate::fault::check_spill(self.op)?;
        let block = encode_row_block(rows);
        self.file
            .write_all(&block)
            .map_err(|e| spill_io(self.op, "write spill block", &e))?;
        let meta = BlockMeta {
            offset: self.offset,
            len: block.len(),
            rows: rows.len(),
        };
        self.offset += block.len() as u64;
        Ok(meta)
    }

    /// Appends `rows` as one shared-table block (see
    /// [`encode_row_block_shared`]), returning its location.
    pub(crate) fn write_rows_shared(
        &mut self,
        rows: &[Row],
        table: &mut StringTable,
    ) -> Result<BlockMeta> {
        crate::fault::check_spill(self.op)?;
        let block = encode_row_block_shared(rows, table);
        self.file
            .write_all(&block)
            .map_err(|e| spill_io(self.op, "write spill block", &e))?;
        let meta = BlockMeta {
            offset: self.offset,
            len: block.len(),
            rows: rows.len(),
        };
        self.offset += block.len() as u64;
        Ok(meta)
    }

    /// Flushes buffered bytes and returns the total file length.
    pub(crate) fn finish(mut self) -> Result<u64> {
        self.file
            .flush()
            .map_err(|e| spill_io(self.op, "flush spill file", &e))?;
        Ok(self.offset)
    }
}

pub(crate) fn spill_io(op: OpId, what: &str, e: &std::io::Error) -> EngineError {
    // `kind()` keeps the message free of filesystem paths.
    EngineError::SpillError {
        op,
        message: format!("{what}: {}", e.kind()),
    }
}

fn spill_codec(op: OpId, e: &CodecError) -> EngineError {
    EngineError::SpillError {
        op,
        message: format!("reload spill block: {e}"),
    }
}

/// One operator's spilled output partitions: blocks of rows in a single
/// file, block boundaries chosen at spill time from the run's morsel
/// length. The file is removed when the last reference drops.
#[derive(Debug)]
pub(crate) struct SpilledRows {
    path: PathBuf,
    /// Per output partition, the blocks holding its rows, in row order.
    pub(crate) parts: Vec<Vec<BlockMeta>>,
    /// Row count per partition.
    pub(crate) part_rows: Vec<usize>,
    /// Total encoded bytes.
    pub(crate) bytes: u64,
    /// Operator the rows belong to (spill errors attribute here).
    pub(crate) op: OpId,
}

impl SpilledRows {
    /// Spills `parts` to `path`, cutting blocks of at most `block_rows`
    /// rows (matching the run's morsel length keeps downstream morsel
    /// boundaries identical to the in-memory path).
    pub(crate) fn write(
        op: OpId,
        path: PathBuf,
        parts: &[Vec<Row>],
        block_rows: usize,
    ) -> Result<SpilledRows> {
        let block_rows = block_rows.max(1);
        let mut writer = SpillWriter::create(op, &path)?;
        let mut metas: Vec<Vec<BlockMeta>> = Vec::with_capacity(parts.len());
        let mut part_rows = Vec::with_capacity(parts.len());
        for rows in parts {
            let mut blocks = Vec::with_capacity(rows.len().div_ceil(block_rows.max(1)));
            for chunk in rows.chunks(block_rows) {
                blocks.push(writer.write_rows(chunk)?);
            }
            metas.push(blocks);
            part_rows.push(rows.len());
        }
        let bytes = writer.finish()?;
        Ok(SpilledRows {
            path,
            parts: metas,
            part_rows,
            bytes,
            op,
        })
    }

    /// Total row count across partitions.
    pub(crate) fn total_rows(&self) -> usize {
        self.part_rows.iter().sum()
    }

    /// Reads one block's raw framed bytes.
    fn read_block_bytes(&self, meta: BlockMeta) -> Result<Vec<u8>> {
        let mut file =
            fs::File::open(&self.path).map_err(|e| spill_io(self.op, "open spill file", &e))?;
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| spill_io(self.op, "seek spill file", &e))?;
        let mut buf = vec![0u8; meta.len];
        file.read_exact(&mut buf)
            .map_err(|e| spill_io(self.op, "read spill block", &e))?;
        Ok(buf)
    }

    /// Reads and decodes one block.
    pub(crate) fn read_block(&self, meta: BlockMeta) -> Result<Vec<Row>> {
        let buf = self.read_block_bytes(meta)?;
        decode_row_block(&buf).map_err(|e| spill_codec(self.op, &e))
    }

    /// Reads every block of every partition back into memory, in order.
    pub(crate) fn load(&self) -> Result<Vec<Vec<Row>>> {
        let mut parts = Vec::with_capacity(self.parts.len());
        for blocks in &self.parts {
            let mut rows = Vec::new();
            for &meta in blocks {
                rows.extend(self.read_block(meta)?);
            }
            parts.push(rows);
        }
        Ok(parts)
    }
}

impl Drop for SpilledRows {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A single-partition spill file used for grace-join buckets and shuffle
/// buckets: rows append in arrival order and are re-read in one pass.
/// Blocks use the shared-table format ([`encode_row_block_shared`]) — the
/// string table spans the file, so loading must walk blocks in order.
#[derive(Debug)]
pub(crate) struct SpilledBucket {
    inner: SpilledRows,
}

impl SpilledBucket {
    pub(crate) fn rows(&self) -> usize {
        self.inner.part_rows[0]
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.inner.bytes
    }

    /// Reads the whole bucket back, in append order, replaying the file's
    /// string-table deltas as it goes.
    pub(crate) fn load(&self) -> Result<Vec<Row>> {
        let mut table = StringTable::new();
        let mut rows = Vec::with_capacity(self.rows());
        for &meta in &self.inner.parts[0] {
            let buf = self.inner.read_block_bytes(meta)?;
            let block = decode_row_block_shared(&buf, &mut table)
                .map_err(|e| spill_codec(self.inner.op, &e))?;
            rows.extend(block);
        }
        Ok(rows)
    }
}

/// Incremental writer producing a [`SpilledBucket`]. Owns the file-scoped
/// string table; its memory footprint is bounded by the bucket's *unique*
/// string payload, which the dedup exists to keep small.
pub(crate) struct BucketWriter {
    writer: SpillWriter,
    path: PathBuf,
    metas: Vec<BlockMeta>,
    table: StringTable,
    rows: usize,
    op: OpId,
}

impl BucketWriter {
    pub(crate) fn create(op: OpId, path: PathBuf) -> Result<BucketWriter> {
        let writer = SpillWriter::create(op, &path)?;
        Ok(BucketWriter {
            writer,
            path,
            metas: Vec::new(),
            table: StringTable::new(),
            rows: 0,
            op,
        })
    }

    pub(crate) fn append(&mut self, rows: &[Row]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        self.metas
            .push(self.writer.write_rows_shared(rows, &mut self.table)?);
        self.rows += rows.len();
        Ok(())
    }

    pub(crate) fn finish(self) -> Result<Arc<SpilledBucket>> {
        let bytes = self.writer.finish()?;
        Ok(Arc::new(SpilledBucket {
            inner: SpilledRows {
                path: self.path,
                parts: vec![self.metas],
                part_rows: vec![self.rows],
                bytes,
                op: self.op,
            },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::{DataItem, Label, Value};

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let mut item = DataItem::new();
                item.push(Label::new("id"), Value::Int(i as i64));
                item.push(
                    Label::new("tags"),
                    Value::Bag(vec![Value::str("a"), Value::Int(i as i64 * 3)]),
                );
                Row {
                    id: (7u64 << 48) | i as u64,
                    item,
                }
            })
            .collect()
    }

    #[test]
    fn run_dir_pid_parses_only_well_formed_names() {
        assert_eq!(run_dir_pid("pebble-spill-123-0"), Some(123));
        assert_eq!(run_dir_pid("pebble-capture-9-41"), Some(9));
        assert_eq!(run_dir_pid("pebble-spill-123"), None); // no seq
        assert_eq!(run_dir_pid("pebble-spill-123-"), None); // empty seq
        assert_eq!(run_dir_pid("pebble-spill-abc-0"), None); // non-numeric pid
        assert_eq!(run_dir_pid("pebble-spill-123-0x"), None); // non-numeric seq
        assert_eq!(run_dir_pid("other-123-0"), None); // foreign prefix
    }

    #[test]
    fn sweep_removes_dead_pid_dirs_and_spares_live_ones() {
        if !cfg!(target_os = "linux") {
            return; // no /proc: the sweep is defined to be a no-op
        }
        let base = std::env::temp_dir().join(format!("pebble-sweep-test-{}", std::process::id()));
        fs::create_dir_all(&base).unwrap();
        // A provably dead pid: a short-lived child, reaped by wait().
        let mut child = std::process::Command::new("true").spawn().unwrap();
        let dead_pid = child.id();
        child.wait().unwrap();
        assert!(!pid_alive(dead_pid));

        let dir = |name: &str| {
            let p = base.join(name);
            fs::create_dir_all(&p).unwrap();
            fs::write(p.join("op0.spill"), b"x").unwrap();
            p
        };
        let dead_spill = dir(&format!("pebble-spill-{dead_pid}-0"));
        let dead_capture = dir(&format!("pebble-capture-{dead_pid}-3"));
        let own = dir(&format!("pebble-spill-{}-1", std::process::id()));
        // Pid-reuse collision: pid 1 is always alive, and even though this
        // orphan was never ours, an alive pid must never be swept.
        let reused = dir("pebble-spill-1-0");
        let foreign = dir("unrelated-dir");
        let malformed = dir("pebble-spill-notapid-0");
        // A *file* matching the stale pattern is left alone too.
        let stale_file = base.join(format!("pebble-spill-{dead_pid}-9"));
        fs::write(&stale_file, b"x").unwrap();

        assert_eq!(sweep_stale_run_dirs(&base), 2);
        assert!(!dead_spill.exists());
        assert!(!dead_capture.exists());
        assert!(own.exists());
        assert!(reused.exists());
        assert!(foreign.exists());
        assert!(malformed.exists());
        assert!(stale_file.exists());
        // Idempotent: nothing stale remains.
        assert_eq!(sweep_stale_run_dirs(&base), 0);
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn tracker_accounts_and_peaks() {
        let t = MemoryTracker::new(100);
        assert!(t.enabled());
        assert!(!t.would_exceed(100));
        t.add(80);
        assert!(t.would_exceed(30));
        t.add(40);
        t.sub(120);
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 120);
        let off = MemoryTracker::new(0);
        off.add(1 << 40);
        assert_eq!(off.current(), 0);
        assert!(!off.would_exceed(usize::MAX));
    }

    #[test]
    fn row_block_round_trip() {
        let rows = sample_rows(9);
        let block = encode_row_block(&rows);
        assert_eq!(decode_row_block(&block).unwrap(), rows);
        // Decoder is total on corruption.
        let mut corrupt = block.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(decode_row_block(&corrupt).is_err());
        for cut in 0..block.len() {
            assert!(decode_row_block(&block[..cut]).is_err());
        }
    }

    #[test]
    fn spilled_rows_round_trip_and_cleanup() {
        let dir = SpillDir::for_run();
        let path = dir.file("op3.rows").unwrap();
        let parts: Vec<Vec<Row>> = vec![sample_rows(10), Vec::new(), sample_rows(3)];
        let spilled = SpilledRows::write(3, path.clone(), &parts, 4).unwrap();
        assert_eq!(spilled.total_rows(), 13);
        assert_eq!(spilled.parts[0].len(), 3); // 10 rows in blocks of 4
        assert_eq!(spilled.load().unwrap(), parts);
        assert_eq!(
            spilled.read_block(spilled.parts[0][1]).unwrap(),
            parts[0][4..8].to_vec()
        );
        drop(spilled);
        assert!(!path.exists());
    }

    #[test]
    fn bucket_writer_round_trip() {
        let dir = SpillDir::for_run();
        let mut w = BucketWriter::create(5, dir.file("op5.bucket0").unwrap()).unwrap();
        let a = sample_rows(4);
        let b = sample_rows(2);
        w.append(&a).unwrap();
        w.append(&[]).unwrap();
        w.append(&b).unwrap();
        let bucket = w.finish().unwrap();
        assert_eq!(bucket.rows(), 6);
        let mut expect = a;
        expect.extend(b);
        assert_eq!(bucket.load().unwrap(), expect);
    }

    #[test]
    fn shared_table_dedups_strings_across_blocks() {
        // The same payload string in every block: the file-scoped table
        // writes it once, while self-contained blocks repeat it per block.
        let text: String = "x".repeat(200);
        let rows: Vec<Row> = (0..64)
            .map(|i| {
                let mut item = DataItem::new();
                item.push(Label::new("text"), Value::str(text.as_str()));
                item.push(Label::new("n"), Value::Int(i));
                Row { id: i as u64, item }
            })
            .collect();
        let dir = SpillDir::for_run();
        let mut w = BucketWriter::create(1, dir.file("op1.bucket0").unwrap()).unwrap();
        for chunk in rows.chunks(8) {
            w.append(chunk).unwrap();
        }
        let bucket = w.finish().unwrap();
        let self_contained: usize = rows
            .chunks(8)
            .map(|c| encode_row_block(c).len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert!(
            (bucket.bytes() as usize) < self_contained - 6 * 200,
            "shared {} vs self-contained {self_contained}",
            bucket.bytes()
        );
        assert_eq!(bucket.load().unwrap(), rows);
    }

    #[test]
    fn shared_block_decode_is_total_on_corruption() {
        let rows = sample_rows(9);
        let mut table = StringTable::new();
        let block = encode_row_block_shared(&rows, &mut table);
        let mut fresh = StringTable::new();
        assert_eq!(decode_row_block_shared(&block, &mut fresh).unwrap(), rows);
        // A shared block never decodes through the self-contained entry
        // point (and vice versa): the type byte differs.
        assert!(decode_row_block(&block).is_err());
        let mut corrupt = block.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(decode_row_block_shared(&corrupt, &mut StringTable::new()).is_err());
        for cut in 0..block.len() {
            assert!(decode_row_block_shared(&block[..cut], &mut StringTable::new()).is_err());
        }
    }

    #[test]
    fn spill_fault_fires_on_write() {
        crate::fault::arm_spill(11);
        let dir = SpillDir::for_run();
        let err = SpillWriter::create(11, &dir.file("op11.rows").unwrap())
            .err()
            .expect("armed spill fault must fire");
        assert_eq!(
            err.to_string(),
            "spill failed at operator #11: injected spill-write failure"
        );
        crate::fault::disarm();
        assert!(SpillWriter::create(11, &dir.file("op11.rows").unwrap()).is_ok());
    }
}

#[cfg(test)]
mod throughput_probe {
    use super::*;
    use pebble_nested::{DataItem, Label, Value};
    use std::time::Instant;

    fn tweetish_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let mut item = DataItem::new();
                item.push(Label::new("id_str"), Value::str(format!("tweet{i}")));
                item.push(
                    Label::new("text"),
                    Value::str(format!(
                        "some realistic tweet text number {i} with #tag{} and a mention of @user{} BTS",
                        i % 50, i % 97
                    )),
                );
                item.push(Label::new("retweet_count"), Value::Int((i % 11) as i64));
                item.push(Label::new("lang"), Value::str("en"));
                let mut user = DataItem::new();
                user.push(Label::new("id_str"), Value::str(format!("u{}", i % 997)));
                user.push(Label::new("name"), Value::str(format!("user name {}", i % 997)));
                item.push(Label::new("user"), Value::Item(user));
                let mut ent = DataItem::new();
                ent.push(
                    Label::new("hashtags"),
                    Value::Bag((0..(i % 4)).map(|t| {
                        let mut h = DataItem::new();
                        h.push(Label::new("text"), Value::str(format!("tag{t}")));
                        Value::Item(h)
                    }).collect()),
                );
                ent.push(
                    Label::new("user_mentions"),
                    Value::Bag((0..(i % 3)).map(|t| {
                        let mut m = DataItem::new();
                        m.push(Label::new("id_str"), Value::str(format!("u{}", (i + t) % 997)));
                        m.push(Label::new("name"), Value::str(format!("user name {}", (i + t) % 997)));
                        Value::Item(m)
                    }).collect()),
                );
                item.push(Label::new("entities"), Value::Item(ent));
                Row { id: i as u64, item }
            })
            .collect()
    }

    #[test]
    fn codec_throughput() {
        let rows = tweetish_rows(100_000);
        let t0 = Instant::now();
        let mut blocks = Vec::new();
        for chunk in rows.chunks(8192) {
            blocks.push(encode_row_block(chunk));
        }
        let enc = t0.elapsed();
        let bytes: usize = blocks.iter().map(|b| b.len()).sum();
        let t1 = Instant::now();
        let mut n = 0usize;
        for b in &blocks {
            n += decode_row_block(b).unwrap().len();
        }
        let dec = t1.elapsed();
        assert_eq!(n, rows.len());
        eprintln!(
            "codec_throughput: {} bytes, encode {:.0} ms ({:.1} MB/s), decode {:.0} ms ({:.1} MB/s)",
            bytes,
            enc.as_secs_f64() * 1e3,
            bytes as f64 / enc.as_secs_f64() / 1e6,
            dec.as_secs_f64() * 1e3,
            bytes as f64 / dec.as_secs_f64() / 1e6
        );
    }
}
