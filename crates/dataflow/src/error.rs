//! Engine error type.

use std::fmt;

use pebble_nested::{DataType, Path};

/// Errors raised while validating or executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A `read` referenced a source name not registered in the context.
    UnknownSource(String),
    /// An operator referenced a non-existent upstream operator id.
    UnknownOperator(u32),
    /// The program DAG is malformed (wrong arity, cycle, multiple sinks…).
    InvalidPlan(String),
    /// A path did not resolve in the operator's input schema.
    UnresolvedPath {
        /// Operator where resolution failed.
        op: u32,
        /// The offending path.
        path: Path,
        /// The schema it was resolved against.
        schema: DataType,
    },
    /// Operator preconditions on types failed (e.g. `union` arms differ,
    /// `flatten` target is not a collection, aggregation input not numeric).
    TypeError {
        /// Operator where the violation occurred.
        op: u32,
        /// Description of the violated precondition.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownSource(name) => write!(f, "unknown source `{name}`"),
            EngineError::UnknownOperator(id) => write!(f, "unknown operator #{id}"),
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::UnresolvedPath { op, path, schema } => {
                write!(
                    f,
                    "operator #{op}: path `{path}` not found in schema {schema}"
                )
            }
            EngineError::TypeError { op, message } => {
                write!(f, "operator #{op}: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias for engine operations.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;
