//! Engine error type.

use std::fmt;

use pebble_nested::{DataType, Path};

/// Errors raised while validating or executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A `read` referenced a source name not registered in the context.
    UnknownSource(String),
    /// An operator referenced a non-existent upstream operator id.
    UnknownOperator(u32),
    /// The program DAG is malformed (wrong arity, cycle, multiple sinks…).
    InvalidPlan(String),
    /// A path did not resolve in the operator's input schema.
    UnresolvedPath {
        /// Operator where resolution failed.
        op: u32,
        /// The offending path.
        path: Path,
        /// The schema it was resolved against.
        schema: DataType,
    },
    /// Operator preconditions on types failed (e.g. `union` arms differ,
    /// `flatten` target is not a collection, aggregation input not numeric).
    TypeError {
        /// Operator where the violation occurred.
        op: u32,
        /// Description of the violated precondition.
        message: String,
    },
    /// Evaluating one row failed (a UDF panicked or an injected fault
    /// fired). `item` is the identifier of the row the operator was
    /// consuming when the failure occurred.
    RowError {
        /// Operator that was evaluating the row.
        op: u32,
        /// Identifier of the input row being evaluated.
        item: u64,
        /// Description of the failure (panic message for UDF panics).
        message: String,
    },
    /// Building or merging provenance associations failed during capture.
    CaptureError {
        /// Operator whose associations could not be captured.
        op: u32,
        /// Description of the failure.
        message: String,
    },
    /// Writing or re-reading spilled operator state failed (disk full,
    /// corrupt spill block, injected spill fault). The message never
    /// contains filesystem paths: spill directories are per-run, and the
    /// oracle compares failing runs by their `Display` rendering.
    SpillError {
        /// Operator whose state was being spilled or reloaded.
        op: u32,
        /// Description of the failure.
        message: String,
    },
    /// Backtracing failed (capture tables inconsistent with the program,
    /// or an operator type the tracer does not know).
    BacktraceError(String),
    /// A pool/scoped worker panicked outside any row-level context; the
    /// payload is the stringified panic message.
    WorkerPanic {
        /// Panic payload, downcast to a string when possible.
        payload: String,
    },
    /// An internal engine invariant was violated. Reaching this is a bug
    /// in the engine, not in the user's program — it is surfaced as an
    /// error (rather than a panic) so a bad run cannot take the host down.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownSource(name) => write!(f, "unknown source `{name}`"),
            EngineError::UnknownOperator(id) => write!(f, "unknown operator #{id}"),
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::UnresolvedPath { op, path, schema } => {
                write!(
                    f,
                    "operator #{op}: path `{path}` not found in schema {schema}"
                )
            }
            EngineError::TypeError { op, message } => {
                write!(f, "operator #{op}: {message}")
            }
            EngineError::RowError { op, item, message } => {
                write!(f, "operator #{op}: row {item:#x}: {message}")
            }
            EngineError::CaptureError { op, message } => {
                write!(f, "capture failed at operator #{op}: {message}")
            }
            EngineError::SpillError { op, message } => {
                write!(f, "spill failed at operator #{op}: {message}")
            }
            EngineError::BacktraceError(msg) => write!(f, "backtrace failed: {msg}"),
            EngineError::WorkerPanic { payload } => write!(f, "worker panicked: {payload}"),
            EngineError::Internal(msg) => write!(f, "internal engine invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// The operator a runtime error is attributed to, when it has one.
    /// The executors use this to pick the deterministic winner when
    /// several partitions fail concurrently.
    pub fn op(&self) -> Option<u32> {
        match self {
            EngineError::UnknownOperator(op)
            | EngineError::UnresolvedPath { op, .. }
            | EngineError::TypeError { op, .. }
            | EngineError::RowError { op, .. }
            | EngineError::CaptureError { op, .. }
            | EngineError::SpillError { op, .. } => Some(*op),
            _ => None,
        }
    }
}

/// Renders a `catch_unwind` payload as a message: `&str` and `String`
/// payloads (what `panic!` produces) pass through, anything else gets a
/// placeholder. Used wherever a contained panic becomes a typed error.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Convenience result alias for engine operations.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::{DataType, Path};

    /// Table-driven check of every variant's `Display` rendering — the
    /// oracle compares failing runs by this string, so it is a contract.
    #[test]
    fn display_all_variants() {
        let cases: Vec<(EngineError, &str)> = vec![
            (
                EngineError::UnknownSource("tweets".into()),
                "unknown source `tweets`",
            ),
            (EngineError::UnknownOperator(7), "unknown operator #7"),
            (
                EngineError::InvalidPlan("two sinks".into()),
                "invalid plan: two sinks",
            ),
            (
                EngineError::UnresolvedPath {
                    op: 3,
                    path: Path::attr("user"),
                    schema: DataType::Null,
                },
                "operator #3: path `user` not found in schema Null",
            ),
            (
                EngineError::TypeError {
                    op: 2,
                    message: "flatten target is not a collection".into(),
                },
                "operator #2: flatten target is not a collection",
            ),
            (
                EngineError::RowError {
                    op: 4,
                    item: 0x0004_0001_0000_0002,
                    message: "udf `boom` panicked: division by zero".into(),
                },
                "operator #4: row 0x4000100000002: udf `boom` panicked: division by zero",
            ),
            (
                EngineError::CaptureError {
                    op: 5,
                    message: "association variant mismatch".into(),
                },
                "capture failed at operator #5: association variant mismatch",
            ),
            (
                EngineError::SpillError {
                    op: 6,
                    message: "injected spill-write failure".into(),
                },
                "spill failed at operator #6: injected spill-write failure",
            ),
            (
                EngineError::BacktraceError("operator #9 not captured".into()),
                "backtrace failed: operator #9 not captured",
            ),
            (
                EngineError::WorkerPanic {
                    payload: "index out of bounds".into(),
                },
                "worker panicked: index out of bounds",
            ),
            (
                EngineError::Internal("sink unit produced no output".into()),
                "internal engine invariant violated: sink unit produced no output",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected, "variant {err:?}");
        }
    }

    #[test]
    fn panic_message_downcasts() {
        let p = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(&*p), "plain str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(&*p), "formatted 42");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(17u8)).unwrap_err();
        assert_eq!(panic_message(&*p), "<non-string panic payload>");
    }

    #[test]
    fn error_op_attribution() {
        assert_eq!(
            EngineError::RowError {
                op: 9,
                item: 1,
                message: String::new()
            }
            .op(),
            Some(9)
        );
        assert_eq!(
            EngineError::WorkerPanic {
                payload: String::new()
            }
            .op(),
            None
        );
        assert_eq!(EngineError::UnknownSource(String::new()).op(), None);
    }
}
