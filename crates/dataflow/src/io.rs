//! Disk I/O: newline-delimited JSON sources and result writing.
//!
//! The paper's pipelines read `tweets.json` from distributed storage and
//! "write the result to disk to ensure that Spark computes the full
//! result" (Sec. 7.2). This module provides the same boundary for the
//! substrate: NDJSON loading into a [`Context`] and buffered result
//! writing, so benchmarks can include the I/O cost when desired.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path as FsPath;

use pebble_nested::{json, DataItem};

use crate::context::Context;
use crate::exec::RunOutput;

/// I/O errors: filesystem or JSON decoding.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Malformed JSON on a specific line (1-based).
    Json {
        /// Line number (1-based).
        line: usize,
        /// Parse error.
        error: json::JsonError,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "I/O error: {e}"),
            IoError::Json { line, error } => write!(f, "line {line}: {error}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// Reads an NDJSON file (one top-level object per line) into data items.
/// Uses a reusable line buffer, so allocation stays proportional to the
/// longest line rather than the file.
pub fn read_ndjson(path: impl AsRef<FsPath>) -> Result<Vec<DataItem>, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut items = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(items);
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match json::parse(trimmed) {
            Ok(pebble_nested::Value::Item(d)) => items.push(d),
            Ok(_) => {
                return Err(IoError::Json {
                    line: line_no,
                    error: json::JsonError {
                        offset: 0,
                        message: "expected a JSON object".into(),
                    },
                })
            }
            Err(error) => {
                return Err(IoError::Json {
                    line: line_no,
                    error,
                })
            }
        }
    }
}

/// Writes data items as NDJSON with a buffered writer.
pub fn write_ndjson(
    path: impl AsRef<FsPath>,
    items: impl IntoIterator<Item = impl std::borrow::Borrow<DataItem>>,
) -> Result<usize, IoError> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut n = 0usize;
    for item in items {
        out.write_all(json::item_to_string(item.borrow()).as_bytes())?;
        out.write_all(b"\n")?;
        n += 1;
    }
    out.flush()?;
    Ok(n)
}

impl Context {
    /// Registers an NDJSON file as a named source.
    pub fn register_file(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<FsPath>,
    ) -> Result<usize, IoError> {
        let items = read_ndjson(path)?;
        let n = items.len();
        self.register(name, items);
        Ok(n)
    }
}

impl RunOutput {
    /// Writes the result items to disk as NDJSON ("to ensure the full
    /// result is computed", as the paper's experiments do).
    pub fn write_ndjson(&self, path: impl AsRef<FsPath>) -> Result<usize, IoError> {
        write_ndjson(path, self.rows.iter().map(|r| &r.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, ExecConfig};
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::sink::NoSink;
    use pebble_nested::{DataItem, Value};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pebble-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn ndjson_roundtrip_through_pipeline() {
        let items = vec![
            DataItem::from_fields([("k", Value::Int(1)), ("s", Value::str("a\nb"))]),
            DataItem::from_fields([("k", Value::Int(2)), ("s", Value::str("c"))]),
        ];
        let src = tmp("src.ndjson");
        let dst = tmp("dst.ndjson");
        write_ndjson(&src, &items).unwrap();

        let mut ctx = Context::new();
        assert_eq!(ctx.register_file("t", &src).unwrap(), 2);
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("k").ge(Expr::lit(2i64)));
        let out = run(&b.build(f), &ctx, ExecConfig::with_partitions(2), &NoSink).unwrap();
        assert_eq!(out.write_ndjson(&dst).unwrap(), 1);

        let back = read_ndjson(&dst).unwrap();
        assert_eq!(back, vec![items[1].clone()]);
        let _ = std::fs::remove_file(src);
        let _ = std::fs::remove_file(dst);
    }

    #[test]
    fn blank_lines_skipped_and_errors_located() {
        let p = tmp("bad.ndjson");
        std::fs::write(&p, "{\"a\":1}\n\n{\"a\":2}\nnot json\n").unwrap();
        let err = read_ndjson(&p).unwrap_err();
        match err {
            IoError::Json { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected {other}"),
        }
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn non_object_line_rejected() {
        let p = tmp("arr.ndjson");
        std::fs::write(&p, "[1,2]\n").unwrap();
        assert!(read_ndjson(&p).is_err());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn missing_file_is_fs_error() {
        match read_ndjson("/nonexistent/pebble.ndjson").unwrap_err() {
            IoError::Fs(_) => {}
            other => panic!("unexpected {other}"),
        }
    }
}
