//! Persistent worker pool.
//!
//! The executor used to spawn (and join) a fresh set of scoped threads for
//! *every operator*, paying thread start-up and a full teardown barrier per
//! stage. This module replaces that with long-lived workers fed by a
//! channel-based task queue: a [`WorkerPool`] is created once per worker
//! count and reused by every subsequent run (see [`WorkerPool::with_workers`]),
//! so steady-state execution never creates threads at all.
//!
//! Workers are deliberately dumb: they pop type-erased jobs from a shared
//! queue and run them. All sequencing, identifier stitching, and provenance
//! emission stay on the scheduler thread in `exec.rs`, which is what keeps
//! program output byte-identical at any worker count.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// A fixed-size pool of long-lived worker threads.
///
/// Jobs are executed in FIFO submission order (per worker pull); a panicking
/// job is contained by the worker and never takes the pool down — result
/// reporting and panic propagation are the submitter's responsibility
/// (the executor wraps every job in `catch_unwind` and re-raises on the
/// scheduler thread).
pub struct WorkerPool {
    queue: Arc<Queue>,
    size: usize,
}

/// Global registry: one shared pool per worker count, created lazily and
/// kept for the process lifetime. Re-running with the same configuration
/// therefore reuses warm threads.
static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();

impl WorkerPool {
    /// Creates a new pool with `workers` threads (at least one).
    ///
    /// Prefer [`WorkerPool::with_workers`], which shares pools across runs.
    pub fn new(workers: usize) -> Self {
        let size = workers.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for i in 0..size {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("pebble-worker-{i}"))
                .spawn(move || worker_loop(&queue))
                .expect("failed to spawn pool worker");
        }
        WorkerPool { queue, size }
    }

    /// The process-wide shared pool with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        Arc::clone(
            pools
                .lock()
                .unwrap()
                .entry(workers)
                .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
        )
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueues a job; some worker will eventually run it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut jobs = self.queue.jobs.lock().unwrap();
        jobs.push_back(Box::new(job));
        drop(jobs);
        self.queue.available.notify_one();
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().unwrap();
            loop {
                match jobs.pop_front() {
                    Some(job) => break job,
                    None => jobs = queue.available.wait(jobs).unwrap(),
                }
            }
        };
        // Contain panics: the submitter observes them through its own
        // result channel; the worker must survive to serve the next job.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::with_workers(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = WorkerPool::with_workers(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(|| panic!("job panic"));
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }

    #[test]
    fn registry_shares_pools_by_size() {
        let a = WorkerPool::with_workers(2);
        let b = WorkerPool::with_workers(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.size(), 2);
        let c = WorkerPool::with_workers(5);
        assert_eq!(c.size(), 5);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
