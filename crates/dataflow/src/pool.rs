//! Persistent worker pool.
//!
//! The executor used to spawn (and join) a fresh set of scoped threads for
//! *every operator*, paying thread start-up and a full teardown barrier per
//! stage. This module replaces that with long-lived workers fed by a
//! channel-based task queue: a [`WorkerPool`] is created once per worker
//! count and reused by every subsequent run (see [`WorkerPool::with_workers`]),
//! so steady-state execution never creates threads at all.
//!
//! Workers are deliberately dumb: they pop type-erased jobs from a shared
//! queue and run them. All sequencing, identifier stitching, and provenance
//! emission stay on the scheduler thread in `exec.rs`, which is what keeps
//! program output byte-identical at any worker count.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// A unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks the mutex, recovering from poisoning. The queue only holds
/// type-erased closures; a panic while one was popped leaves the deque
/// itself consistent, so continuing with the inner value is sound — and
/// required, or a single panicking job would wedge every later submit.
fn lock_jobs(queue: &Queue) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
    queue.jobs.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// A fixed-size pool of long-lived worker threads.
///
/// Jobs are executed in FIFO submission order (per worker pull); a panicking
/// job is contained by the worker and never takes the pool down — result
/// reporting and panic propagation are the submitter's responsibility
/// (the executor wraps every job in `catch_unwind` and re-raises on the
/// scheduler thread).
pub struct WorkerPool {
    queue: Arc<Queue>,
    size: usize,
    /// Worker threads actually running. Thread spawning can fail under
    /// resource exhaustion; when none spawned, `submit` degrades to
    /// running jobs inline on the caller so work still completes.
    live: usize,
}

/// Global registry: one shared pool per worker count, created lazily and
/// kept for the process lifetime. Re-running with the same configuration
/// therefore reuses warm threads.
static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();

impl WorkerPool {
    /// Creates a new pool with `workers` threads (at least one).
    ///
    /// Prefer [`WorkerPool::with_workers`], which shares pools across runs.
    pub fn new(workers: usize) -> Self {
        let size = workers.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let mut live = 0;
        for i in 0..size {
            let queue = Arc::clone(&queue);
            let spawned = std::thread::Builder::new()
                .name(format!("pebble-worker-{i}"))
                .spawn(move || worker_loop(&queue));
            match spawned {
                Ok(_) => live += 1,
                Err(e) => eprintln!("pebble: failed to spawn pool worker {i}: {e}"),
            }
        }
        WorkerPool { queue, size, live }
    }

    /// The process-wide shared pool with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        Arc::clone(
            pools
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(workers)
                .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
        )
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueues a job; some worker will eventually run it. When no worker
    /// thread could be spawned, runs the job inline (contained) instead of
    /// queueing it forever.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if self.live == 0 {
            let _ = catch_unwind(AssertUnwindSafe(job));
            return;
        }
        let mut jobs = lock_jobs(&self.queue);
        jobs.push_back(Box::new(job));
        drop(jobs);
        self.queue.available.notify_one();
    }

    /// Runs `job` on the pool with *guaranteed result delivery*: `deliver`
    /// is invoked exactly once with the job's output, or with the panic
    /// payload if the job panicked. This closes the classic hang where a
    /// panicking task drops its result sender mid-flight and the submitter
    /// blocks forever on a completion count that can no longer be reached:
    /// the catch_unwind happens *inside* the pool, before delivery, so the
    /// submitter always observes either a value or a typed failure.
    pub fn submit_job<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
        deliver: impl FnOnce(std::thread::Result<T>) + Send + 'static,
    ) {
        self.submit(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            deliver(result);
        });
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut jobs = lock_jobs(queue);
            loop {
                match jobs.pop_front() {
                    Some(job) => break job,
                    None => {
                        jobs = queue
                            .available
                            .wait(jobs)
                            .unwrap_or_else(PoisonError::into_inner)
                    }
                }
            }
        };
        // Contain panics: the submitter observes them through its own
        // result channel; the worker must survive to serve the next job.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::with_workers(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = WorkerPool::with_workers(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(|| panic!("job panic"));
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }

    /// Regression: a panicking task used to drop its result sender, so
    /// the submitter's completion count was never reached and the run hung
    /// forever — and the next run on the same pool inherited the wedge.
    /// With guaranteed delivery the panic surfaces as an `Err`, and the
    /// same pool instance then executes a full back-to-back batch.
    #[test]
    fn delivers_panic_and_runs_next_batch_on_same_pool() {
        let pool = WorkerPool::with_workers(2);

        // Batch 1: a panicking job plus a normal one; both must deliver.
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        pool.submit_job(
            || -> usize { panic!("injected morsel panic") },
            move |r| {
                tx.send(r.map_err(|p| crate::error::panic_message(&*p)))
                    .unwrap()
            },
        );
        pool.submit_job(
            || 7usize,
            move |r| {
                tx2.send(r.map_err(|p| crate::error::panic_message(&*p)))
                    .unwrap()
            },
        );
        let mut results = Vec::new();
        for _ in 0..2 {
            results.push(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
        }
        assert!(results.contains(&Err("injected morsel panic".to_string())));
        assert!(results.contains(&Ok(7)));

        // Batch 2: the same pool still has both workers alive.
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.submit_job(
                move || i * 2,
                move |r| {
                    let _ = tx.send(r.unwrap_or(usize::MAX));
                },
            );
        }
        let mut sum = 0;
        for _ in 0..16 {
            sum += rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(sum, (0..16).map(|i| i * 2).sum());
    }

    #[test]
    fn registry_shares_pools_by_size() {
        let a = WorkerPool::with_workers(2);
        let b = WorkerPool::with_workers(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.size(), 2);
        let c = WorkerPool::with_workers(5);
        assert_eq!(c.size(), 5);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
