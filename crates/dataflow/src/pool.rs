//! Persistent worker pool.
//!
//! The executor used to spawn (and join) a fresh set of scoped threads for
//! *every operator*, paying thread start-up and a full teardown barrier per
//! stage. This module replaces that with long-lived workers fed by a
//! channel-based task queue: a [`WorkerPool`] is created once per worker
//! count and reused by every subsequent run (see [`WorkerPool::with_workers`]),
//! so steady-state execution never creates threads at all.
//!
//! Workers are deliberately dumb: they pop type-erased jobs from a shared
//! queue and run them. All sequencing, identifier stitching, and provenance
//! emission stay on the scheduler thread in `exec.rs`, which is what keeps
//! program output byte-identical at any worker count.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

use pebble_obs::diag;

/// A unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks the mutex, recovering from poisoning. The queue only holds
/// type-erased closures; a panic while one was popped leaves the deque
/// itself consistent, so continuing with the inner value is sound — and
/// required, or a single panicking job would wedge every later submit.
fn lock_jobs(queue: &Queue) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
    queue.jobs.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Gauges updated with relaxed atomics on the job path and read by
    /// [`WorkerPool::queue_depth`] & friends *without* touching `jobs`'
    /// mutex — samplers never contend with workers.
    queued: AtomicU64,
    active: AtomicU64,
    executed: AtomicU64,
    panics: AtomicU64,
}

/// A fixed-size pool of long-lived worker threads.
///
/// Jobs are executed in FIFO submission order (per worker pull); a panicking
/// job is contained by the worker and never takes the pool down — result
/// reporting and panic propagation are the submitter's responsibility
/// (the executor wraps every job in `catch_unwind` and re-raises on the
/// scheduler thread).
pub struct WorkerPool {
    queue: Arc<Queue>,
    size: usize,
    /// Worker threads actually running. Thread spawning can fail under
    /// resource exhaustion; when none spawned, `submit` degrades to
    /// running jobs inline on the caller so work still completes.
    live: usize,
}

/// Global registry: one shared pool per worker count, created lazily and
/// kept for the process lifetime. Re-running with the same configuration
/// therefore reuses warm threads.
static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();

impl WorkerPool {
    /// Creates a new pool with `workers` threads (at least one).
    ///
    /// Prefer [`WorkerPool::with_workers`], which shares pools across runs.
    pub fn new(workers: usize) -> Self {
        let size = workers.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queued: AtomicU64::new(0),
            active: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let mut live = 0;
        for i in 0..size {
            let queue = Arc::clone(&queue);
            let spawned = std::thread::Builder::new()
                .name(format!("pebble-worker-{i}"))
                .spawn(move || worker_loop(&queue));
            match spawned {
                Ok(_) => live += 1,
                Err(e) => diag::warn(&format!("failed to spawn pool worker {i}: {e}")),
            }
        }
        WorkerPool { queue, size, live }
    }

    /// The process-wide shared pool with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        Arc::clone(
            pools
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(workers)
                .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
        )
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueues a job; some worker will eventually run it. When no worker
    /// thread could be spawned, runs the job inline (contained) instead of
    /// queueing it forever.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if self.live == 0 {
            // Degraded inline execution still maintains the gauges (the
            // caller thread briefly *is* the worker).
            self.queue.active.fetch_add(1, Relaxed);
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                self.queue.panics.fetch_add(1, Relaxed);
            }
            self.queue.active.fetch_sub(1, Relaxed);
            self.queue.executed.fetch_add(1, Relaxed);
            return;
        }
        let mut jobs = lock_jobs(&self.queue);
        jobs.push_back(Box::new(job));
        self.queue.queued.fetch_add(1, Relaxed);
        drop(jobs);
        self.queue.available.notify_one();
    }

    /// Jobs currently waiting in the queue. Sampled from an atomic — never
    /// takes the job lock, so it is safe to call from hot loops.
    pub fn queue_depth(&self) -> u64 {
        self.queue.queued.load(Relaxed)
    }

    /// Workers currently executing a job (lock-free sample).
    pub fn active_workers(&self) -> u64 {
        self.queue.active.load(Relaxed)
    }

    /// Total jobs fully executed since the pool was created. Monotone
    /// non-decreasing; a job counts only after its delivery closure ran.
    pub fn jobs_executed(&self) -> u64 {
        self.queue.executed.load(Relaxed)
    }

    /// Panics contained by the pool (both job panics caught by
    /// [`WorkerPool::submit_job`] and panics escaping raw `submit` jobs).
    pub fn panics_contained(&self) -> u64 {
        self.queue.panics.load(Relaxed)
    }

    /// Runs `job` on the pool with *guaranteed result delivery*: `deliver`
    /// is invoked exactly once with the job's output, or with the panic
    /// payload if the job panicked. This closes the classic hang where a
    /// panicking task drops its result sender mid-flight and the submitter
    /// blocks forever on a completion count that can no longer be reached:
    /// the catch_unwind happens *inside* the pool, before delivery, so the
    /// submitter always observes either a value or a typed failure.
    pub fn submit_job<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
        deliver: impl FnOnce(std::thread::Result<T>) + Send + 'static,
    ) {
        let queue = Arc::clone(&self.queue);
        self.submit(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            if result.is_err() {
                queue.panics.fetch_add(1, Relaxed);
            }
            deliver(result);
        });
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut jobs = lock_jobs(queue);
            loop {
                match jobs.pop_front() {
                    Some(job) => break job,
                    None => {
                        jobs = queue
                            .available
                            .wait(jobs)
                            .unwrap_or_else(PoisonError::into_inner)
                    }
                }
            }
        };
        queue.queued.fetch_sub(1, Relaxed);
        queue.active.fetch_add(1, Relaxed);
        // Contain panics: the submitter observes them through its own
        // result channel; the worker must survive to serve the next job.
        // (`submit_job` wrappers catch inside and count there; this counter
        // only sees panics escaping raw `submit` closures.)
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            queue.panics.fetch_add(1, Relaxed);
        }
        queue.active.fetch_sub(1, Relaxed);
        queue.executed.fetch_add(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::with_workers(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = WorkerPool::with_workers(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(|| panic!("job panic"));
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }

    /// Regression: a panicking task used to drop its result sender, so
    /// the submitter's completion count was never reached and the run hung
    /// forever — and the next run on the same pool inherited the wedge.
    /// With guaranteed delivery the panic surfaces as an `Err`, and the
    /// same pool instance then executes a full back-to-back batch.
    #[test]
    fn delivers_panic_and_runs_next_batch_on_same_pool() {
        let pool = WorkerPool::with_workers(2);

        // Batch 1: a panicking job plus a normal one; both must deliver.
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        pool.submit_job(
            || -> usize { panic!("injected morsel panic") },
            move |r| {
                tx.send(r.map_err(|p| crate::error::panic_message(&*p)))
                    .unwrap()
            },
        );
        pool.submit_job(
            || 7usize,
            move |r| {
                tx2.send(r.map_err(|p| crate::error::panic_message(&*p)))
                    .unwrap()
            },
        );
        let mut results = Vec::new();
        for _ in 0..2 {
            results.push(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
        }
        assert!(results.contains(&Err("injected morsel panic".to_string())));
        assert!(results.contains(&Ok(7)));

        // Batch 2: the same pool still has both workers alive.
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.submit_job(
                move || i * 2,
                move |r| {
                    let _ = tx.send(r.unwrap_or(usize::MAX));
                },
            );
        }
        let mut sum = 0;
        for _ in 0..16 {
            sum += rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(sum, (0..16).map(|i| i * 2).sum());
    }

    /// Regression for the lock-free gauges: across a run that mixes
    /// panicking and normal tasks, a concurrent sampler (which never takes
    /// the job lock) must observe a monotone `jobs_executed` counter and
    /// bounded `active_workers`, and the gauges must settle to a consistent
    /// final state (`queue empty`, `no active workers`, every job counted).
    #[test]
    fn gauges_monotone_consistent_across_panicking_run() {
        // A worker count no other test uses, so the shared registry pool's
        // gauges are not perturbed by concurrently-running tests.
        let pool = WorkerPool::with_workers(6);
        let base_executed = pool.jobs_executed();
        let base_panics = pool.panics_contained();

        let stop = Arc::new(AtomicUsize::new(0));
        let sampler = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = pool.jobs_executed();
                let mut monotone = true;
                let mut bounded = true;
                while stop.load(Ordering::SeqCst) == 0 {
                    let executed = pool.jobs_executed();
                    if executed < last {
                        monotone = false;
                    }
                    last = executed;
                    if pool.active_workers() > pool.size() as u64 {
                        bounded = false;
                    }
                    std::thread::yield_now();
                }
                (monotone, bounded)
            })
        };

        const N: usize = 300;
        let (tx, rx) = mpsc::channel();
        for i in 0..N {
            let tx = tx.clone();
            pool.submit_job(
                move || {
                    if i % 3 == 0 {
                        panic!("injected gauge-test panic");
                    }
                    i
                },
                move |r| {
                    let _ = tx.send(r.is_ok());
                },
            );
        }
        let mut oks = 0;
        for _ in 0..N {
            if rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap() {
                oks += 1;
            }
        }
        assert_eq!(oks, N - N.div_ceil(3));

        // `executed` increments after delivery, so briefly lags the last
        // recv; spin (bounded) until the counters settle.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.jobs_executed() < base_executed + N as u64 {
            assert!(std::time::Instant::now() < deadline, "gauges never settled");
            std::thread::yield_now();
        }
        stop.store(1, Ordering::SeqCst);
        let (monotone, bounded) = sampler.join().unwrap();
        assert!(monotone, "jobs_executed went backwards");
        assert!(bounded, "active_workers exceeded pool size");
        assert_eq!(pool.jobs_executed(), base_executed + N as u64);
        assert_eq!(pool.panics_contained(), base_panics + N.div_ceil(3) as u64);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.active_workers(), 0);
    }

    #[test]
    fn registry_shares_pools_by_size() {
        let a = WorkerPool::with_workers(2);
        let b = WorkerPool::with_workers(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.size(), 2);
        let c = WorkerPool::with_workers(5);
        assert_eq!(c.size(), 5);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
