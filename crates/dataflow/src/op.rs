//! Logical operators (Def. 4.5) with the semantics of Tab. 5 and static
//! output-schema inference.
//!
//! The supported algebra matches the paper: `read`, `filter`, `select`,
//! `map`, `join`, `union`, `flatten`, and `group-aggregate` (the paper's
//! `grouping` immediately followed by `aggregation`/nesting, fused as in
//! Spark's `groupBy(...).agg(...)`; the backtracing of Alg. 4 also treats
//! the pair as one step back to the grouping's input).

use std::fmt;
use std::sync::Arc;

use pebble_nested::{DataItem, DataType, Field, Path, Step, Value};

use crate::error::{EngineError, Result};
use crate::expr::{Expr, SelectExpr};

/// Operator identifier, unique within a [`crate::program::Program`].
pub type OpId = u32;

/// A named projection in a `select`.
#[derive(Clone, Debug)]
pub struct NamedExpr {
    /// Output attribute name.
    pub name: String,
    /// Projection expression.
    pub expr: SelectExpr,
}

impl NamedExpr {
    /// Creates a named projection.
    pub fn new(name: impl Into<String>, expr: SelectExpr) -> Self {
        NamedExpr {
            name: name.into(),
            expr,
        }
    }

    /// Shorthand: copy `path` under its last attribute name. A path with
    /// no attribute step (e.g. a bare index) falls back to the full path
    /// string as the output name rather than failing.
    pub fn path(path: &str) -> Self {
        let p = Path::parse(path);
        let name = last_attr_name(&p).unwrap_or_else(|| p.to_string());
        NamedExpr::new(name, SelectExpr::Path(p))
    }

    /// Shorthand: copy `path` under an explicit alias.
    pub fn aliased(name: impl Into<String>, path: &str) -> Self {
        NamedExpr::new(name, SelectExpr::path(path))
    }
}

/// Returns the name of the last attribute step of a path.
pub fn last_attr_name(p: &Path) -> Option<String> {
    p.steps().iter().rev().find_map(|s| match s {
        Step::Attr(n) => Some(n.clone()),
        _ => None,
    })
}

/// Grouping key: a path into the input and the output attribute name.
#[derive(Clone, Debug)]
pub struct GroupKey {
    /// Key path in the input schema.
    pub path: Path,
    /// Output attribute name.
    pub name: String,
}

impl GroupKey {
    /// Key named after the path's last attribute; a path with no attribute
    /// step falls back to the full path string as the output name.
    pub fn new(path: &str) -> Self {
        let p = Path::parse(path);
        GroupKey {
            name: last_attr_name(&p).unwrap_or_else(|| p.to_string()),
            path: p,
        }
    }

    /// Key with an explicit output name.
    pub fn aliased(name: impl Into<String>, path: &str) -> Self {
        GroupKey {
            path: Path::parse(path),
            name: name.into(),
        }
    }
}

/// Aggregation functions (Sec. 5.0.3): scalar-producing `A_c` and
/// collection-producing `A_B`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count of the group (scalar).
    Count,
    /// Numeric sum (scalar).
    Sum,
    /// Minimum by value order (scalar).
    Min,
    /// Maximum by value order (scalar).
    Max,
    /// Numeric average (scalar, `Double`).
    Avg,
    /// Nest the group's values into a bag (`collect_list`).
    CollectList,
    /// Nest the group's distinct values into a set (`collect_set`).
    CollectSet,
}

impl AggFunc {
    /// True for the collection-producing functions `A_B`.
    pub fn is_nesting(self) -> bool {
        matches!(self, AggFunc::CollectList | AggFunc::CollectSet)
    }
}

/// One aggregation `α(a) → name`.
#[derive(Clone, Debug)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input path (ignored by `Count`, which counts group rows; use
    /// `Path::root()` there).
    pub input: Path,
    /// Output attribute name.
    pub output: String,
}

impl AggSpec {
    /// Creates an aggregation spec.
    pub fn new(func: AggFunc, input: &str, output: impl Into<String>) -> Self {
        AggSpec {
            func,
            input: if input.is_empty() {
                Path::root()
            } else {
                Path::parse(input)
            },
            output: output.into(),
        }
    }
}

/// Opaque item-level user-defined function for `map`.
#[derive(Clone)]
pub struct MapUdf {
    /// Display name.
    pub name: String,
    /// Implementation: full item in, full item out.
    pub f: Arc<dyn Fn(&DataItem) -> DataItem + Send + Sync>,
    /// Optional declared output type; `None` leaves the schema unknown
    /// (`DataType::Null`), which downstream operators treat as wildcard.
    pub output_schema: Option<DataType>,
}

impl fmt::Debug for MapUdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MapUdf({})", self.name)
    }
}

/// The operator kinds.
#[derive(Clone, Debug)]
pub enum OpKind {
    /// Scan a named source registered in the context.
    Read {
        /// Source name.
        source: String,
    },
    /// Keep items satisfying the predicate (Tab. 5 `Filter*`).
    Filter {
        /// Boolean predicate `φ(i)`.
        predicate: Expr,
    },
    /// Project/restructure each item (Tab. 5 `Select*`).
    Select {
        /// Output attributes in order.
        exprs: Vec<NamedExpr>,
    },
    /// Apply an opaque UDF per item (Tab. 5 `Map*`; provenance `A = M = ⊥`).
    Map {
        /// The function.
        udf: MapUdf,
    },
    /// Equi-join two inputs (Tab. 5 `Join`); result is `⟨i, j⟩` with right
    /// attribute names disambiguated on clash.
    Join {
        /// Pairs of (left path, right path) compared for equality.
        keys: Vec<(Path, Path)>,
    },
    /// Bag union of two type-compatible inputs (Tab. 5 `Union*`).
    Union,
    /// Unnest one element of the collection at `col` per output item
    /// (Tab. 5 `Flatten`): `r = ⟨i, new_attr: j⟩`, keeping all original
    /// attributes.
    Flatten {
        /// Collection attribute `a_col` to explode.
        col: Path,
        /// Name of the new attribute `a_new` holding one element.
        new_attr: String,
    },
    /// Grouping followed by aggregation/nesting (Tab. 5 `Grouping*` +
    /// `Aggregation`).
    GroupAggregate {
        /// Grouping keys `G`.
        keys: Vec<GroupKey>,
        /// Aggregations `A_c ∪ A_B`.
        aggs: Vec<AggSpec>,
    },
}

impl OpKind {
    /// The paper's operator type name (used in provenance structures and
    /// the backtracing dispatch of Alg. 1).
    pub fn type_name(&self) -> &'static str {
        match self {
            OpKind::Read { .. } => "read",
            OpKind::Filter { .. } => "filter",
            OpKind::Select { .. } => "select",
            OpKind::Map { .. } => "map",
            OpKind::Join { .. } => "join",
            OpKind::Union => "union",
            OpKind::Flatten { .. } => "flatten",
            OpKind::GroupAggregate { .. } => "aggregation",
        }
    }

    /// Whether the operator can invoke user code (a UDF) and therefore
    /// panic at row level. Drives both the per-row `catch_unwind` guards in
    /// the executor and the `udf` flag of the run report's operator table.
    pub fn can_panic(&self) -> bool {
        match self {
            OpKind::Filter { predicate } => predicate.contains_udf(),
            OpKind::Select { exprs } => exprs.iter().any(|ne| ne.expr.contains_udf()),
            OpKind::Map { .. } => true,
            _ => false,
        }
    }

    /// Number of inputs this operator requires.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Read { .. } => 0,
            OpKind::Join { .. } | OpKind::Union => 2,
            _ => 1,
        }
    }

    /// Infers the output schema given input schemas (in input order) and
    /// checks the operator's type preconditions.
    pub fn output_schema(&self, op: OpId, inputs: &[DataType]) -> Result<DataType> {
        match self {
            OpKind::Read { .. } => Err(EngineError::Internal(
                "read schema comes from the context, not from inference".into(),
            )),
            OpKind::Filter { predicate } => {
                let schema = &inputs[0];
                let t = predicate.infer_type(op, schema)?;
                if !matches!(t, DataType::Bool | DataType::Null) {
                    return Err(EngineError::TypeError {
                        op,
                        message: format!("filter predicate has type {t}, expected Bool"),
                    });
                }
                Ok(schema.clone())
            }
            OpKind::Select { exprs } => {
                let schema = &inputs[0];
                let mut fields = Vec::with_capacity(exprs.len());
                for ne in exprs {
                    if fields.iter().any(|f: &Field| f.name == ne.name) {
                        return Err(EngineError::TypeError {
                            op,
                            message: format!("duplicate output attribute `{}`", ne.name),
                        });
                    }
                    fields.push(Field::new(&ne.name, ne.expr.infer_type(op, schema)?));
                }
                Ok(DataType::Item(fields))
            }
            OpKind::Map { udf } => Ok(udf.output_schema.clone().unwrap_or(DataType::Null)),
            OpKind::Join { keys } => {
                let (left, right) = (&inputs[0], &inputs[1]);
                for (lp, rp) in keys {
                    resolve_or_err(op, left, lp)?;
                    resolve_or_err(op, right, rp)?;
                }
                Ok(merge_item_schemas(op, left, right)?.0)
            }
            OpKind::Union => inputs[0]
                .unify(&inputs[1])
                .ok_or_else(|| EngineError::TypeError {
                    op,
                    message: format!(
                        "union arms have incompatible types {} vs {}",
                        inputs[0], inputs[1]
                    ),
                }),
            OpKind::Flatten { col, new_attr } => {
                let schema = &inputs[0];
                if matches!(schema, DataType::Null) {
                    // Unknown input (empty source or opaque map upstream):
                    // the output stays unknown rather than partially known.
                    return Ok(DataType::Null);
                }
                let col_ty = resolve_or_err(op, schema, col)?;
                let elem = match &col_ty {
                    DataType::Bag(t) | DataType::Set(t) => (**t).clone(),
                    DataType::Null => DataType::Null,
                    other => {
                        return Err(EngineError::TypeError {
                            op,
                            message: format!(
                                "flatten target `{col}` has type {other}, expected a collection"
                            ),
                        })
                    }
                };
                let mut fields = match schema {
                    DataType::Item(fs) => fs.clone(),
                    DataType::Null => Vec::new(),
                    other => {
                        return Err(EngineError::TypeError {
                            op,
                            message: format!("flatten input is {other}, expected an item type"),
                        })
                    }
                };
                if fields.iter().any(|f| &f.name == new_attr) {
                    return Err(EngineError::TypeError {
                        op,
                        message: format!("flatten output attribute `{new_attr}` already exists"),
                    });
                }
                fields.push(Field::new(new_attr, elem));
                Ok(DataType::Item(fields))
            }
            OpKind::GroupAggregate { keys, aggs } => {
                let schema = &inputs[0];
                let mut fields = Vec::new();
                for k in keys {
                    let t = resolve_or_err(op, schema, &k.path)?;
                    if fields.iter().any(|f: &Field| f.name == k.name) {
                        return Err(EngineError::TypeError {
                            op,
                            message: format!("duplicate group key name `{}`", k.name),
                        });
                    }
                    fields.push(Field::new(&k.name, t));
                }
                for a in aggs {
                    let in_ty = if a.input.is_empty() {
                        if a.func.is_nesting() {
                            // Whole-item nesting: elements have the input
                            // item type (the paper's grouping operator).
                            schema.clone()
                        } else {
                            DataType::Null
                        }
                    } else {
                        resolve_or_err(op, schema, &a.input)?
                    };
                    let out_ty = agg_output_type(op, a.func, &in_ty)?;
                    if fields.iter().any(|f: &Field| f.name == a.output) {
                        return Err(EngineError::TypeError {
                            op,
                            message: format!("duplicate aggregate output `{}`", a.output),
                        });
                    }
                    fields.push(Field::new(&a.output, out_ty));
                }
                Ok(DataType::Item(fields))
            }
        }
    }
}

fn resolve_or_err(op: OpId, schema: &DataType, path: &Path) -> Result<DataType> {
    schema
        .resolve(path)
        .cloned()
        .ok_or_else(|| EngineError::UnresolvedPath {
            op,
            path: path.clone(),
            schema: schema.clone(),
        })
}

fn agg_output_type(op: OpId, func: AggFunc, input: &DataType) -> Result<DataType> {
    let numeric = |t: &DataType| matches!(t, DataType::Int | DataType::Double | DataType::Null);
    Ok(match func {
        AggFunc::Count => DataType::Int,
        AggFunc::Sum => {
            if !numeric(input) {
                return Err(EngineError::TypeError {
                    op,
                    message: format!("sum over non-numeric type {input}"),
                });
            }
            input.clone()
        }
        AggFunc::Avg => {
            if !numeric(input) {
                return Err(EngineError::TypeError {
                    op,
                    message: format!("avg over non-numeric type {input}"),
                });
            }
            DataType::Double
        }
        AggFunc::Min | AggFunc::Max => input.clone(),
        AggFunc::CollectList => DataType::bag(input.clone()),
        AggFunc::CollectSet => DataType::set(input.clone()),
    })
}

/// Merges two item schemas for a join result `⟨i, j⟩`, disambiguating right
/// attribute names on clash exactly as [`DataItem::merged`] does at run
/// time. Returns the merged schema and the right-side rename map
/// `(original name, output name)`.
pub fn merge_item_schemas(
    op: OpId,
    left: &DataType,
    right: &DataType,
) -> Result<(DataType, Vec<(String, String)>)> {
    let lf = match left {
        DataType::Item(fs) => fs.clone(),
        DataType::Null => Vec::new(),
        other => {
            return Err(EngineError::TypeError {
                op,
                message: format!("join input is {other}, expected an item type"),
            })
        }
    };
    let rf = match right {
        DataType::Item(fs) => fs.clone(),
        DataType::Null => Vec::new(),
        other => {
            return Err(EngineError::TypeError {
                op,
                message: format!("join input is {other}, expected an item type"),
            })
        }
    };
    let mut fields = lf;
    let mut renames = Vec::with_capacity(rf.len());
    for f in rf {
        let mut name = f.name.clone();
        while fields.iter().any(|g| g.name == name) {
            name.push_str("_r");
        }
        renames.push((f.name.clone(), name.clone()));
        fields.push(Field::new(name, f.ty));
    }
    Ok((DataType::Item(fields), renames))
}

/// Evaluates a grouping key path to a value (missing paths group under
/// `Null`).
pub fn key_value(item: &DataItem, path: &Path) -> Value {
    path.eval(item).cloned().unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet_schema() -> DataType {
        DataType::item([
            ("text", DataType::Str),
            (
                "user",
                DataType::item([("id_str", DataType::Str), ("name", DataType::Str)]),
            ),
            (
                "user_mentions",
                DataType::bag(DataType::item([
                    ("id_str", DataType::Str),
                    ("name", DataType::Str),
                ])),
            ),
            ("retweet_cnt", DataType::Int),
        ])
    }

    #[test]
    fn filter_preserves_schema() {
        let k = OpKind::Filter {
            predicate: Expr::col("retweet_cnt").eq(Expr::lit(0i64)),
        };
        let s = tweet_schema();
        assert_eq!(k.output_schema(1, std::slice::from_ref(&s)).unwrap(), s);
    }

    #[test]
    fn filter_rejects_non_boolean() {
        let k = OpKind::Filter {
            predicate: Expr::col("text"),
        };
        assert!(matches!(
            k.output_schema(1, &[tweet_schema()]),
            Err(EngineError::TypeError { .. })
        ));
    }

    #[test]
    fn select_schema_with_struct() {
        let k = OpKind::Select {
            exprs: vec![
                NamedExpr::aliased("tweet", "text"),
                NamedExpr::new(
                    "user",
                    SelectExpr::strct([
                        ("id_str", SelectExpr::path("user.id_str")),
                        ("name", SelectExpr::path("user.name")),
                    ]),
                ),
            ],
        };
        let out = k.output_schema(8, &[tweet_schema()]).unwrap();
        assert_eq!(
            out.to_string(),
            "⟨tweet: Str, user: ⟨id_str: Str, name: Str⟩⟩"
        );
    }

    #[test]
    fn flatten_schema_appends_element() {
        let k = OpKind::Flatten {
            col: Path::attr("user_mentions"),
            new_attr: "m_user".into(),
        };
        let out = k.output_schema(5, &[tweet_schema()]).unwrap();
        assert_eq!(
            out.field("m_user").unwrap().to_string(),
            "⟨id_str: Str, name: Str⟩"
        );
        // Original collection stays, matching Fig. 3.
        assert!(out.field("user_mentions").is_some());
    }

    #[test]
    fn flatten_rejects_scalar_target() {
        let k = OpKind::Flatten {
            col: Path::attr("text"),
            new_attr: "x".into(),
        };
        assert!(k.output_schema(5, &[tweet_schema()]).is_err());
    }

    #[test]
    fn union_unifies() {
        let k = OpKind::Union;
        let a = DataType::item([("x", DataType::Int)]);
        let b = DataType::item([("x", DataType::Double)]);
        assert_eq!(
            k.output_schema(7, &[a.clone(), b]).unwrap(),
            DataType::item([("x", DataType::Double)])
        );
        let c = DataType::item([("y", DataType::Int)]);
        assert!(k.output_schema(7, &[a, c]).is_err());
    }

    #[test]
    fn join_schema_renames_clashes() {
        let a = DataType::item([("k", DataType::Int), ("v", DataType::Str)]);
        let b = DataType::item([("k", DataType::Int), ("w", DataType::Str)]);
        let k = OpKind::Join {
            keys: vec![(Path::attr("k"), Path::attr("k"))],
        };
        let out = k.output_schema(3, &[a, b]).unwrap();
        assert_eq!(out.to_string(), "⟨k: Int, v: Str, k_r: Int, w: Str⟩");
    }

    #[test]
    fn group_aggregate_schema() {
        let k = OpKind::GroupAggregate {
            keys: vec![GroupKey::new("user")],
            aggs: vec![
                AggSpec::new(AggFunc::CollectList, "text", "tweets"),
                AggSpec::new(AggFunc::Count, "", "n"),
            ],
        };
        let out = k.output_schema(9, &[tweet_schema()]).unwrap();
        assert_eq!(
            out.to_string(),
            "⟨user: ⟨id_str: Str, name: Str⟩, tweets: {{Str}}, n: Int⟩"
        );
    }

    #[test]
    fn agg_type_errors() {
        let k = OpKind::GroupAggregate {
            keys: vec![GroupKey::new("user")],
            aggs: vec![AggSpec::new(AggFunc::Sum, "text", "s")],
        };
        assert!(k.output_schema(9, &[tweet_schema()]).is_err());
    }

    #[test]
    fn map_schema_unknown_unless_declared() {
        let udf = MapUdf {
            name: "id".into(),
            f: Arc::new(|d| d.clone()),
            output_schema: None,
        };
        let k = OpKind::Map { udf };
        assert_eq!(
            k.output_schema(2, &[tweet_schema()]).unwrap(),
            DataType::Null
        );
    }
}
