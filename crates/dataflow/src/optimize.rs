//! Rule-based logical plan optimization.
//!
//! The paper relies on the DISC system's optimizer ("It becomes part of
//! Spark's execution plan and undergoes optimizations such as filter push
//! down", Sec. 7.3.3). This module gives the substrate the same ability:
//!
//! * **filter-merge** — adjacent filters combine into one conjunction;
//! * **filter ∘ select pushdown** — a filter over pure path projections is
//!   rewritten onto the select's input;
//! * **filter ∘ union pushdown** — the filter is duplicated into both arms;
//! * **filter ∘ flatten pushdown** — filters not referencing the exploded
//!   attribute move below the flatten.
//!
//! Optimization is purely logical: the optimized program computes the same
//! result (asserted over every evaluation scenario in the test suite).
//! Operator ids are re-assigned, so provenance captured on an optimized
//! plan is self-consistent but numbered differently from the original.

use pebble_nested::{Path, Step};

use crate::expr::{Expr, SelectExpr};
use crate::op::OpKind;
use crate::program::{Operator, Program, ProgramBuilder};

/// Statistics about an optimization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Filters merged into a predecessor filter.
    pub filters_merged: usize,
    /// Filters pushed below selects.
    pub pushed_through_select: usize,
    /// Filters pushed into union arms.
    pub pushed_through_union: usize,
    /// Filters pushed below flattens.
    pub pushed_through_flatten: usize,
}

impl OptimizeStats {
    /// Total rewrites applied.
    pub fn total(&self) -> usize {
        self.filters_merged
            + self.pushed_through_select
            + self.pushed_through_union
            + self.pushed_through_flatten
    }
}

/// Applies the rewrite rules to fixpoint and returns the optimized program
/// with statistics.
pub fn optimize(program: &Program) -> (Program, OptimizeStats) {
    let mut ops: Vec<Operator> = program.operators().to_vec();
    let mut sink = program.sink();
    let mut stats = OptimizeStats::default();
    // Fixpoint over single-step rewrites; bounded by a generous limit.
    for _ in 0..ops.len() * 4 + 8 {
        if !rewrite_once(&mut ops, &mut sink, &mut stats) {
            break;
        }
    }
    (rebuild(&ops, sink), stats)
}

/// One rewrite step; returns true if something changed.
fn rewrite_once(ops: &mut Vec<Operator>, sink: &mut u32, stats: &mut OptimizeStats) -> bool {
    let consumers = consumer_counts(ops, *sink);
    for idx in 0..ops.len() {
        let OpKind::Filter { predicate } = &ops[idx].kind else {
            continue;
        };
        let input = ops[idx].inputs[0] as usize;
        // Only rewrite through operators with a single consumer — pushing
        // a filter below a shared subtree would change the other branch.
        if consumers[input] != 1 {
            continue;
        }
        match &ops[input].kind {
            OpKind::Filter {
                predicate: inner_pred,
            } => {
                // filter(p) ∘ filter(q) ⇒ filter(q && p).
                let merged = inner_pred.clone().and(predicate.clone());
                let grand = ops[input].inputs[0];
                ops[idx].kind = OpKind::Filter { predicate: merged };
                ops[idx].inputs = vec![grand];
                stats.filters_merged += 1;
                return true;
            }
            OpKind::Select { exprs } => {
                if let Some(rewritten) = rewrite_through_select(predicate, exprs) {
                    // filter(p) ∘ select(e) ⇒ select(e) ∘ filter(p′):
                    // swap the two operators in place.
                    let select_kind = ops[input].kind.clone();
                    let grand = ops[input].inputs[0];
                    ops[input].kind = OpKind::Filter {
                        predicate: rewritten,
                    };
                    ops[input].inputs = vec![grand];
                    let filter_id = ops[idx].id;
                    ops[idx].kind = select_kind;
                    ops[idx].inputs = vec![ops[input].id];
                    let _ = filter_id;
                    stats.pushed_through_select += 1;
                    return true;
                }
            }
            OpKind::Union => {
                // filter(p) ∘ union(a, b) ⇒ union(filter(p) ∘ a, filter(p) ∘ b).
                let (a, b) = (ops[input].inputs[0], ops[input].inputs[1]);
                let p = predicate.clone();
                let fa = push_new(
                    ops,
                    OpKind::Filter {
                        predicate: p.clone(),
                    },
                    vec![a],
                );
                let fb = push_new(ops, OpKind::Filter { predicate: p }, vec![b]);
                ops[idx].kind = OpKind::Union;
                ops[idx].inputs = vec![fa, fb];
                // The old union becomes dead; rebuild() drops it.
                stats.pushed_through_union += 1;
                return true;
            }
            OpKind::Flatten { new_attr, .. } => {
                let references_new = predicate
                    .accessed_paths()
                    .iter()
                    .any(|p| matches!(p.head(), Some(Step::Attr(a)) if a == new_attr));
                if !references_new {
                    // filter(p) ∘ flatten ⇒ flatten ∘ filter(p).
                    let flatten_kind = ops[input].kind.clone();
                    let grand = ops[input].inputs[0];
                    ops[input].kind = OpKind::Filter {
                        predicate: predicate.clone(),
                    };
                    ops[input].inputs = vec![grand];
                    ops[idx].kind = flatten_kind;
                    ops[idx].inputs = vec![ops[input].id];
                    stats.pushed_through_flatten += 1;
                    return true;
                }
            }
            _ => {}
        }
    }
    let _ = sink;
    false
}

fn push_new(ops: &mut Vec<Operator>, kind: OpKind, inputs: Vec<u32>) -> u32 {
    // Temporary id; rebuild() renumbers. Ids must stay unique.
    let id = ops.len() as u32;
    ops.push(Operator { id, kind, inputs });
    id
}

fn consumer_counts(ops: &[Operator], sink: u32) -> Vec<usize> {
    let mut counts = vec![0usize; ops.len()];
    for op in ops {
        for &i in &op.inputs {
            counts[i as usize] += 1;
        }
    }
    counts[sink as usize] += 1; // the sink is consumed by the caller
    counts
}

/// Rewrites a predicate across a select: every accessed path must resolve
/// to a pure path projection (no computed expressions), in which case the
/// path is substituted with its source path.
fn rewrite_through_select(predicate: &Expr, exprs: &[crate::op::NamedExpr]) -> Option<Expr> {
    let mut rewritten = predicate.clone();
    for path in predicate.accessed_paths() {
        let source = resolve_select_path(&path, exprs)?;
        rewritten = substitute(&rewritten, &path, &source);
    }
    Some(rewritten)
}

/// Resolves an output-side path to its input-side source through the
/// select's projections (descending into struct constructions).
fn resolve_select_path(path: &Path, exprs: &[crate::op::NamedExpr]) -> Option<Path> {
    let Some(Step::Attr(first)) = path.head() else {
        return None;
    };
    let ne = exprs.iter().find(|ne| &ne.name == first)?;
    resolve_in_expr(&path.tail(), &ne.expr)
}

fn resolve_in_expr(rest: &Path, expr: &SelectExpr) -> Option<Path> {
    match expr {
        SelectExpr::Path(p) => Some(p.join(rest)),
        SelectExpr::Struct(fields) => {
            let Some(Step::Attr(name)) = rest.head() else {
                return None;
            };
            let (_, inner) = fields.iter().find(|(n, _)| n == name)?;
            resolve_in_expr(&rest.tail(), inner)
        }
        SelectExpr::Computed(_) => None, // not a pure copy
    }
}

/// Substitutes every occurrence of column `from` with column `to`.
fn substitute(expr: &Expr, from: &Path, to: &Path) -> Expr {
    let map = |e: &Expr| substitute(e, from, to);
    match expr {
        Expr::Col(p) if p == from => Expr::Col(to.clone()),
        Expr::Col(p) => Expr::Col(p.clone()),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(map(a)), Box::new(map(b))),
        Expr::And(a, b) => Expr::And(Box::new(map(a)), Box::new(map(b))),
        Expr::Or(a, b) => Expr::Or(Box::new(map(a)), Box::new(map(b))),
        Expr::Not(a) => Expr::Not(Box::new(map(a))),
        Expr::Contains(a, b) => Expr::Contains(Box::new(map(a)), Box::new(map(b))),
        Expr::Arith(op, a, b) => Expr::Arith(*op, Box::new(map(a)), Box::new(map(b))),
        Expr::IsNull(a) => Expr::IsNull(Box::new(map(a))),
        Expr::Len(a) => Expr::Len(Box::new(map(a))),
        Expr::Udf(udf) => Expr::Udf(crate::expr::ScalarUdf {
            name: udf.name.clone(),
            args: udf.args.iter().map(map).collect(),
            f: udf.f.clone(),
        }),
    }
}

/// Rebuilds a clean program from a rewritten operator soup: dead operators
/// are dropped and ids renumbered in topological order.
fn rebuild(ops: &[Operator], sink: u32) -> Program {
    // Collect live operators reachable from the sink.
    let mut live = vec![false; ops.len()];
    let mut stack = vec![sink];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id as usize], true) {
            continue;
        }
        stack.extend(ops[id as usize].inputs.iter().copied());
    }
    // Emit in original id order (inputs always have smaller ids than their
    // consumers except for freshly pushed nodes, so order by dependency).
    let order = topo_order(ops, &live);
    let mut remap = vec![u32::MAX; ops.len()];
    let mut builder = ProgramBuilder::new();
    for &idx in &order {
        let op = &ops[idx];
        let inputs: Vec<u32> = op.inputs.iter().map(|&i| remap[i as usize]).collect();
        let new_id = builder.push_raw(op.kind.clone(), inputs);
        remap[idx] = new_id;
    }
    builder.build(remap[sink as usize])
}

fn topo_order(ops: &[Operator], live: &[bool]) -> Vec<usize> {
    let mut visited = vec![false; ops.len()];
    let mut order = Vec::new();
    fn visit(idx: usize, ops: &[Operator], visited: &mut [bool], order: &mut Vec<usize>) {
        if visited[idx] {
            return;
        }
        visited[idx] = true;
        for &i in &ops[idx].inputs {
            visit(i as usize, ops, visited, order);
        }
        order.push(idx);
    }
    for (idx, &is_live) in live.iter().enumerate() {
        if is_live {
            visit(idx, ops, &mut visited, &mut order);
        }
    }
    order.retain(|&i| live[i]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{items_of, Context};
    use crate::exec::{run, ExecConfig};
    use crate::op::NamedExpr;
    use crate::sink::NoSink;
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![
                    ("k", Value::Int(1)),
                    ("v", Value::Int(10)),
                    ("xs", Value::Bag(vec![Value::Int(1), Value::Int(2)])),
                ],
                vec![
                    ("k", Value::Int(2)),
                    ("v", Value::Int(20)),
                    ("xs", Value::Bag(vec![Value::Int(3)])),
                ],
            ]),
        );
        c
    }

    fn assert_equivalent(p: &Program) -> OptimizeStats {
        let (optimized, stats) = optimize(p);
        let cfg = ExecConfig::with_partitions(2);
        let c = ctx();
        let a = run(p, &c, cfg, &NoSink).unwrap();
        let b = run(&optimized, &c, cfg, &NoSink).unwrap();
        assert!(
            a.iter_items().eq(b.iter_items()),
            "optimization changed the result"
        );
        stats
    }

    #[test]
    fn merges_adjacent_filters() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f1 = b.filter(r, Expr::col("v").ge(Expr::lit(5i64)));
        let f2 = b.filter(f1, Expr::col("k").eq(Expr::lit(1i64)));
        let p = b.build(f2);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.filters_merged, 1);
        let (optimized, _) = optimize(&p);
        assert_eq!(optimized.operators().len(), 2); // read + one filter
    }

    #[test]
    fn pushes_filter_through_select() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let s = b.select(
            r,
            vec![NamedExpr::aliased("key", "k"), NamedExpr::path("v")],
        );
        let f = b.filter(s, Expr::col("key").eq(Expr::lit(1i64)));
        let p = b.build(f);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_select, 1);
        let (optimized, _) = optimize(&p);
        // Now: read, filter(k == 1), select.
        assert_eq!(optimized.operators()[1].kind.type_name(), "filter");
        assert_eq!(optimized.operators()[2].kind.type_name(), "select");
    }

    #[test]
    fn select_with_computed_column_blocks_pushdown() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let s = b.select(
            r,
            vec![NamedExpr::new(
                "derived",
                SelectExpr::Computed(Expr::col("v").ge(Expr::lit(15i64))),
            )],
        );
        let f = b.filter(s, Expr::col("derived").eq(Expr::lit(true)));
        let p = b.build(f);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_select, 0);
    }

    #[test]
    fn pushes_filter_into_union_arms() {
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let f = b.filter(u, Expr::col("v").lt(Expr::lit(15i64)));
        let p = b.build(f);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_union, 1);
        let (optimized, _) = optimize(&p);
        let filters = optimized
            .operators()
            .iter()
            .filter(|o| o.kind.type_name() == "filter")
            .count();
        assert_eq!(filters, 2);
        assert_eq!(
            optimized.operators()[optimized.sink() as usize]
                .kind
                .type_name(),
            "union"
        );
    }

    #[test]
    fn pushes_filter_below_flatten_when_independent() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let fl = b.flatten(r, "xs", "x");
        let f = b.filter(fl, Expr::col("k").eq(Expr::lit(1i64)));
        let p = b.build(f);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_flatten, 1);
    }

    #[test]
    fn filter_on_exploded_attr_stays_above_flatten() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let fl = b.flatten(r, "xs", "x");
        let f = b.filter(fl, Expr::col("x").ge(Expr::lit(2i64)));
        let p = b.build(f);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_flatten, 0);
    }

    #[test]
    fn struct_projection_paths_resolved() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let s = b.select(
            r,
            vec![NamedExpr::new(
                "pair",
                SelectExpr::strct([("key", SelectExpr::path("k"))]),
            )],
        );
        let f = b.filter(s, Expr::col("pair.key").eq(Expr::lit(2i64)));
        let p = b.build(f);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_select, 1);
    }

    #[test]
    fn shared_subtree_not_rewritten() {
        // The select feeds both a filter and the union directly; pushing
        // the filter below it would change the other consumer.
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let s = b.select(r, vec![NamedExpr::path("k"), NamedExpr::path("v")]);
        let f = b.filter(s, Expr::col("v").ge(Expr::lit(15i64)));
        let u = b.union(f, s);
        let p = b.build(u);
        let stats = assert_equivalent(&p);
        assert_eq!(stats.pushed_through_select, 0);
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use crate::context::{items_of, Context};
    use crate::exec::{run, ExecConfig};
    use crate::op::NamedExpr;
    use crate::sink::NoSink;
    use pebble_nested::Value;

    /// A filter travels through select → flatten → union in one fixpoint,
    /// landing directly above both reads.
    #[test]
    fn filter_descends_whole_chain() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![
                    ("k", Value::Int(1)),
                    ("xs", Value::Bag(vec![Value::Int(1)])),
                ],
                vec![
                    ("k", Value::Int(2)),
                    ("xs", Value::Bag(vec![Value::Int(2), Value::Int(3)])),
                ],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let fl = b.flatten(u, "xs", "x");
        let s = b.select(
            fl,
            vec![NamedExpr::aliased("key", "k"), NamedExpr::path("x")],
        );
        let f = b.filter(s, Expr::col("key").eq(Expr::lit(2i64)));
        let p = b.build(f);

        let (optimized, stats) = optimize(&p);
        assert_eq!(stats.pushed_through_select, 1);
        assert_eq!(stats.pushed_through_flatten, 1);
        assert_eq!(stats.pushed_through_union, 1);
        // Both reads are now followed directly by a filter.
        for (read_id, _) in optimized.reads() {
            let consumers = optimized.consumers();
            let consumer = consumers[&read_id][0];
            assert_eq!(
                optimized.operators()[consumer as usize].kind.type_name(),
                "filter"
            );
        }
        let cfg = ExecConfig::with_partitions(2);
        let a = run(&p, &c, cfg, &NoSink).unwrap();
        let b2 = run(&optimized, &c, cfg, &NoSink).unwrap();
        assert!(a.iter_items().eq(b2.iter_items()));
    }

    /// Optimizing an already-optimal program is the identity.
    #[test]
    fn idempotent_on_optimal_plans() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("k").eq(Expr::lit(1i64)));
        let fl = b.flatten(f, "xs", "x");
        let p = b.build(fl);
        let (o1, s1) = optimize(&p);
        assert_eq!(s1.total(), 0);
        let (_, s2) = optimize(&o1);
        assert_eq!(s2.total(), 0);
    }
}
