//! Provenance recording interface.
//!
//! The executor is generic over a [`ProvenanceSink`]; a monomorphized
//! [`NoSink`] compiles recording away entirely, so a plain run measures the
//! engine alone (the "Spark" bars of Figs. 6/7), while Pebble's capture
//! (in `pebble-core`) implements this trait to record the operator
//! provenance structures of Tab. 6.

use crate::exec::ItemId;
use crate::op::OpId;

/// Receives the identifier associations produced during execution.
///
/// Methods are called once per partition batch, from worker threads;
/// implementations must be `Sync`. When [`ProvenanceSink::ENABLED`] is
/// `false` the executor skips building the association buffers altogether.
pub trait ProvenanceSink: Sync {
    /// Whether the executor should collect associations at all.
    const ENABLED: bool;

    /// Identifiers assigned to the items of a `read` operator, in dataset
    /// order.
    fn read_batch(&self, _op: OpId, _ids: &[ItemId]) {}

    /// `⟨id^i, id^o⟩` pairs for `map`, `select`, `filter` (Tab. 6 row 1).
    fn unary_batch(&self, _op: OpId, _assoc: &[(ItemId, ItemId)]) {}

    /// `⟨id_1^i, id_2^i, id^o⟩` triples for `join` and `union` (Tab. 6
    /// row 2); for `union` the non-originating side is `None`.
    fn binary_batch(&self, _op: OpId, _assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {}

    /// `⟨id^i, pos, id^o⟩` triples for `flatten` (Tab. 6 row 3); `pos` is
    /// the 1-based position of the unnested element.
    fn flatten_batch(&self, _op: OpId, _assoc: &[(ItemId, u32, ItemId)]) {}

    /// `⟨ids^i, id^o⟩` for grouping/aggregation (Tab. 6 row 4); `ids` are
    /// the group's input identifiers in nesting order.
    fn agg_batch(&self, _op: OpId, _assoc: Vec<(Vec<ItemId>, ItemId)>) {}
}

/// Sink that records nothing; recording code is compiled out.
pub struct NoSink;

impl ProvenanceSink for NoSink {
    const ENABLED: bool = false;
}
