//! Provenance recording interface.
//!
//! The executor is generic over a [`ProvenanceSink`]; a monomorphized
//! [`NoSink`] compiles recording away entirely, so a plain run measures the
//! engine alone (the "Spark" bars of Figs. 6/7), while Pebble's capture
//! (in `pebble-core`) implements this trait to record the operator
//! provenance structures of Tab. 6.

use crate::exec::ItemId;
use crate::op::{OpId, OpKind};

/// Receives the identifier associations produced during execution.
///
/// Methods are called once per partition batch, from worker threads;
/// implementations must be `Sync`. When [`ProvenanceSink::ENABLED`] is
/// `false` the executor skips building the association buffers altogether.
pub trait ProvenanceSink: Sync {
    /// Whether the executor should collect associations at all.
    const ENABLED: bool;

    /// Identifiers assigned to the items of a `read` operator, in dataset
    /// order.
    fn read_batch(&self, _op: OpId, _ids: &[ItemId]) {}

    /// `⟨id^i, id^o⟩` pairs for `map`, `select`, `filter` (Tab. 6 row 1).
    fn unary_batch(&self, _op: OpId, _assoc: &[(ItemId, ItemId)]) {}

    /// A contiguous run of `len` unary pairs `⟨in_first + k, out_first + k⟩`
    /// for `k in 0..len` — the shape the columnar path produces when a whole
    /// partition maps positionally. The default expands to [`unary_batch`],
    /// so existing sinks observe identical associations; table-backed sinks
    /// can override to append the range without materializing pairs.
    ///
    /// [`unary_batch`]: ProvenanceSink::unary_batch
    fn unary_run(&self, op: OpId, in_first: ItemId, out_first: ItemId, len: u64) {
        let pairs: Vec<(ItemId, ItemId)> =
            (0..len).map(|k| (in_first + k, out_first + k)).collect();
        self.unary_batch(op, &pairs);
    }

    /// `⟨id_1^i, id_2^i, id^o⟩` triples for `join` and `union` (Tab. 6
    /// row 2); for `union` the non-originating side is `None`.
    fn binary_batch(&self, _op: OpId, _assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {}

    /// `⟨id^i, pos, id^o⟩` triples for `flatten` (Tab. 6 row 3); `pos` is
    /// the 1-based position of the unnested element.
    fn flatten_batch(&self, _op: OpId, _assoc: &[(ItemId, u32, ItemId)]) {}

    /// `⟨ids^i, id^o⟩` for grouping/aggregation (Tab. 6 row 4); `ids` are
    /// the group's input identifiers in nesting order.
    fn agg_batch(&self, _op: OpId, _assoc: Vec<(Vec<ItemId>, ItemId)>) {}
}

/// Sink that records nothing; recording code is compiled out.
pub struct NoSink;

impl ProvenanceSink for NoSink {
    const ENABLED: bool = false;
}

/// Forwards every association batch to two sinks.
///
/// Used to stream provenance to a secondary consumer (e.g. an on-disk
/// segment writer) while the primary in-memory capture keeps recording:
/// both observe the identical batch sequence, in the same order, on the
/// same threads.
pub struct Tee<'a, A, B>(pub &'a A, pub &'a B);

impl<A: ProvenanceSink, B: ProvenanceSink> ProvenanceSink for Tee<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn read_batch(&self, op: OpId, ids: &[ItemId]) {
        self.0.read_batch(op, ids);
        self.1.read_batch(op, ids);
    }

    fn unary_batch(&self, op: OpId, assoc: &[(ItemId, ItemId)]) {
        self.0.unary_batch(op, assoc);
        self.1.unary_batch(op, assoc);
    }

    // Forwarded as a run so both sinks keep their range representations;
    // the default expansion would silently degrade run-aware sinks to
    // per-pair recording.
    fn unary_run(&self, op: OpId, in_first: ItemId, out_first: ItemId, len: u64) {
        self.0.unary_run(op, in_first, out_first, len);
        self.1.unary_run(op, in_first, out_first, len);
    }

    fn binary_batch(&self, op: OpId, assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {
        self.0.binary_batch(op, assoc);
        self.1.binary_batch(op, assoc);
    }

    fn flatten_batch(&self, op: OpId, assoc: &[(ItemId, u32, ItemId)]) {
        self.0.flatten_batch(op, assoc);
        self.1.flatten_batch(op, assoc);
    }

    fn agg_batch(&self, op: OpId, assoc: Vec<(Vec<ItemId>, ItemId)>) {
        self.0.agg_batch(op, assoc.clone());
        self.1.agg_batch(op, assoc);
    }
}

/// Estimated size in bytes of the association entries an operator records,
/// derived from its Tab. 6 association shape and the run's row counts (one
/// entry per output row; aggregation entries additionally carry the group's
/// input identifiers, whose total count is the operator's input rows).
///
/// This is the id-payload estimate used by the run report's per-operator
/// `assoc_bytes` column; capture runs report exact totals separately in the
/// report's `provenance` section.
pub fn estimated_assoc_bytes(kind: &OpKind, rows_in: u64, rows_out: u64) -> u64 {
    const ID: u64 = std::mem::size_of::<ItemId>() as u64;
    match kind {
        // ⟨id^o⟩ per read row.
        OpKind::Read { .. } => rows_out * ID,
        // ⟨id^i, id^o⟩ per surviving row.
        OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. } => rows_out * 2 * ID,
        // ⟨id^i, pos, id^o⟩ — a 4-byte position between two ids.
        OpKind::Flatten { .. } => rows_out * (2 * ID + 4),
        // ⟨id_1^i, id_2^i, id^o⟩ (union's absent side still occupies the slot).
        OpKind::Join { .. } | OpKind::Union => rows_out * 3 * ID,
        // ⟨ids^i, id^o⟩ per group: every input id appears in exactly one
        // group, plus one output id per group.
        OpKind::GroupAggregate { .. } => (rows_in + rows_out) * ID,
    }
}
