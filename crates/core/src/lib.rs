//! # pebble-core — structural provenance (Secs. 4–6)
//!
//! The paper's contribution, implemented over the `pebble-dataflow` engine:
//!
//! * [`capture`] — lightweight structural provenance capture (Sec. 5):
//!   per-operator identifier association tables (Tab. 6) plus schema-level
//!   access/manipulation path sets derived statically from the plan;
//! * [`pattern`] — tree-pattern provenance queries (Sec. 6.1, Fig. 4);
//! * [`btree`] — backtracing structures and trees with contributing /
//!   influencing attributes (Defs. 6.2/6.3);
//! * [`mod@backtrace`] — the backtracing algorithm (Algs. 1–4) computing
//!   attribute-level provenance of nested data from the captured pebbles.

#![warn(missing_docs)]

pub mod analysis;
pub mod backend;
pub mod backtrace;
pub mod btree;
pub mod capture;
pub mod model;
pub mod pattern;
pub mod pattern_opt;
pub mod pattern_parse;
pub mod semiring;
pub mod storage;
pub mod whynot;

pub use analysis::{co_access_pairs, AuditReport, Heatmap, ItemUsage};
pub use backend::{
    backend_by_name, backend_from_env, run_for_backend, CaptureBackend, PreparedBackend,
    SemiringBackend, StructuralBackend, WhyNotBackend,
};
pub use backtrace::{
    backtrace, backtrace_from, backtrace_with, canonical_provenance, BacktraceIndex, ProvView,
    SourceProvenance, TracedItem,
};
pub use btree::{BNode, Backtrace, NodeLabel, ProvTree};
pub use capture::{
    run_captured, run_captured_observed, run_captured_spawn, run_captured_unfused,
    run_captured_with, CapturedRun, InputProv, OperatorProvenance, ProvAssoc,
};
pub use pattern::{EdgeKind, PatternNode, TreePattern, ValuePred};
pub use pattern_parse::PatternParseError;
