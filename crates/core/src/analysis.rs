//! Use-case layer (Secs. 1 and 7.3.5): data-usage heatmaps, auditing
//! reports, and co-access statistics for vertical partitioning.
//!
//! These analyses consume backtraced provenance over a common source
//! dataset, typically merged across a workload of scenarios (the paper
//! merges D1–D5 for Fig. 10).

use std::collections::BTreeMap;

use pebble_dataflow::hash::FxHashMap;
use pebble_nested::Path;

use crate::backtrace::SourceProvenance;
use crate::btree::NodeLabel;

/// Usage statistics for one top-level source item.
#[derive(Clone, Debug, Default)]
pub struct ItemUsage {
    /// How often the top-level item (tuple) contributed to a traced result
    /// — the leftmost heatmap column of Fig. 10.
    pub tuple_count: usize,
    /// Per top-level attribute: how often it *contributed*.
    pub contributing: BTreeMap<String, usize>,
    /// Per top-level attribute: how often it was accessed or manipulated
    /// without contributing (*influencing* only).
    pub influencing: BTreeMap<String, usize>,
}

impl ItemUsage {
    /// Total usage count of an attribute (contributing + influencing).
    pub fn total(&self, attr: &str) -> usize {
        self.contributing.get(attr).copied().unwrap_or(0)
            + self.influencing.get(attr).copied().unwrap_or(0)
    }
}

/// A usage heatmap over a source dataset (Fig. 10): per item index, tuple
/// and per-attribute counters.
#[derive(Clone, Debug, Default)]
pub struct Heatmap {
    /// Usage per source item index.
    pub items: BTreeMap<usize, ItemUsage>,
    /// All attribute names observed, in first-seen order.
    pub attributes: Vec<String>,
}

impl Heatmap {
    /// Empty heatmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges the provenance of one traced query over `source` into the
    /// heatmap. Call once per scenario to accumulate a workload view.
    pub fn absorb(&mut self, prov: &SourceProvenance) {
        for entry in &prov.entries {
            let usage = self.items.entry(entry.index).or_default();
            usage.tuple_count += 1;
            for node in &entry.tree.roots {
                let NodeLabel::Attr(name) = &node.label else {
                    continue;
                };
                if !self.attributes.iter().any(|a| a == name) {
                    self.attributes.push(name.clone());
                }
                let slot = if node.contributing {
                    usage.contributing.entry(name.clone()).or_insert(0)
                } else {
                    usage.influencing.entry(name.clone()).or_insert(0)
                };
                *slot += 1;
            }
        }
    }

    /// Items whose tuple count is zero within `0..n` (cold items).
    pub fn cold_items(&self, n: usize) -> Vec<usize> {
        (0..n)
            .filter(|i| self.items.get(i).is_none_or(|u| u.tuple_count == 0))
            .collect()
    }

    /// Attributes never used across all items (cold attributes) — the
    /// candidates for vertical partitioning into cold storage.
    pub fn cold_attributes<'a>(&self, all_attributes: &'a [String]) -> Vec<&'a String> {
        all_attributes
            .iter()
            .filter(|a| self.items.values().all(|u| u.total(a) == 0))
            .collect()
    }

    /// Renders the heatmap as a text table for `n` items over the given
    /// attribute columns (Fig. 10's layout: tuple column first).
    pub fn render(&self, n: usize, attributes: &[String]) -> String {
        let mut out = String::new();
        out.push_str("item  tuple");
        for a in attributes {
            out.push_str(&format!("  {a:>12}"));
        }
        out.push('\n');
        for i in 0..n {
            let empty = ItemUsage::default();
            let u = self.items.get(&i).unwrap_or(&empty);
            out.push_str(&format!("{i:>4}  {:>5}", u.tuple_count));
            for a in attributes {
                let c = u.contributing.get(a).copied().unwrap_or(0);
                let f = u.influencing.get(a).copied().unwrap_or(0);
                if c + f == 0 {
                    out.push_str(&format!("  {:>12}", "."));
                } else if f > 0 && c == 0 {
                    out.push_str(&format!("  {:>11}i", f));
                } else {
                    out.push_str(&format!("  {:>12}", c + f));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// GDPR-style auditing report (Sec. 7.3.5): which attributes of which items
/// were *leaked* (contributing to the exposed result) vs merely
/// *influencing* (accessed, relevant for reconstruction-attack risk).
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Per source item index: leaked attribute paths.
    pub leaked: BTreeMap<usize, Vec<Path>>,
    /// Per source item index: influencing-only attribute paths.
    pub influencing: BTreeMap<usize, Vec<Path>>,
}

impl AuditReport {
    /// Builds the report from traced provenance over one source.
    pub fn from_provenance(prov: &SourceProvenance) -> Self {
        let mut report = AuditReport::default();
        for entry in &prov.entries {
            let leaked = entry.tree.contributing_paths();
            let influencing = entry.tree.influencing_paths();
            if !leaked.is_empty() {
                report.leaked.entry(entry.index).or_default().extend(leaked);
            }
            if !influencing.is_empty() {
                report
                    .influencing
                    .entry(entry.index)
                    .or_default()
                    .extend(influencing);
            }
        }
        report
    }

    /// Merges another report (e.g. from another scenario of the audited
    /// workload).
    pub fn merge(&mut self, other: AuditReport) {
        for (idx, mut paths) in other.leaked {
            self.leaked.entry(idx).or_default().append(&mut paths);
        }
        for (idx, mut paths) in other.influencing {
            self.influencing.entry(idx).or_default().append(&mut paths);
        }
    }

    /// Items with at least one leaked attribute.
    pub fn leaked_items(&self) -> Vec<usize> {
        self.leaked.keys().copied().collect()
    }
}

/// Counts how often pairs of top-level attributes contribute together in
/// the same provenance tree — the co-access signal for data-layout
/// optimization ("author and title are frequently processed together").
pub fn co_access_pairs(provs: &[&SourceProvenance]) -> Vec<((String, String), usize)> {
    let mut counts: FxHashMap<(String, String), usize> = FxHashMap::default();
    for prov in provs {
        for entry in &prov.entries {
            let mut attrs: Vec<&str> = entry
                .tree
                .roots
                .iter()
                .filter_map(|n| match &n.label {
                    NodeLabel::Attr(a) if n.contributing => Some(a.as_str()),
                    _ => None,
                })
                .collect();
            attrs.sort_unstable();
            attrs.dedup();
            for i in 0..attrs.len() {
                for j in i + 1..attrs.len() {
                    *counts
                        .entry((attrs[i].to_string(), attrs[j].to_string()))
                        .or_insert(0) += 1;
                }
            }
        }
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrace::TracedItem;
    use crate::btree::ProvTree;

    fn prov(entries: Vec<(usize, ProvTree)>) -> SourceProvenance {
        SourceProvenance {
            read_op: 0,
            source: "s".into(),
            entries: entries
                .into_iter()
                .map(|(index, tree)| TracedItem {
                    id: index as u64 + 1,
                    index,
                    tree,
                })
                .collect(),
        }
    }

    fn tree(contributing: &[&str], influencing: &[&str]) -> ProvTree {
        let mut t = ProvTree::new();
        for p in contributing {
            t.insert(&Path::parse(p), true);
        }
        for p in influencing {
            t.insert(&Path::parse(p), false);
        }
        t
    }

    #[test]
    fn heatmap_counts_contributions() {
        let mut h = Heatmap::new();
        h.absorb(&prov(vec![
            (0, tree(&["title"], &["year"])),
            (2, tree(&["title", "author"], &[])),
        ]));
        h.absorb(&prov(vec![(0, tree(&["author"], &[]))]));
        assert_eq!(h.items[&0].tuple_count, 2);
        assert_eq!(h.items[&0].contributing["title"], 1);
        assert_eq!(h.items[&0].influencing["year"], 1);
        assert_eq!(h.items[&2].contributing["author"], 1);
        assert_eq!(h.cold_items(4), vec![1, 3]);
    }

    #[test]
    fn heatmap_render_shapes() {
        let mut h = Heatmap::new();
        h.absorb(&prov(vec![(0, tree(&["title"], &["year"]))]));
        let attrs = vec!["title".to_string(), "year".to_string(), "ee".to_string()];
        let s = h.render(2, &attrs);
        assert!(s.contains("tuple"));
        assert!(s.lines().count() == 3);
        assert!(s.contains("1i") || s.contains(" i")); // influencing marker
        let cold = h.cold_attributes(&attrs);
        assert_eq!(cold, [&"ee".to_string()]);
    }

    #[test]
    fn audit_report_partitions_leakage() {
        let p = prov(vec![
            (0, tree(&["name"], &["year"])),
            (1, tree(&[], &["year"])),
        ]);
        let r = AuditReport::from_provenance(&p);
        assert_eq!(r.leaked_items(), vec![0]);
        assert!(r.influencing.contains_key(&1));
        let mut r2 = AuditReport::default();
        r2.merge(r);
        assert_eq!(r2.leaked_items(), vec![0]);
    }

    #[test]
    fn co_access_counts_pairs() {
        let p = prov(vec![
            (0, tree(&["author", "title"], &[])),
            (1, tree(&["author", "title", "year"], &[])),
            (2, tree(&["author"], &[])),
        ]);
        let pairs = co_access_pairs(&[&p]);
        assert_eq!(pairs[0], (("author".to_string(), "title".to_string()), 2));
    }
}
