//! Tree-pattern pre-filtering.
//!
//! The paper integrates tree-pattern matching into Spark's execution plan
//! so it "undergoes optimizations such as filter push down" (Sec. 7.3.3).
//! This module derives a *conservative* engine predicate from a pattern:
//! every item matching the pattern satisfies the predicate (never the
//! converse), so the cheap predicate can pre-filter a dataset before the
//! full structural match runs — or be pushed into the producing pipeline
//! via [`mod@pebble_dataflow::optimize`].

use pebble_dataflow::{Expr, Row};
use pebble_nested::{DataType, Path, Step};

use crate::btree::Backtrace;
use crate::pattern::{EdgeKind, PatternNode, TreePattern, ValuePred};

impl TreePattern {
    /// Derives a conservative pre-filter: a predicate implied by the
    /// pattern (matching items always satisfy it). Returns `None` when no
    /// branch is expressible as a scalar predicate — e.g. when every
    /// branch crosses a nested collection or uses descendant edges.
    pub fn prefilter(&self, schema: &DataType) -> Option<Expr> {
        let mut conjuncts = Vec::new();
        for branch in &self.children {
            if let Some(e) = branch_filter(branch, schema, &Path::root()) {
                conjuncts.push(e);
            }
        }
        conjuncts.into_iter().reduce(Expr::and)
    }

    /// Matches with pre-filtering: items failing the derived predicate are
    /// skipped without running the structural matcher. Results are
    /// identical to [`TreePattern::match_rows`].
    pub fn match_rows_prefiltered(&self, rows: &[Row], schema: &DataType) -> Backtrace {
        match self.prefilter(schema) {
            Some(filter) => {
                let candidates: Vec<Row> = rows
                    .iter()
                    .filter(|r| filter.eval_bool(&r.item))
                    .cloned()
                    .collect();
                self.match_rows(&candidates)
            }
            None => self.match_rows(rows),
        }
    }
}

/// Builds a predicate for one pattern branch if it is a pure child chain
/// over scalar-reachable paths (no collection crossing, no descendant
/// edges) whose occurrence boxes require at least one occurrence.
fn branch_filter(node: &PatternNode, schema: &DataType, prefix: &Path) -> Option<Expr> {
    if node.edge == EdgeKind::Descendant || node.position.is_some() {
        return None;
    }
    if let Some((min, _)) = node.occurrences {
        if min == 0 {
            // The branch may match with zero occurrences — nothing can be
            // required of the data.
            return None;
        }
    }
    let path = prefix.child(Step::attr(&node.attr));
    // The path must resolve without crossing a collection: a collection
    // would require existential quantification the expression language
    // does not have.
    match schema.resolve(&path) {
        Some(DataType::Bag(_) | DataType::Set(_)) => return None,
        Some(_) => {}
        None => return None,
    }
    // Crossing check: every prefix of the path must be an item type.
    for cut in 1..path.len() {
        let p = Path::new(path.steps()[..cut].iter().cloned());
        if matches!(
            schema.resolve(&p),
            Some(DataType::Bag(_) | DataType::Set(_)) | None
        ) {
            return None;
        }
    }
    let mut conjuncts = Vec::new();
    if let Some(pred) = &node.predicate {
        conjuncts.push(pred_to_expr(pred, &path)?);
    }
    for child in &node.children {
        // A failed child just weakens the filter; the branch stays
        // conservative without it.
        if let Some(e) = branch_filter(child, schema, &path) {
            conjuncts.push(e);
        }
    }
    if conjuncts.is_empty() {
        // Require the attribute to exist at all.
        conjuncts.push(Expr::IsNull(Box::new(Expr::Col(path))).not());
    }
    conjuncts.into_iter().reduce(Expr::and)
}

fn pred_to_expr(pred: &ValuePred, path: &Path) -> Option<Expr> {
    let col = Expr::Col(path.clone());
    Some(match pred {
        ValuePred::Eq(v) => col.eq(Expr::Lit(v.clone())),
        ValuePred::Ne(v) => col.ne(Expr::Lit(v.clone())),
        ValuePred::Lt(v) => col.lt(Expr::Lit(v.clone())),
        ValuePred::Le(v) => col.le(Expr::Lit(v.clone())),
        ValuePred::Gt(v) => col.gt(Expr::Lit(v.clone())),
        ValuePred::Ge(v) => col.ge(Expr::Lit(v.clone())),
        ValuePred::Contains(s) => col.contains(Expr::lit(s.as_str())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::{DataItem, Value};

    fn schema() -> DataType {
        DataType::item([
            (
                "user",
                DataType::item([("id_str", DataType::Str), ("name", DataType::Str)]),
            ),
            ("n", DataType::Int),
            (
                "tweets",
                DataType::bag(DataType::item([("text", DataType::Str)])),
            ),
        ])
    }

    fn rows() -> Vec<Row> {
        let item = |id: &str, n: i64| {
            DataItem::from_fields([
                (
                    "user",
                    Value::Item(DataItem::from_fields([
                        ("id_str", Value::str(id)),
                        ("name", Value::str("X")),
                    ])),
                ),
                ("n", Value::Int(n)),
                (
                    "tweets",
                    Value::Bag(vec![Value::Item(DataItem::from_fields([(
                        "text",
                        Value::str("Hello World"),
                    )]))]),
                ),
            ])
        };
        vec![
            Row {
                id: 1,
                item: item("lp", 3),
            },
            Row {
                id: 2,
                item: item("jm", 9),
            },
        ]
    }

    #[test]
    fn scalar_child_chain_becomes_filter() {
        let p = TreePattern::parse(r#"user/id_str="lp", n>2"#).unwrap();
        let f = p.prefilter(&schema()).expect("expressible");
        assert!(f.eval_bool(&rows()[0].item));
        assert!(!f.eval_bool(&rows()[1].item));
    }

    #[test]
    fn collection_branch_skipped_descendant_skipped() {
        // tweets/text crosses a bag; //id_str is a descendant — both
        // inexpressible. The n-branch still contributes.
        let p = TreePattern::parse(r#"//id_str="lp", tweets/text~"Hello", n<5"#).unwrap();
        let f = p.prefilter(&schema()).expect("n branch expressible");
        assert!(f.eval_bool(&rows()[0].item));
        assert!(!f.eval_bool(&rows()[1].item)); // n = 9
    }

    #[test]
    fn fully_inexpressible_returns_none() {
        let p = TreePattern::parse(r#"//id_str="lp""#).unwrap();
        assert!(p.prefilter(&schema()).is_none());
    }

    #[test]
    fn prefiltered_match_equals_plain_match() {
        let patterns = [
            r#"user/id_str="lp", tweets/text="Hello World"{1,9}"#,
            r#"n>=4"#,
            r#"//id_str="jm""#,
            r#"user(id_str="lp", name="X")"#,
        ];
        for src in patterns {
            let p = TreePattern::parse(src).unwrap();
            let plain = p.match_rows(&rows());
            let pre = p.match_rows_prefiltered(&rows(), &schema());
            assert_eq!(plain.entries.len(), pre.entries.len(), "{src}");
            for (a, b) in plain.entries.iter().zip(&pre.entries) {
                assert_eq!(a.0, b.0, "{src}");
                assert_eq!(a.1, b.1, "{src}");
            }
        }
    }

    #[test]
    fn predicate_free_branch_requires_presence() {
        let p = TreePattern::parse("n").unwrap();
        let f = p.prefilter(&schema()).unwrap();
        assert!(f.eval_bool(&rows()[0].item));
        let no_n = DataItem::from_fields([("user", Value::Null)]);
        assert!(!f.eval_bool(&no_n));
    }

    #[test]
    fn zero_min_occurrence_inexpressible() {
        let p = TreePattern::parse("n{0,5}").unwrap();
        assert!(p.prefilter(&schema()).is_none());
    }
}
