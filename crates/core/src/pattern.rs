//! Tree-pattern provenance queries (Sec. 6.1, Fig. 4).
//!
//! A tree-pattern addresses combinations of nested items that are related
//! by structure: nodes name attributes, edges require parent-child or
//! ancestor-descendant relationships, and nodes may carry value predicates
//! and occurrence-count boxes (`[min,max]`, e.g. "the value must occur
//! twice in the nested collection").
//!
//! Matching a pattern against the provenance-annotated result dataset
//! yields the initial backtracing structure `B`: one backtracing tree per
//! matching top-level item, holding the concrete matched paths (all marked
//! *contributing*). Matching is partition-parallel, mirroring the paper's
//! distributed tree-pattern matching.

use pebble_dataflow::Row;
use pebble_nested::{Path, Step, Value};

use crate::btree::{Backtrace, ProvTree};

/// Value predicate on a pattern node.
#[derive(Clone, Debug, PartialEq)]
pub enum ValuePred {
    /// Equal to a constant.
    Eq(Value),
    /// Not equal to a constant.
    Ne(Value),
    /// Less than.
    Lt(Value),
    /// Less than or equal.
    Le(Value),
    /// Greater than.
    Gt(Value),
    /// Greater than or equal.
    Ge(Value),
    /// String containment.
    Contains(String),
}

impl ValuePred {
    fn eval(&self, v: &Value) -> bool {
        match self {
            ValuePred::Eq(c) => v == c,
            ValuePred::Ne(c) => v != c,
            ValuePred::Lt(c) => v < c,
            ValuePred::Le(c) => v <= c,
            ValuePred::Gt(c) => v > c,
            ValuePred::Ge(c) => v >= c,
            ValuePred::Contains(s) => v.as_str().is_some_and(|h| h.contains(s.as_str())),
        }
    }
}

/// Edge type between a pattern node and its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Parent-child: the attribute must sit directly below the context
    /// (elements of a collection-valued context count as direct).
    Child,
    /// Ancestor-descendant: the attribute may occur anywhere below.
    Descendant,
}

/// A node of a tree-pattern.
#[derive(Clone, Debug)]
pub struct PatternNode {
    /// Attribute name this node matches.
    pub attr: String,
    /// Optional positional constraint: the target must be the element at
    /// this 1-based position of the collection stored at `attr`
    /// (`tweets[2]` addresses the second nested tweet).
    pub position: Option<u32>,
    /// Edge to the parent.
    pub edge: EdgeKind,
    /// Optional value predicate.
    pub predicate: Option<ValuePred>,
    /// Optional `[min,max]` occurrence-count constraint: the number of
    /// satisfying targets must fall in this range for the node to match.
    pub occurrences: Option<(u32, u32)>,
    /// Child pattern nodes (conjunctive).
    pub children: Vec<PatternNode>,
}

impl PatternNode {
    /// Child-edge node on attribute `attr`.
    pub fn attr(attr: impl Into<String>) -> Self {
        PatternNode {
            attr: attr.into(),
            position: None,
            edge: EdgeKind::Child,
            predicate: None,
            occurrences: None,
            children: Vec::new(),
        }
    }

    /// Restricts the node to the element at a 1-based position of the
    /// collection stored at the attribute.
    pub fn at(mut self, position: u32) -> Self {
        self.position = Some(position);
        self
    }

    /// Descendant-edge node on attribute `attr`.
    pub fn descendant(attr: impl Into<String>) -> Self {
        PatternNode {
            edge: EdgeKind::Descendant,
            ..PatternNode::attr(attr)
        }
    }

    /// Requires equality with a constant.
    pub fn eq(mut self, v: impl Into<Value>) -> Self {
        self.predicate = Some(ValuePred::Eq(v.into()));
        self
    }

    /// Requires string containment.
    pub fn contains(mut self, s: impl Into<String>) -> Self {
        self.predicate = Some(ValuePred::Contains(s.into()));
        self
    }

    /// Attaches a predicate.
    pub fn pred(mut self, p: ValuePred) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Requires the number of satisfying occurrences to lie in
    /// `[min, max]` (the black box of Fig. 4).
    pub fn occurs(mut self, min: u32, max: u32) -> Self {
        self.occurrences = Some((min, max));
        self
    }

    /// Adds a child pattern node.
    pub fn child(mut self, node: PatternNode) -> Self {
        self.children.push(node);
        self
    }

    /// Matches this node against a context value. Returns the matched
    /// paths (the node's own matched paths plus those of its children), or
    /// `None` when the node does not match.
    fn match_against(&self, context: &Value, ctx_path: &Path) -> Option<Vec<Path>> {
        let targets = self.targets(context, ctx_path);
        // A target satisfies the node if its predicate holds and all child
        // patterns match below it.
        let mut satisfying: Vec<(Path, Vec<Path>)> = Vec::new();
        for (path, value) in targets {
            if let Some(p) = &self.predicate {
                if !p.eval(value) {
                    continue;
                }
            }
            let mut sub_paths = Vec::new();
            let mut ok = true;
            for child in &self.children {
                match child.match_against(value, &path) {
                    Some(ps) => sub_paths.extend(ps),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                satisfying.push((path, sub_paths));
            }
        }
        match self.occurrences {
            Some((min, max)) => {
                let n = satisfying.len() as u32;
                if n < min || n > max {
                    return None;
                }
            }
            None => {
                if satisfying.is_empty() {
                    return None;
                }
            }
        }
        let mut out = Vec::new();
        for (path, subs) in satisfying {
            out.push(path);
            out.extend(subs);
        }
        Some(out)
    }

    /// Candidate `(path, value)` targets of this node below `context`.
    fn targets<'a>(&self, context: &'a Value, ctx_path: &Path) -> Vec<(Path, &'a Value)> {
        let mut out = Vec::new();
        match self.edge {
            EdgeKind::Child => collect_child_targets(&self.attr, context, ctx_path, &mut out),
            EdgeKind::Descendant => {
                collect_descendant_targets(&self.attr, context, ctx_path, &mut out)
            }
        }
        if let Some(pos) = self.position {
            // Narrow each attribute target to the element at `pos` of its
            // collection value.
            out = out
                .into_iter()
                .filter_map(|(path, value)| {
                    let elements = value.as_collection()?;
                    let element = elements.get((pos as usize).checked_sub(1)?)?;
                    Some((path.child(Step::Pos(pos)), element))
                })
                .collect();
        }
        out
    }
}

fn collect_child_targets<'a>(
    attr: &str,
    context: &'a Value,
    ctx_path: &Path,
    out: &mut Vec<(Path, &'a Value)>,
) {
    match context {
        Value::Item(d) => {
            if let Some(v) = d.get(attr) {
                out.push((ctx_path.child(Step::attr(attr)), v));
            }
        }
        // Elements of a collection-valued context count as direct
        // children, with their positions recorded.
        Value::Bag(vs) | Value::Set(vs) => {
            for (i, v) in vs.iter().enumerate() {
                let elem_path = ctx_path.child(Step::Pos(i as u32 + 1));
                if let Value::Item(d) = v {
                    if let Some(val) = d.get(attr) {
                        out.push((elem_path.child(Step::attr(attr)), val));
                    }
                }
            }
        }
        _ => {}
    }
}

fn collect_descendant_targets<'a>(
    attr: &str,
    context: &'a Value,
    ctx_path: &Path,
    out: &mut Vec<(Path, &'a Value)>,
) {
    match context {
        Value::Item(d) => {
            for (name, v) in d.fields() {
                let p = ctx_path.child(Step::attr(name));
                if name == attr {
                    out.push((p.clone(), v));
                }
                collect_descendant_targets(attr, v, &p, out);
            }
        }
        Value::Bag(vs) | Value::Set(vs) => {
            for (i, v) in vs.iter().enumerate() {
                let p = ctx_path.child(Step::Pos(i as u32 + 1));
                collect_descendant_targets(attr, v, &p, out);
            }
        }
        _ => {}
    }
}

/// A tree-pattern: conjunctive pattern nodes below the implicit root (the
/// top-level data item).
#[derive(Clone, Debug, Default)]
pub struct TreePattern {
    /// Pattern nodes below the root.
    pub children: Vec<PatternNode>,
}

impl TreePattern {
    /// Empty pattern (matches every item).
    pub fn root() -> Self {
        Self::default()
    }

    /// Adds a pattern node below the root.
    pub fn node(mut self, node: PatternNode) -> Self {
        self.children.push(node);
        self
    }

    /// Matches one item; returns the backtracing tree of matched paths.
    pub fn match_item(&self, item: &pebble_nested::DataItem) -> Option<ProvTree> {
        let context = Value::Item(item.clone());
        let mut paths = Vec::new();
        for node in &self.children {
            paths.extend(node.match_against(&context, &Path::root())?);
        }
        let mut tree = ProvTree::new();
        for p in &paths {
            tree.insert(p, true);
        }
        Some(tree)
    }

    /// Matches the pattern against a provenance-annotated dataset,
    /// producing the initial backtracing structure. Partition-parallel.
    pub fn match_rows(&self, rows: &[Row]) -> Backtrace {
        let chunk = rows.len().div_ceil(8).max(1);
        let chunks: Vec<&[Row]> = rows.chunks(chunk).collect();
        let results: Vec<Vec<(u64, ProvTree)>> = if chunks.len() <= 1 {
            chunks.iter().map(|c| self.match_chunk(c)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|c| scope.spawn(move || self.match_chunk(c)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        let mut b = Backtrace::new();
        for r in results {
            b.entries.extend(r);
        }
        b
    }

    fn match_chunk(&self, rows: &[Row]) -> Vec<(u64, ProvTree)> {
        rows.iter()
            .filter_map(|row| self.match_item(&row.item).map(|t| (row.id, t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::DataItem;

    /// The result item 102 of Tab. 2.
    fn item_102() -> DataItem {
        let tweet = |text: &str| Value::Item(DataItem::from_fields([("text", Value::str(text))]));
        DataItem::from_fields([
            (
                "user",
                Value::Item(DataItem::from_fields([
                    ("id_str", Value::str("lp")),
                    ("name", Value::str("Lisa Paul")),
                ])),
            ),
            (
                "tweets",
                Value::Bag(vec![
                    tweet("Hello @ls @jm @ls"),
                    tweet("Hello World"),
                    tweet("Hello World"),
                    tweet("Hello @lp"),
                ]),
            ),
        ])
    }

    /// The tree-pattern of Fig. 4.
    fn fig4_pattern() -> TreePattern {
        TreePattern::root()
            .node(PatternNode::descendant("id_str").eq("lp"))
            .node(
                PatternNode::attr("tweets")
                    .child(PatternNode::attr("text").eq("Hello World").occurs(2, 2)),
            )
    }

    #[test]
    fn fig4_matches_item_102() {
        let tree = fig4_pattern().match_item(&item_102()).unwrap();
        // Expected tree = right tree of Fig. 2.
        assert!(tree.contains(&Path::parse("user.id_str")));
        assert!(tree.contains(&Path::parse("tweets[2].text")));
        assert!(tree.contains(&Path::parse("tweets[3].text")));
        assert!(!tree.contains(&Path::parse("tweets[1]")));
        assert!(!tree.contains(&Path::parse("user.name"))); // not pertinent
        assert!(tree.nodes().iter().all(|(_, n)| n.contributing));
    }

    #[test]
    fn occurrence_bounds_enforced() {
        // Exactly 3 occurrences required: item 102 has only 2.
        let p = TreePattern::root().node(
            PatternNode::attr("tweets")
                .child(PatternNode::attr("text").eq("Hello World").occurs(3, 3)),
        );
        assert!(p.match_item(&item_102()).is_none());
        // At most 2 — matches.
        let p = TreePattern::root().node(
            PatternNode::attr("tweets")
                .child(PatternNode::attr("text").eq("Hello World").occurs(1, 2)),
        );
        assert!(p.match_item(&item_102()).is_some());
    }

    #[test]
    fn descendant_searches_all_levels() {
        let p = TreePattern::root().node(PatternNode::descendant("text").eq("Hello @lp"));
        let t = p.match_item(&item_102()).unwrap();
        assert!(t.contains(&Path::parse("tweets[4].text")));
    }

    #[test]
    fn child_edge_does_not_descend() {
        // id_str is nested under user, so a child edge from the root fails.
        let p = TreePattern::root().node(PatternNode::attr("id_str").eq("lp"));
        assert!(p.match_item(&item_102()).is_none());
    }

    #[test]
    fn predicates_variants() {
        let d = DataItem::from_fields([("n", Value::Int(5)), ("s", Value::str("hello"))]);
        let m = |node: PatternNode| TreePattern::root().node(node).match_item(&d).is_some();
        assert!(m(PatternNode::attr("n").pred(ValuePred::Gt(Value::Int(4)))));
        assert!(!m(PatternNode::attr("n").pred(ValuePred::Lt(Value::Int(5)))));
        assert!(m(PatternNode::attr("n").pred(ValuePred::Ge(Value::Int(5)))));
        assert!(m(PatternNode::attr("n").pred(ValuePred::Le(Value::Int(5)))));
        assert!(m(PatternNode::attr("n").pred(ValuePred::Ne(Value::Int(4)))));
        assert!(m(PatternNode::attr("s").contains("ell")));
        assert!(!m(PatternNode::attr("s").contains("zzz")));
    }

    #[test]
    fn match_rows_builds_backtrace() {
        let rows = vec![
            Row {
                id: 101,
                item: DataItem::from_fields([(
                    "user",
                    Value::Item(DataItem::from_fields([("id_str", Value::str("ls"))])),
                )]),
            },
            Row {
                id: 102,
                item: item_102(),
            },
        ];
        let b = fig4_pattern().match_rows(&rows);
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].0, 102);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let b = TreePattern::root().match_rows(&[Row {
            id: 1,
            item: item_102(),
        }]);
        assert_eq!(b.entries.len(), 1);
        assert!(b.entries[0].1.is_empty());
    }

    #[test]
    fn conjunctive_children_all_required() {
        let p = TreePattern::root().node(
            PatternNode::attr("user")
                .child(PatternNode::attr("id_str").eq("lp"))
                .child(PatternNode::attr("name").eq("Wrong Name")),
        );
        assert!(p.match_item(&item_102()).is_none());
    }
}
