//! Textual syntax for tree-pattern provenance questions — the
//! user-facing front-end the paper names as future work.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! pattern  := branch (',' branch)*
//! branch   := axis? node (axis node)*
//! axis     := '/'            parent-child (default for the first node)
//!           | '//'           ancestor-descendant
//! node     := ident position? pred? count? group?
//! position := '[' int ']'    1-based element of the node's collection
//! pred     := ('=' | '!=' | '<' | '<=' | '>' | '>=') literal
//!           | '~' string     (string containment)
//! count    := '{' int ',' int '}'
//! group    := '(' pattern ')'
//! literal  := string | integer | float | 'true' | 'false'
//! ```
//!
//! The provenance question of Fig. 4 reads:
//!
//! ```text
//! //id_str = "lp", tweets / text = "Hello World" {2,2}
//! ```

use std::fmt;

use pebble_nested::Value;

use crate::pattern::{EdgeKind, PatternNode, TreePattern, ValuePred};

/// Error raised on malformed pattern syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern syntax error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for PatternParseError {}

/// Parses the textual pattern syntax into a [`TreePattern`].
pub fn parse(input: &str) -> Result<TreePattern, PatternParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let children = p.pattern()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(TreePattern { children })
}

impl TreePattern {
    /// Parses the textual query syntax (see [`crate::pattern_parse`]).
    pub fn parse(input: &str) -> Result<TreePattern, PatternParseError> {
        parse(input)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> PatternParseError {
        PatternParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn pattern(&mut self) -> Result<Vec<PatternNode>, PatternParseError> {
        let mut out = vec![self.branch()?];
        loop {
            self.skip_ws();
            if self.eat(b',') {
                out.push(self.branch()?);
            } else {
                return Ok(out);
            }
        }
    }

    /// A branch is a chain of nodes: each subsequent node becomes the sole
    /// child of the previous one.
    fn branch(&mut self) -> Result<PatternNode, PatternParseError> {
        let mut chain = vec![self.node()?];
        loop {
            self.skip_ws();
            if matches!(self.peek(), Some(b'/')) {
                chain.push(self.node()?);
            } else {
                break;
            }
        }
        // Fold the chain right-to-left into nested children. The chain
        // holds at least the node parsed before the loop; guard anyway so
        // the parser cannot panic on any input.
        let Some(mut node) = chain.pop() else {
            return Err(self.err("empty step chain"));
        };
        while let Some(mut parent) = chain.pop() {
            parent.children.push(node);
            node = parent;
        }
        Ok(node)
    }

    fn node(&mut self) -> Result<PatternNode, PatternParseError> {
        self.skip_ws();
        let edge = if self.eat(b'/') {
            if self.eat(b'/') {
                EdgeKind::Descendant
            } else {
                EdgeKind::Child
            }
        } else {
            EdgeKind::Child
        };
        self.skip_ws();
        let attr = self.ident()?;
        let mut node = PatternNode {
            attr,
            position: None,
            edge,
            predicate: None,
            occurrences: None,
            children: Vec::new(),
        };
        self.skip_ws();
        if self.eat(b'[') {
            let pos = self.integer()?;
            if pos < 1 {
                return Err(self.err("positions are 1-based"));
            }
            node.position = Some(pos as u32);
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.err("expected `]` closing position"));
            }
        }
        self.skip_ws();
        if let Some(pred) = self.predicate()? {
            node.predicate = Some(pred);
        }
        self.skip_ws();
        if self.eat(b'{') {
            let min = self.integer()? as u32;
            self.skip_ws();
            if !self.eat(b',') {
                return Err(self.err("expected `,` in count box"));
            }
            let max = self.integer()? as u32;
            self.skip_ws();
            if !self.eat(b'}') {
                return Err(self.err("expected `}` closing count box"));
            }
            if min > max {
                return Err(self.err("count box min exceeds max"));
            }
            node.occurrences = Some((min, max));
        }
        self.skip_ws();
        if self.eat(b'(') {
            node.children = self.pattern()?;
            self.skip_ws();
            if !self.eat(b')') {
                return Err(self.err("expected `)` closing group"));
            }
        }
        Ok(node)
    }

    fn ident(&mut self) -> Result<String, PatternParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected attribute name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII bytes in attribute name"))?
            .to_string())
    }

    fn predicate(&mut self) -> Result<Option<ValuePred>, PatternParseError> {
        self.skip_ws();
        let op = match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                "="
            }
            Some(b'~') => {
                self.pos += 1;
                "~"
            }
            Some(b'!') => {
                self.pos += 1;
                if !self.eat(b'=') {
                    return Err(self.err("expected `=` after `!`"));
                }
                "!="
            }
            Some(b'<') => {
                self.pos += 1;
                if self.eat(b'=') {
                    "<="
                } else {
                    "<"
                }
            }
            Some(b'>') => {
                self.pos += 1;
                if self.eat(b'=') {
                    ">="
                } else {
                    ">"
                }
            }
            _ => return Ok(None),
        };
        let value = self.literal()?;
        Ok(Some(match op {
            "=" => ValuePred::Eq(value),
            "!=" => ValuePred::Ne(value),
            "<" => ValuePred::Lt(value),
            "<=" => ValuePred::Le(value),
            ">" => ValuePred::Gt(value),
            ">=" => ValuePred::Ge(value),
            "~" => match value {
                Value::Str(s) => ValuePred::Contains(s.to_string()),
                _ => return Err(self.err("`~` requires a string literal")),
            },
            _ => unreachable!(),
        }))
    }

    fn literal(&mut self) -> Result<Value, PatternParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'"' {
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?
                            .to_string();
                        self.pos += 1;
                        return Ok(Value::Str(s.into()));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                let mut is_float = false;
                while let Some(b) = self.peek() {
                    match b {
                        b'0'..=b'9' => self.pos += 1,
                        b'.' if !is_float => {
                            is_float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("non-ASCII bytes in number literal"))?;
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Double)
                        .map_err(|_| self.err("invalid float literal"))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| self.err("invalid integer literal"))
                }
            }
            _ => Err(self.err("expected literal")),
        }
    }

    fn integer(&mut self) -> Result<i64, PatternParseError> {
        self.skip_ws();
        match self.literal()? {
            Value::Int(i) if i >= 0 => Ok(i),
            _ => Err(self.err("expected non-negative integer")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_nested::DataItem;

    #[test]
    fn fig4_query_parses() {
        let p = parse(r#"//id_str = "lp", tweets / text = "Hello World" {2,2}"#).unwrap();
        assert_eq!(p.children.len(), 2);
        let id = &p.children[0];
        assert_eq!(id.attr, "id_str");
        assert_eq!(id.edge, EdgeKind::Descendant);
        assert_eq!(id.predicate, Some(ValuePred::Eq(Value::str("lp"))));
        let tweets = &p.children[1];
        assert_eq!(tweets.attr, "tweets");
        assert_eq!(tweets.edge, EdgeKind::Child);
        let text = &tweets.children[0];
        assert_eq!(text.attr, "text");
        assert_eq!(text.occurrences, Some((2, 2)));
    }

    #[test]
    fn parsed_equals_builder_semantics() {
        // Same match behaviour as the hand-built Fig. 4 pattern.
        let parsed = parse(r#"//id_str="lp", tweets/text="Hello World"{2,2}"#).unwrap();
        let item = DataItem::from_fields([
            (
                "user",
                Value::Item(DataItem::from_fields([("id_str", Value::str("lp"))])),
            ),
            (
                "tweets",
                Value::Bag(vec![
                    Value::Item(DataItem::from_fields([("text", Value::str("Hello World"))])),
                    Value::Item(DataItem::from_fields([("text", Value::str("Hello World"))])),
                ]),
            ),
        ]);
        assert!(parsed.match_item(&item).is_some());
    }

    #[test]
    fn group_syntax() {
        let p = parse(r#"user(id_str="lp", name~"Paul")"#).unwrap();
        let user = &p.children[0];
        assert_eq!(user.children.len(), 2);
        assert_eq!(
            user.children[1].predicate,
            Some(ValuePred::Contains("Paul".into()))
        );
    }

    #[test]
    fn comparison_operators() {
        for (src, expected) in [
            ("n>3", ValuePred::Gt(Value::Int(3))),
            ("n>=3", ValuePred::Ge(Value::Int(3))),
            ("n<3", ValuePred::Lt(Value::Int(3))),
            ("n<=3", ValuePred::Le(Value::Int(3))),
            ("n!=3", ValuePred::Ne(Value::Int(3))),
            ("n=2.5", ValuePred::Eq(Value::Double(2.5))),
            ("n=-7", ValuePred::Eq(Value::Int(-7))),
            ("b=true", ValuePred::Eq(Value::Bool(true))),
        ] {
            let p = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(p.children[0].predicate, Some(expected), "{src}");
        }
    }

    #[test]
    fn chain_folds_into_children() {
        let p = parse("a/b//c").unwrap();
        let a = &p.children[0];
        assert_eq!(a.attr, "a");
        let b = &a.children[0];
        assert_eq!(b.attr, "b");
        let c = &b.children[0];
        assert_eq!(c.attr, "c");
        assert_eq!(c.edge, EdgeKind::Descendant);
    }

    #[test]
    fn errors_reported() {
        for bad in [
            "",
            "a{2}",
            "a{3,2}",
            "a=`x`",
            "a~3",
            "a(b",
            "a=\"unterminated",
            "a=",
            "a!b",
            "a,,b",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let tight = parse(r#"//id_str="lp""#).unwrap();
        let loose = parse(r#"  //  id_str   =   "lp"  "#).unwrap();
        assert_eq!(tight.children[0].attr, loose.children[0].attr);
        assert_eq!(tight.children[0].predicate, loose.children[0].predicate);
    }
}

#[cfg(test)]
mod position_tests {
    use super::*;
    use pebble_nested::DataItem;

    fn item() -> DataItem {
        DataItem::from_fields([(
            "tweets",
            Value::Bag(vec![
                Value::Item(DataItem::from_fields([("text", Value::str("first"))])),
                Value::Item(DataItem::from_fields([("text", Value::str("second"))])),
            ]),
        )])
    }

    #[test]
    fn positional_step_parses_and_matches() {
        let p = parse(r#"tweets[2]/text="second""#).unwrap();
        assert_eq!(p.children[0].position, Some(2));
        let tree = p.match_item(&item()).expect("matches");
        assert!(tree.contains(&pebble_nested::Path::parse("tweets[2].text")));
        assert!(!tree.contains(&pebble_nested::Path::parse("tweets[1]")));
        // Position 2 holds "second", not "first".
        let wrong = parse(r#"tweets[2]/text="first""#).unwrap();
        assert!(wrong.match_item(&item()).is_none());
        // Out-of-range position never matches.
        let oob = parse(r#"tweets[9]/text="first""#).unwrap();
        assert!(oob.match_item(&item()).is_none());
    }

    #[test]
    fn positional_errors() {
        assert!(parse("tweets[0]/text").is_err());
        assert!(parse("tweets[1").is_err());
        assert!(parse("tweets[-1]").is_err());
    }

    #[test]
    fn position_on_scalar_never_matches() {
        let p = parse(r#"tweets[1]/text[1]"#).unwrap();
        // text is a string, not a collection: the inner position fails.
        assert!(p.match_item(&item()).is_none());
    }
}
