//! Semiring provenance polynomials (N[X] how-provenance) over captured
//! association tables, with a probability-semiring evaluation hook.
//!
//! Following the ProvSQL line of work, each output *tuple* is annotated
//! with a polynomial over source-tuple variables: alternative derivations
//! add, joint derivations multiply. Pebble's capture assigns every item a
//! distinct identifier, so a single sink identifier has exactly one
//! derivation tree; genuine sums arise at the **value level** — the
//! polynomial of output row `i` is the sum over all sink rows carrying an
//! item equal to `rows[i].item` (K-relation semantics: the annotation of
//! a tuple adds up its derivations). Within one derivation:
//!
//! * `read` introduces the variable `x<read_op>_<dataset index>`;
//! * `filter`/`select`/`map` are identity in the identifier algebra
//!   (an opaque `map` still records its ⟨id^i, id^o⟩ association);
//! * `join` multiplies both sides, `union` passes the present side;
//! * `flatten` passes the collection owner (pure N[X] has no position
//!   marker — the structural position lives in Pebble's own tables);
//! * aggregation multiplies all group members (joint derivation).
//!
//! Polynomials are kept **canonically expanded**: a sorted monomial map
//! `vars^exponents -> coefficient`, rendered deterministically. All
//! quantities in an answer are identifier-free (variables name the read
//! operator and the dataset position), so answers are byte-identical
//! across partition/worker/columnar/spill execution shapes.
//!
//! The probability hook evaluates the polynomial in the probability
//! semiring with **exact rational arithmetic**: each variable gets the
//! deterministic probability `n_v/16` with `n_v = 1 + (5·read + 3·index
//! mod 15)`, worlds are enumerated exhaustively (capped at
//! [`MAX_PROB_VARS`] variables), and the result is a reduced fraction —
//! no floating point, so the naive oracle reference (which evaluates the
//! association-table *circuit* per world instead of the expanded
//! polynomial) must agree to the last digit.

use std::collections::BTreeMap;

use pebble_dataflow::hash::FxHashMap;
use pebble_dataflow::{EngineError, ItemId, OpId, Result};

use crate::capture::{CapturedRun, ProvAssoc};

/// A source-tuple variable: the `read` operator and the dataset position.
pub type SemiringVar = (OpId, usize);

/// A monomial: variables with exponents, sorted by variable.
pub type Monomial = Vec<(SemiringVar, u32)>;

/// Ceiling on the monomials a polynomial may hold; construction past it
/// fails with [`poly_too_large`] instead of exhausting memory.
pub const MAX_MONOMIALS: usize = 4096;

/// Ceiling on the distinct variables a probability evaluation enumerates
/// (2^vars worlds).
pub const MAX_PROB_VARS: usize = 12;

/// Denominator of every variable probability (`n_v / 16`).
pub const PROB_DENOM: u64 = 16;

/// Shared error constructors — both the engine and the oracle reference
/// build their errors here so the `Display`s agree exactly.
pub fn semiring_parse_error(detail: &str) -> EngineError {
    EngineError::BacktraceError(format!("semiring query: {detail}"))
}

/// Error for an out-of-range output row index.
pub fn row_range_error(index: usize, rows: usize) -> EngineError {
    semiring_parse_error(&format!(
        "row index {index} out of range ({rows} output rows)"
    ))
}

/// Error for a polynomial exceeding [`MAX_MONOMIALS`].
pub fn poly_too_large() -> EngineError {
    semiring_parse_error(&format!("polynomial exceeds {MAX_MONOMIALS} monomials"))
}

/// Error for a probability query over too many variables.
pub fn too_many_vars(vars: usize) -> EngineError {
    semiring_parse_error(&format!(
        "probability over {vars} variables exceeds the {MAX_PROB_VARS}-variable limit"
    ))
}

/// The deterministic probability of a variable, as a numerator over
/// [`PROB_DENOM`]: `1 + (5·read + 3·index mod 15)`, i.e. never 0 or 1.
pub fn var_probability((read_op, index): SemiringVar) -> u64 {
    1 + (5 * u64::from(read_op) + 3 * index as u64) % 15
}

/// A canonically expanded polynomial in N[X].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Polynomial {
    /// Monomial → coefficient; the map order is the render order.
    pub terms: BTreeMap<Monomial, u64>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial::default()
    }

    /// The multiplicative unit (the empty monomial with coefficient 1).
    pub fn one() -> Polynomial {
        let mut terms = BTreeMap::new();
        terms.insert(Vec::new(), 1);
        Polynomial { terms }
    }

    /// A single variable.
    pub fn var(v: SemiringVar) -> Polynomial {
        let mut terms = BTreeMap::new();
        terms.insert(vec![(v, 1)], 1);
        Polynomial { terms }
    }

    /// Adds another polynomial in place.
    pub fn add(&mut self, other: &Polynomial) -> Result<()> {
        for (m, c) in &other.terms {
            *self.terms.entry(m.clone()).or_insert(0) += c;
        }
        if self.terms.len() > MAX_MONOMIALS {
            return Err(poly_too_large());
        }
        Ok(())
    }

    /// Multiplies by another polynomial, expanding monomial products.
    pub fn mul(&self, other: &Polynomial) -> Result<Polynomial> {
        let mut out = Polynomial::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let m = merge_monomials(ma, mb);
                *out.terms.entry(m).or_insert(0) += ca * cb;
                if out.terms.len() > MAX_MONOMIALS {
                    return Err(poly_too_large());
                }
            }
        }
        Ok(out)
    }

    /// Sum of coefficients — the derivation count (evaluation at all-1s).
    pub fn count(&self) -> u64 {
        self.terms.values().sum()
    }

    /// The distinct variables mentioned, ascending.
    pub fn variables(&self) -> Vec<SemiringVar> {
        let mut out: Vec<SemiringVar> = Vec::new();
        for m in self.terms.keys() {
            for &(v, _) in m {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Deterministic rendering: `3·x0_1·x3_4^2 + x0_2`, monomials in map
    /// order; the zero polynomial renders as `0`, the empty monomial
    /// contributes its bare coefficient.
    pub fn render(&self) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut parts = Vec::new();
        for (m, c) in &self.terms {
            let mut factors: Vec<String> = Vec::new();
            if *c != 1 || m.is_empty() {
                factors.push(c.to_string());
            }
            for ((read_op, index), exp) in m {
                if *exp == 1 {
                    factors.push(format!("x{read_op}_{index}"));
                } else {
                    factors.push(format!("x{read_op}_{index}^{exp}"));
                }
            }
            parts.push(factors.join("·"));
        }
        parts.join(" + ")
    }

    /// Is the polynomial non-zero in the given world (boolean semiring:
    /// some monomial has all its variables present)?
    pub fn true_in(&self, world: &[SemiringVar]) -> bool {
        self.terms
            .keys()
            .any(|m| m.iter().all(|(v, _)| world.contains(v)))
    }
}

/// Merges two sorted monomials, adding exponents.
fn merge_monomials(a: &Monomial, b: &Monomial) -> Monomial {
    let mut out: Monomial = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() || ib < b.len() {
        match (a.get(ia), b.get(ib)) {
            (Some(&(va, ea)), Some(&(vb, eb))) if va == vb => {
                out.push((va, ea + eb));
                ia += 1;
                ib += 1;
            }
            (Some(&(va, ea)), Some(&(vb, _))) if va < vb => {
                out.push((va, ea));
                ia += 1;
            }
            (Some(_), Some(&(vb, eb))) => {
                out.push((vb, eb));
                ib += 1;
            }
            (Some(&(va, ea)), None) => {
                out.push((va, ea));
                ia += 1;
            }
            (None, Some(&(vb, eb))) => {
                out.push((vb, eb));
                ib += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Computes the polynomial of output row `index` — the engine
/// implementation: a memoized bottom-up walk over per-operator
/// output-identifier indexes, summed across all sink rows whose item
/// equals the queried row's item.
pub fn polynomial_of(run: &CapturedRun, index: usize) -> Result<Polynomial> {
    let rows = run.output.rows.len();
    let target = run
        .output
        .rows
        .get(index)
        .ok_or_else(|| row_range_error(index, rows))?;
    let mut memo: FxHashMap<(OpId, ItemId), Polynomial> = FxHashMap::default();
    let mut out = Polynomial::zero();
    for row in &run.output.rows {
        if row.item == target.item {
            out.add(&id_polynomial(run, run.program.sink(), row.id, &mut memo)?)?;
        }
    }
    Ok(out)
}

/// The polynomial of one identifier at one operator.
fn id_polynomial(
    run: &CapturedRun,
    oid: OpId,
    id: ItemId,
    memo: &mut FxHashMap<(OpId, ItemId), Polynomial>,
) -> Result<Polynomial> {
    if let Some(p) = memo.get(&(oid, id)) {
        return Ok(p.clone());
    }
    let op = run.op(oid);
    let pred = |idx: usize| -> Result<OpId> {
        op.inputs.get(idx).and_then(|i| i.pred).ok_or_else(|| {
            EngineError::BacktraceError(format!("operator #{oid} input {idx} missing"))
        })
    };
    let missing = || {
        EngineError::BacktraceError(format!("identifier {id} not associated at operator #{oid}"))
    };
    let result = match &op.assoc {
        ProvAssoc::Read(ids) => {
            let index = ids.iter().position(|&i| i == id).ok_or_else(missing)?;
            Polynomial::var((oid, index))
        }
        ProvAssoc::Unary(v) => {
            let &(input, _) = v.iter().find(|&&(_, o)| o == id).ok_or_else(missing)?;
            id_polynomial(run, pred(0)?, input, memo)?
        }
        ProvAssoc::Binary(v) => {
            let &(l, r, _) = v.iter().find(|&&(_, _, o)| o == id).ok_or_else(missing)?;
            match (l, r) {
                (Some(l), Some(r)) => {
                    let pl = id_polynomial(run, pred(0)?, l, memo)?;
                    let pr = id_polynomial(run, pred(1)?, r, memo)?;
                    pl.mul(&pr)?
                }
                (Some(l), None) => id_polynomial(run, pred(0)?, l, memo)?,
                (None, Some(r)) => id_polynomial(run, pred(1)?, r, memo)?,
                (None, None) => return Err(missing()),
            }
        }
        ProvAssoc::Flatten(v) => {
            let &(input, _, _) = v.iter().find(|&&(_, _, o)| o == id).ok_or_else(missing)?;
            id_polynomial(run, pred(0)?, input, memo)?
        }
        ProvAssoc::Agg(v) => {
            let (members, _) = v.iter().find(|(_, o)| *o == id).ok_or_else(missing)?;
            let mut p = Polynomial::one();
            for &m in members {
                p = p.mul(&id_polynomial(run, pred(0)?, m, memo)?)?;
            }
            p
        }
    };
    memo.insert((oid, id), result.clone());
    Ok(result)
}

/// Evaluates a polynomial in the probability semiring by exhaustive world
/// enumeration with exact integer weights; returns the reduced fraction
/// rendered as `num/den` (or `0` / `1`).
pub fn probability(poly: &Polynomial) -> Result<String> {
    let vars = poly.variables();
    probability_by(&vars, |world| poly.true_in(world))
}

/// Shared world-enumeration core: sums the weights of the worlds where
/// `truth` holds. The engine passes the expanded polynomial's DNF test;
/// the oracle reference passes a per-world circuit evaluation over the
/// association tables — same worlds, same weights, different algorithms.
pub fn probability_by(
    vars: &[SemiringVar],
    mut truth: impl FnMut(&[SemiringVar]) -> bool,
) -> Result<String> {
    if vars.len() > MAX_PROB_VARS {
        return Err(too_many_vars(vars.len()));
    }
    let numerators: Vec<u64> = vars.iter().map(|&v| var_probability(v)).collect();
    let mut num: u64 = 0;
    let den: u64 = PROB_DENOM.pow(vars.len() as u32);
    let mut world: Vec<SemiringVar> = Vec::with_capacity(vars.len());
    for mask in 0u32..(1u32 << vars.len()) {
        world.clear();
        let mut weight: u64 = 1;
        for (bit, (&v, &n)) in vars.iter().zip(&numerators).enumerate() {
            if mask & (1 << bit) != 0 {
                world.push(v);
                weight *= n;
            } else {
                weight *= PROB_DENOM - n;
            }
        }
        if truth(&world) {
            num += weight;
        }
    }
    Ok(render_fraction(num, den))
}

/// Renders a reduced fraction: `0`, `1`, or `num/den`.
pub fn render_fraction(num: u64, den: u64) -> String {
    if num == 0 {
        return "0".to_string();
    }
    if num == den {
        return "1".to_string();
    }
    let g = gcd(num, den);
    format!("{}/{}", num / g, den / g)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Parses the row index of a `POLY|COUNT|PROB <row>` query. Shared with
/// the oracle reference so parse errors render identically.
pub fn parse_row_query<'q>(query: &'q str, verbs: &[&str]) -> Result<(&'q str, usize)> {
    let query = query.trim();
    let Some((verb, arg)) = query.split_once(char::is_whitespace) else {
        return Err(semiring_parse_error(&format!(
            "expected `{} <row>`, got `{query}`",
            verbs.join("|")
        )));
    };
    if !verbs.contains(&verb) {
        return Err(semiring_parse_error(&format!(
            "unknown verb `{verb}` (expected {})",
            verbs.join("|")
        )));
    }
    let index: usize = arg
        .trim()
        .parse()
        .map_err(|_| semiring_parse_error(&format!("bad row index `{}`", arg.trim())))?;
    Ok((verb, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::run_captured;
    use pebble_dataflow::{
        context::items_of, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, ProgramBuilder,
    };
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
                vec![("k", Value::str("a")), ("v", Value::Int(3))],
            ]),
        );
        c
    }

    #[test]
    fn polynomial_algebra_and_rendering() {
        let x = Polynomial::var((0, 0));
        let y = Polynomial::var((0, 1));
        let mut sum = x.clone();
        sum.add(&y).unwrap();
        let prod = sum.mul(&x).unwrap();
        assert_eq!(prod.render(), "x0_0·x0_1 + x0_0^2");
        assert_eq!(prod.count(), 2);
        assert_eq!(prod.variables(), vec![(0, 0), (0, 1)]);
        assert_eq!(Polynomial::zero().render(), "0");
        let mut two = Polynomial::one();
        two.add(&Polynomial::one()).unwrap();
        assert_eq!(two.render(), "2");
    }

    #[test]
    fn fraction_rendering_reduces() {
        assert_eq!(render_fraction(0, 16), "0");
        assert_eq!(render_fraction(16, 16), "1");
        assert_eq!(render_fraction(4, 16), "1/4");
        assert_eq!(render_fraction(6, 256), "3/128");
    }

    #[test]
    fn filter_keeps_source_variable() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let run = run_captured(&b.build(f), &ctx(), ExecConfig::with_partitions(2)).unwrap();
        let p = polynomial_of(&run, 0).unwrap();
        assert_eq!(p.render(), "x0_1");
        assert_eq!(p.count(), 1);
        // var (0,1): 1 + (5·0 + 3·1) % 15 = 4 → 4/16 = 1/4.
        assert_eq!(probability(&p).unwrap(), "1/4");
    }

    #[test]
    fn union_sums_equal_items() {
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let run = run_captured(&b.build(u), &ctx(), ExecConfig::with_partitions(1)).unwrap();
        // Every output item appears once per branch: its annotation is the
        // sum of both derivations (value-level K-relation semantics).
        let p = polynomial_of(&run, 0).unwrap();
        assert_eq!(p.render(), "x0_0 + x1_0");
        assert_eq!(p.count(), 2);
    }

    #[test]
    fn aggregation_multiplies_group_members() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::Sum, "v", "s")],
        );
        let run = run_captured(&b.build(g), &ctx(), ExecConfig::with_partitions(2)).unwrap();
        let a = run
            .output
            .rows
            .iter()
            .position(|row| row.item.get("k") == Some(&Value::str("a")))
            .unwrap();
        let p = polynomial_of(&run, a).unwrap();
        assert_eq!(p.render(), "x0_0·x0_2");
        // vars (0,0): n=1, (0,2): n=7 → (1/16)(7/16) = 7/256.
        assert_eq!(probability(&p).unwrap(), "7/256");
    }

    #[test]
    fn row_query_parsing_and_errors() {
        let verbs = ["POLY", "COUNT", "PROB"];
        assert_eq!(parse_row_query("POLY 3", &verbs).unwrap(), ("POLY", 3));
        assert_eq!(parse_row_query(" COUNT 0 ", &verbs).unwrap(), ("COUNT", 0));
        assert!(parse_row_query("POLY", &verbs).is_err());
        assert!(parse_row_query("FROB 1", &verbs).is_err());
        assert!(parse_row_query("PROB x", &verbs).is_err());
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let run = run_captured(&b.build(r), &ctx(), ExecConfig::with_partitions(1)).unwrap();
        let err = polynomial_of(&run, 9).unwrap_err();
        assert_eq!(
            err.to_string(),
            "backtrace failed: semiring query: row index 9 out of range (3 output rows)"
        );
    }

    #[test]
    fn probability_respects_var_limit() {
        let vars: Vec<SemiringVar> = (0..MAX_PROB_VARS + 1).map(|i| (0, i)).collect();
        assert!(probability_by(&vars, |_| true).is_err());
        // At the limit, all-true sums every world weight: probability 1.
        let vars: Vec<SemiringVar> = (0..4).map(|i| (0, i)).collect();
        assert_eq!(probability_by(&vars, |_| true).unwrap(), "1");
    }
}
