//! The *full* structural provenance model (Sec. 4.3, Defs. 4.9/4.10) —
//! reference semantics for one operator application.
//!
//! For every result item `r` of an operator `O`, the model produces
//! `ρ = ⟨r, I, M⟩`: the input items contributing to `r` with their
//! *concrete* accessed paths `A`, and the concrete manipulation mapping
//! `M`. This is the left-hand side of Fig. 3; the lightweight capture
//! (Sec. 5.1, [`crate::capture`]) is its compressed, schema-level
//! equivalent. Tests cross-validate the two representations.
//!
//! The model is executed by a deliberately simple, single-threaded
//! interpreter that is *independent* of the engine's executor, so it can
//! serve as an oracle.

use pebble_dataflow::op::{key_value, AggFunc, OpKind};
use pebble_dataflow::{EngineError, Result};
use pebble_nested::{DataItem, Path, Step, Value};

/// Reference `⟨i, I_j, A⟩` of Def. 4.10: one contributing input item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputRef {
    /// Which input dataset of the operator (0-based).
    pub input: usize,
    /// Position of the item in that input dataset (0-based).
    pub index: usize,
    /// Concrete accessed paths `A`; `None` encodes `⊥` (opaque `map`).
    pub accessed: Option<Vec<Path>>,
}

/// Result data item provenance `ρ = ⟨r, I, M⟩` (Def. 4.9).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemProvenance {
    /// The result item `r`.
    pub item: DataItem,
    /// Input provenance `I`.
    pub inputs: Vec<InputRef>,
    /// Concrete manipulation mapping `M`; `None` encodes `⊥`.
    pub manipulations: Option<Vec<(Path, Path)>>,
}

/// Applies one operator to its input datasets under the full provenance
/// model, returning the result provenance `R` (one entry per result item,
/// in result order).
pub fn apply(kind: &OpKind, inputs: &[&[DataItem]]) -> Result<Vec<ItemProvenance>> {
    match kind {
        OpKind::Read { .. } => Err(EngineError::InvalidPlan(
            "read takes no inputs; apply is for transforming operators".into(),
        )),
        OpKind::Filter { predicate } => {
            let accessed = predicate.accessed_paths();
            Ok(inputs[0]
                .iter()
                .enumerate()
                .filter(|(_, i)| predicate.eval_bool(i))
                .map(|(idx, i)| ItemProvenance {
                    item: i.clone(),
                    inputs: vec![InputRef {
                        input: 0,
                        index: idx,
                        accessed: Some(accessed.clone()),
                    }],
                    manipulations: Some(Vec::new()),
                })
                .collect())
        }
        OpKind::Select { exprs } => {
            let mut accessed = Vec::new();
            let mut manip = Vec::new();
            for ne in exprs {
                for p in ne.expr.accessed() {
                    if !accessed.contains(&p) {
                        accessed.push(p);
                    }
                }
                manip.extend(ne.expr.manipulated(&Path::attr(&ne.name)));
            }
            Ok(inputs[0]
                .iter()
                .enumerate()
                .map(|(idx, i)| {
                    let mut item = DataItem::new();
                    for ne in exprs {
                        item.push(ne.name.clone(), ne.expr.eval(i));
                    }
                    ItemProvenance {
                        item,
                        inputs: vec![InputRef {
                            input: 0,
                            index: idx,
                            accessed: Some(accessed.clone()),
                        }],
                        manipulations: Some(manip.clone()),
                    }
                })
                .collect())
        }
        OpKind::Map { udf } => Ok(inputs[0]
            .iter()
            .enumerate()
            .map(|(idx, i)| ItemProvenance {
                item: (udf.f)(i),
                inputs: vec![InputRef {
                    input: 0,
                    index: idx,
                    accessed: None, // ⊥
                }],
                manipulations: None, // ⊥
            })
            .collect()),
        OpKind::Join { keys } => {
            let left_paths: Vec<Path> = keys.iter().map(|(l, _)| l.clone()).collect();
            let right_paths: Vec<Path> = keys.iter().map(|(_, r)| r.clone()).collect();
            let mut out = Vec::new();
            for (li, i) in inputs[0].iter().enumerate() {
                for (ri, j) in inputs[1].iter().enumerate() {
                    let matches = keys.iter().all(|(lp, rp)| match (lp.eval(i), rp.eval(j)) {
                        (Some(a), Some(b)) => !a.is_null() && a == b,
                        _ => false,
                    });
                    if !matches {
                        continue;
                    }
                    let item = i.merged(j);
                    // M: every top-level attribute of both inputs maps to
                    // its (possibly renamed) result attribute.
                    let mut manip = Vec::new();
                    let mut taken: Vec<String> = i.names().map(str::to_string).collect();
                    for n in i.names() {
                        manip.push((Path::attr(n), Path::attr(n)));
                    }
                    for n in j.names() {
                        let mut name = n.to_string();
                        while taken.iter().any(|t| t == &name) {
                            name.push_str("_r");
                        }
                        taken.push(name.clone());
                        manip.push((Path::attr(n), Path::attr(name)));
                    }
                    out.push(ItemProvenance {
                        item,
                        inputs: vec![
                            InputRef {
                                input: 0,
                                index: li,
                                accessed: Some(left_paths.clone()),
                            },
                            InputRef {
                                input: 1,
                                index: ri,
                                accessed: Some(right_paths.clone()),
                            },
                        ],
                        manipulations: Some(manip),
                    });
                }
            }
            Ok(out)
        }
        OpKind::Union => {
            let mut out = Vec::new();
            for (input, data) in inputs.iter().enumerate() {
                for (idx, i) in data.iter().enumerate() {
                    out.push(ItemProvenance {
                        item: i.clone(),
                        inputs: vec![InputRef {
                            input,
                            index: idx,
                            accessed: Some(Vec::new()), // ∅
                        }],
                        manipulations: Some(Vec::new()), // ∅
                    });
                }
            }
            Ok(out)
        }
        OpKind::Flatten { col, new_attr } => {
            let mut out = Vec::new();
            for (idx, i) in inputs[0].iter().enumerate() {
                let Some(elements) = col.eval(i).and_then(Value::as_collection) else {
                    continue;
                };
                for (x, j) in elements.iter().enumerate() {
                    let concrete = col.child(Step::Pos(x as u32 + 1));
                    let mut item = i.clone();
                    item.push(new_attr.clone(), j.clone());
                    out.push(ItemProvenance {
                        item,
                        inputs: vec![InputRef {
                            input: 0,
                            index: idx,
                            accessed: Some(vec![concrete.clone()]),
                        }],
                        manipulations: Some(vec![(concrete, Path::attr(new_attr))]),
                    });
                }
            }
            Ok(out)
        }
        OpKind::GroupAggregate { keys, aggs } => {
            // First-seen-ordered grouping, as in the engine.
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (idx, i) in inputs[0].iter().enumerate() {
                let key: Vec<Value> = keys.iter().map(|k| key_value(i, &k.path)).collect();
                match order.iter().position(|k| *k == key) {
                    Some(g) => groups[g].push(idx),
                    None => {
                        order.push(key);
                        groups.push(vec![idx]);
                    }
                }
            }
            let mut accessed: Vec<Path> = Vec::new();
            for k in keys {
                if !accessed.contains(&k.path) {
                    accessed.push(k.path.clone());
                }
            }
            for a in aggs {
                if !a.input.is_empty() && !accessed.contains(&a.input) {
                    accessed.push(a.input.clone());
                }
            }
            let mut out = Vec::new();
            for (key, members) in order.iter().zip(&groups) {
                let rows: Vec<&DataItem> = members.iter().map(|&m| &inputs[0][m]).collect();
                let mut item = DataItem::new();
                for (gk, kv) in keys.iter().zip(key) {
                    item.push(gk.name.clone(), kv.clone());
                }
                for a in aggs {
                    item.push(a.output.clone(), eval_agg_model(a, &rows));
                }
                let mut manip = Vec::new();
                for gk in keys {
                    manip.push((gk.path.clone(), Path::attr(&gk.name)));
                }
                for a in aggs {
                    if a.input.is_empty() {
                        continue;
                    }
                    if a.func == AggFunc::CollectList {
                        // One mapping per member, at its nesting position.
                        for (pos, _) in members.iter().enumerate() {
                            manip.push((
                                a.input.clone(),
                                Path::attr(&a.output).child(Step::Pos(pos as u32 + 1)),
                            ));
                        }
                    } else {
                        manip.push((a.input.clone(), Path::attr(&a.output)));
                    }
                }
                out.push(ItemProvenance {
                    item,
                    inputs: members
                        .iter()
                        .map(|&m| InputRef {
                            input: 0,
                            index: m,
                            accessed: Some(accessed.clone()),
                        })
                        .collect(),
                    manipulations: Some(manip),
                });
            }
            Ok(out)
        }
    }
}

/// Aggregate evaluation mirroring the engine's semantics (`collect_list`
/// keeps nulls to preserve nesting positions).
fn eval_agg_model(agg: &pebble_dataflow::AggSpec, rows: &[&DataItem]) -> Value {
    let values = |skip_null: bool| {
        rows.iter().filter_map(move |r| {
            let v = agg.input.eval(r).cloned().unwrap_or(Value::Null);
            if skip_null && v.is_null() {
                None
            } else {
                Some(v)
            }
        })
    };
    match agg.func {
        AggFunc::Count => {
            if agg.input.is_empty() {
                Value::Int(rows.len() as i64)
            } else {
                Value::Int(values(true).count() as i64)
            }
        }
        AggFunc::Sum => {
            let vs: Vec<Value> = values(true).collect();
            if vs.is_empty() {
                Value::Null
            } else if vs.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vs.iter().filter_map(Value::as_int).sum())
            } else {
                Value::Double(vs.iter().filter_map(Value::as_double).sum())
            }
        }
        AggFunc::Avg => {
            let vs: Vec<f64> = values(true).filter_map(|v| v.as_double()).collect();
            if vs.is_empty() {
                Value::Null
            } else {
                Value::Double(vs.iter().sum::<f64>() / vs.len() as f64)
            }
        }
        AggFunc::Min => values(true).min().unwrap_or(Value::Null),
        AggFunc::Max => values(true).max().unwrap_or(Value::Null),
        AggFunc::CollectList => {
            if agg.input.is_empty() {
                Value::Bag(rows.iter().map(|r| Value::Item((*r).clone())).collect())
            } else {
                Value::Bag(values(false).collect())
            }
        }
        AggFunc::CollectSet => {
            if agg.input.is_empty() {
                Value::set_from(rows.iter().map(|r| Value::Item((*r).clone())))
            } else {
                Value::set_from(values(true))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dataflow::{AggSpec, Expr, GroupKey, NamedExpr};
    use pebble_nested::DataItem;

    fn items() -> Vec<DataItem> {
        vec![
            DataItem::from_fields([("k", Value::str("a")), ("v", Value::Int(1))]),
            DataItem::from_fields([("k", Value::str("b")), ("v", Value::Int(2))]),
            DataItem::from_fields([("k", Value::str("a")), ("v", Value::Int(3))]),
        ]
    }

    #[test]
    fn filter_model() {
        let kind = OpKind::Filter {
            predicate: Expr::col("v").ge(Expr::lit(2i64)),
        };
        let data = items();
        let r = apply(&kind, &[&data]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].inputs[0].index, 1);
        assert_eq!(
            r[0].inputs[0].accessed.as_deref(),
            Some(&[Path::attr("v")][..])
        );
        assert_eq!(r[0].manipulations.as_deref(), Some(&[][..]));
    }

    #[test]
    fn flatten_model_concrete_positions() {
        let data = vec![DataItem::from_fields([(
            "xs",
            Value::Bag(vec![Value::Int(10), Value::Int(20)]),
        )])];
        let kind = OpKind::Flatten {
            col: Path::attr("xs"),
            new_attr: "x".into(),
        };
        let r = apply(&kind, &[&data]).unwrap();
        assert_eq!(r.len(), 2);
        // Concrete position, exactly as in Fig. 3's left side.
        assert_eq!(
            r[1].inputs[0].accessed.as_deref(),
            Some(&[Path::parse("xs[2]")][..])
        );
        assert_eq!(
            r[1].manipulations.as_deref(),
            Some(&[(Path::parse("xs[2]"), Path::attr("x"))][..])
        );
    }

    #[test]
    fn aggregation_model_groups_and_positions() {
        let data = items();
        let kind = OpKind::GroupAggregate {
            keys: vec![GroupKey::new("k")],
            aggs: vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        };
        let r = apply(&kind, &[&data]).unwrap();
        assert_eq!(r.len(), 2);
        let a = &r[0]; // group "a" seen first
        assert_eq!(a.inputs.iter().map(|i| i.index).collect::<Vec<_>>(), [0, 2]);
        let m = a.manipulations.as_deref().unwrap();
        assert!(m.contains(&(Path::attr("v"), Path::parse("vs[1]"))));
        assert!(m.contains(&(Path::attr("v"), Path::parse("vs[2]"))));
        assert_eq!(
            a.item.get("vs"),
            Some(&Value::Bag(vec![Value::Int(1), Value::Int(3)]))
        );
    }

    #[test]
    fn join_model_renames() {
        let left = vec![DataItem::from_fields([
            ("k", Value::Int(1)),
            ("a", Value::str("x")),
        ])];
        let right = vec![DataItem::from_fields([
            ("k", Value::Int(1)),
            ("b", Value::str("y")),
        ])];
        let kind = OpKind::Join {
            keys: vec![(Path::attr("k"), Path::attr("k"))],
        };
        let r = apply(&kind, &[&left, &right]).unwrap();
        assert_eq!(r.len(), 1);
        let m = r[0].manipulations.as_deref().unwrap();
        assert!(m.contains(&(Path::attr("k"), Path::attr("k_r"))));
        assert_eq!(r[0].inputs.len(), 2);
    }

    #[test]
    fn union_model_empty_access() {
        let data = items();
        let r = apply(&OpKind::Union, &[&data, &data]).unwrap();
        assert_eq!(r.len(), 6);
        assert_eq!(r[0].inputs[0].accessed.as_deref(), Some(&[][..]));
        assert_eq!(r[3].inputs[0].input, 1);
    }

    #[test]
    fn select_model_manipulations() {
        let data = items();
        let kind = OpKind::Select {
            exprs: vec![NamedExpr::aliased("key", "k")],
        };
        let r = apply(&kind, &[&data]).unwrap();
        assert_eq!(
            r[0].manipulations.as_deref(),
            Some(&[(Path::attr("k"), Path::attr("key"))][..])
        );
    }
}
