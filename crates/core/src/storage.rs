//! Compact binary persistence for captured operator provenance.
//!
//! The paper's Pebble stores the captured pebbles alongside the pipeline
//! result so provenance questions can be answered long after the run
//! (Sec. 7.3.2 measures exactly this storage). This module provides a
//! versioned, self-contained binary codec for `Vec<OperatorProvenance>`:
//! varint-compressed identifiers and schema-level paths as UTF-8.
//!
//! The low-level primitives (varints, zigzag deltas, strings) live in
//! [`pebble_nested::encode`] and are shared with the on-disk segment format
//! of `pebble-serve`; this module owns only the record layout. The format
//! is deliberately simple — a magic header, one record per operator — and
//! intentionally dependency-free so its size is predictable; the size
//! accounting of Fig. 8 matches what this codec writes within a few
//! percent.

use pebble_dataflow::ItemId;
use pebble_nested::encode::{
    get_str, get_u8, get_varint, put_str, put_varint, unzigzag, zigzag, CodecError,
};
use pebble_nested::Path;

use crate::capture::{InputProv, OperatorProvenance, ProvAssoc};

const MAGIC: &[u8; 4] = b"PBL1";

/// Error raised when decoding malformed provenance bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "provenance decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<CodecError> for DecodeError {
    fn from(e: CodecError) -> Self {
        DecodeError(e.0)
    }
}

/// Serializes operator provenance to a compact binary blob.
pub fn encode(ops: &[OperatorProvenance]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1024);
    buf.extend_from_slice(MAGIC);
    put_varint(&mut buf, ops.len() as u64);
    for op in ops {
        put_varint(&mut buf, op.oid as u64);
        put_str(&mut buf, &op.op_type);
        put_varint(&mut buf, op.inputs.len() as u64);
        for input in &op.inputs {
            match input.pred {
                Some(p) => {
                    buf.push(1);
                    put_varint(&mut buf, p as u64);
                }
                None => buf.push(0),
            }
            match &input.accessed {
                Some(paths) => {
                    buf.push(1);
                    put_varint(&mut buf, paths.len() as u64);
                    for p in paths {
                        put_str(&mut buf, &p.to_string());
                    }
                }
                None => buf.push(0),
            }
        }
        match &op.manipulated {
            Some(ms) => {
                buf.push(1);
                put_varint(&mut buf, ms.len() as u64);
                for (a, b) in ms {
                    put_str(&mut buf, &a.to_string());
                    put_str(&mut buf, &b.to_string());
                }
            }
            None => buf.push(0),
        }
        encode_assoc(&mut buf, &op.assoc);
    }
    buf
}

/// Deserializes operator provenance previously written by [`encode`].
pub fn decode(mut bytes: &[u8]) -> Result<Vec<OperatorProvenance>, DecodeError> {
    let buf = &mut bytes;
    if buf.len() < 4 || buf[..4] != MAGIC[..] {
        return Err(DecodeError("bad magic/version".into()));
    }
    *buf = &buf[4..];
    let n = get_varint(buf)? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let oid = get_varint(buf)? as u32;
        let op_type = get_str(buf)?;
        let n_inputs = get_varint(buf)? as usize;
        let mut inputs = Vec::with_capacity(n_inputs.min(16));
        for _ in 0..n_inputs {
            let pred = match get_u8(buf)? {
                0 => None,
                _ => Some(get_varint(buf)? as u32),
            };
            let accessed = match get_u8(buf)? {
                0 => None,
                _ => {
                    let k = get_varint(buf)? as usize;
                    let mut paths = Vec::with_capacity(k.min(1 << 16));
                    for _ in 0..k {
                        paths.push(parse_path(&get_str(buf)?)?);
                    }
                    Some(paths)
                }
            };
            inputs.push(InputProv { pred, accessed });
        }
        let manipulated = match get_u8(buf)? {
            0 => None,
            _ => {
                let k = get_varint(buf)? as usize;
                let mut ms = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    let a = parse_path(&get_str(buf)?)?;
                    let b = parse_path(&get_str(buf)?)?;
                    ms.push((a, b));
                }
                Some(ms)
            }
        };
        let assoc = decode_assoc(buf)?;
        ops.push(OperatorProvenance {
            oid,
            op_type,
            inputs,
            manipulated,
            assoc,
        });
    }
    if !buf.is_empty() {
        return Err(DecodeError("trailing bytes".into()));
    }
    Ok(ops)
}

fn encode_assoc(buf: &mut Vec<u8>, assoc: &ProvAssoc) {
    match assoc {
        ProvAssoc::Read(ids) => {
            buf.push(0);
            put_varint(buf, ids.len() as u64);
            put_ids_delta(buf, ids);
        }
        ProvAssoc::Unary(v) => {
            buf.push(1);
            put_varint(buf, v.len() as u64);
            for &(i, o) in v {
                put_varint(buf, i);
                put_varint(buf, o);
            }
        }
        ProvAssoc::Binary(v) => {
            buf.push(2);
            put_varint(buf, v.len() as u64);
            for &(l, r, o) in v {
                put_opt_id(buf, l);
                put_opt_id(buf, r);
                put_varint(buf, o);
            }
        }
        ProvAssoc::Flatten(v) => {
            buf.push(3);
            put_varint(buf, v.len() as u64);
            for &(i, pos, o) in v {
                put_varint(buf, i);
                put_varint(buf, pos as u64);
                put_varint(buf, o);
            }
        }
        ProvAssoc::Agg(v) => {
            buf.push(4);
            put_varint(buf, v.len() as u64);
            for (ids, o) in v {
                put_varint(buf, ids.len() as u64);
                put_ids_delta(buf, ids);
                put_varint(buf, *o);
            }
        }
    }
}

fn decode_assoc(buf: &mut &[u8]) -> Result<ProvAssoc, DecodeError> {
    Ok(match get_u8(buf)? {
        0 => {
            let n = get_varint(buf)? as usize;
            ProvAssoc::Read(get_ids_delta(buf, n)?)
        }
        1 => {
            let n = get_varint(buf)? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push((get_varint(buf)?, get_varint(buf)?));
            }
            ProvAssoc::Unary(v)
        }
        2 => {
            let n = get_varint(buf)? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let l = get_opt_id(buf)?;
                let r = get_opt_id(buf)?;
                let o = get_varint(buf)?;
                v.push((l, r, o));
            }
            ProvAssoc::Binary(v)
        }
        3 => {
            let n = get_varint(buf)? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let i = get_varint(buf)?;
                let pos = get_varint(buf)? as u32;
                let o = get_varint(buf)?;
                v.push((i, pos, o));
            }
            ProvAssoc::Flatten(v)
        }
        4 => {
            let n = get_varint(buf)? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let k = get_varint(buf)? as usize;
                let ids = get_ids_delta(buf, k)?;
                let o = get_varint(buf)?;
                v.push((ids, o));
            }
            ProvAssoc::Agg(v)
        }
        tag => return Err(DecodeError(format!("unknown assoc tag {tag}"))),
    })
}

/// Delta-encodes an identifier run: ids from one partition are ascending,
/// so deltas varint-compress to one or two bytes each. The element count is
/// written separately by the caller (unlike
/// [`pebble_nested::encode::put_ids_delta`], which prefixes it).
fn put_ids_delta(buf: &mut Vec<u8>, ids: &[ItemId]) {
    let mut prev = 0u64;
    for &id in ids {
        // Zig-zag the signed delta.
        let delta = id as i64 - prev as i64;
        put_varint(buf, zigzag(delta));
        prev = id;
    }
}

fn get_ids_delta(buf: &mut &[u8], n: usize) -> Result<Vec<ItemId>, DecodeError> {
    let mut ids = Vec::with_capacity(n.min(1 << 20));
    let mut prev = 0i64;
    for _ in 0..n {
        let delta = unzigzag(get_varint(buf)?);
        prev += delta;
        ids.push(prev as u64);
    }
    Ok(ids)
}

fn put_opt_id(buf: &mut Vec<u8>, id: Option<ItemId>) {
    match id {
        Some(i) => {
            buf.push(1);
            put_varint(buf, i);
        }
        None => buf.push(0),
    }
}

fn get_opt_id(buf: &mut &[u8]) -> Result<Option<ItemId>, DecodeError> {
    Ok(match get_u8(buf)? {
        0 => None,
        _ => Some(get_varint(buf)?),
    })
}

fn parse_path(s: &str) -> Result<Path, DecodeError> {
    s.parse()
        .map_err(|e| DecodeError(format!("invalid path `{s}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::run_captured;
    use pebble_dataflow::{context::items_of, Context, ExecConfig, Expr, ProgramBuilder};
    use pebble_nested::Value;

    fn captured_ops() -> Vec<OperatorProvenance> {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![
                    ("k", Value::Int(1)),
                    ("xs", Value::Bag(vec![Value::Int(4), Value::Int(5)])),
                ],
                vec![("k", Value::Int(2)), ("xs", Value::Bag(vec![]))],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("k").ge(Expr::lit(1i64)));
        let fl = b.flatten(f, "xs", "x");
        let g = b.group_aggregate(
            fl,
            vec![pebble_dataflow::GroupKey::new("k")],
            vec![pebble_dataflow::AggSpec::new(
                pebble_dataflow::AggFunc::CollectList,
                "x",
                "collected",
            )],
        );
        run_captured(&b.build(g), &c, ExecConfig::with_partitions(2))
            .unwrap()
            .ops
    }

    #[test]
    fn roundtrip_all_assoc_kinds() {
        let ops = captured_ops();
        let bytes = encode(&ops);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(ops, decoded);
    }

    #[test]
    fn roundtrip_binary_assoc_and_map() {
        use pebble_dataflow::MapUdf;
        use std::sync::Arc;
        let mut c = Context::new();
        c.register("t", items_of(vec![vec![("k", Value::Int(1))]]));
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let m = b.map(
            u,
            MapUdf {
                name: "id".into(),
                f: Arc::new(Clone::clone),
                output_schema: None,
            },
        );
        let ops = run_captured(&b.build(m), &c, ExecConfig::with_partitions(2))
            .unwrap()
            .ops;
        let decoded = decode(&encode(&ops)).unwrap();
        assert_eq!(ops, decoded);
    }

    #[test]
    fn rejects_corruption() {
        let ops = captured_ops();
        let bytes = encode(&ops);
        assert!(decode(&bytes[..3]).is_err()); // truncated magic
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode(&bad).is_err()); // wrong magic
        let mut truncated = bytes.to_vec();
        truncated.truncate(bytes.len() - 3);
        assert!(decode(&truncated).is_err());
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(decode(&extended).is_err()); // trailing bytes
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 1 << 20, -(1 << 40), i64::MAX / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 127, 128, 300, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut slice = &buf[..];
        for v in [0u64, 127, 128, 300, u64::MAX] {
            assert_eq!(get_varint(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn encoding_is_compact() {
        let ops = captured_ops();
        let bytes = encode(&ops);
        // Delta+varint beats raw 8-byte ids by a wide margin.
        let raw: usize = ops.iter().map(|o| o.assoc.lineage_bytes()).sum();
        assert!(bytes.len() < raw * 4, "{} vs {raw}", bytes.len());
    }
}
