//! Pluggable capture backends.
//!
//! [`CaptureBackend`] generalizes the hardwired capture→backtrace path:
//! every backend consumes the same assembled [`CapturedRun`] — the
//! per-operator association-id tables the [`pebble_dataflow::sink`]
//! hook emitted, whether the run was row or columnar, in-memory or
//! spilled — and answers textual queries over it. Because the feed is
//! the captured run itself, the engine's whole determinism matrix
//! (workers × partitions × columnar × spill budget) applies to every
//! backend unchanged, and backend answers are required to be
//! byte-identical across all execution shapes (they render only
//! identifier-free quantities: output row positions, dataset indices,
//! operator ids, schema-level paths).
//!
//! Shipped backends:
//!
//! * `structural` — the paper's backward tracing ([`crate::backtrace`]):
//!   `BACKTRACE <row>` and `PATTERN <tree-pattern>`;
//! * `whynot` — missing-answer explanations ([`crate::whynot`]):
//!   `WHYNOT path=value[,path=value…]`;
//! * `semiring` — N[X] provenance polynomials with a probability hook
//!   ([`crate::semiring`]): `POLY <row>`, `COUNT <row>`, `PROB <row>`.
//!
//! `pebble-baselines` ports its comparison systems (Titian lineage, lazy
//! re-execution, Lipstick annotation counting) onto the same trait; the
//! backend-conformance suite runs all of them through the determinism
//! matrix. A backend that cannot consume columnar-built runs (none of
//! the built-ins; the Lipstick port, which annotates values row-at-a-
//! time) sets [`CaptureBackend::forces_row_path`], and
//! [`run_for_backend`] clears [`ExecConfig::columnar`] accordingly.
//!
//! The backend for a session is picked by name — `PEBBLE_BACKEND`
//! selects one of the three built-ins via [`backend_from_env`].

use pebble_dataflow::{Context, EngineError, ExecConfig, Program, Result};
use pebble_obs::BackendStats;

use crate::backtrace::{backtrace, canonical_provenance};
use crate::btree::{Backtrace, ProvTree};
use crate::capture::{run_captured, CapturedRun};
use crate::pattern::TreePattern;
use crate::semiring;
use crate::whynot;
use pebble_nested::Path;

/// A provenance modality over captured runs. Implementations must be
/// deterministic: the same run and query yield byte-identical answers.
pub trait CaptureBackend: Sync {
    /// Stable backend name (registry key and report label).
    fn name(&self) -> &'static str;

    /// True when the backend cannot consume columnar-built runs;
    /// [`run_for_backend`] then executes on the row path.
    fn forces_row_path(&self) -> bool {
        false
    }

    /// Prepares the backend over one captured run (plus the source
    /// context, for backends that reason about input items).
    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>>;
}

/// A backend bound to one run, ready to answer queries.
pub trait PreparedBackend {
    /// Answers one textual query as identifier-free lines.
    fn answer(&self, query: &str) -> Result<Vec<String>>;
}

/// Shared error constructor for a query a backend does not understand.
pub fn unknown_query_error(backend: &str, query: &str) -> EngineError {
    EngineError::BacktraceError(format!(
        "backend `{backend}` does not understand `{}`",
        query.trim()
    ))
}

/// The paper's structural backward tracing as a backend.
pub struct StructuralBackend;

struct PreparedStructural<'r> {
    run: &'r CapturedRun,
}

impl CaptureBackend for StructuralBackend {
    fn name(&self) -> &'static str {
        "structural"
    }

    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        _ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>> {
        Ok(Box::new(PreparedStructural { run }))
    }
}

impl PreparedBackend for PreparedStructural<'_> {
    fn answer(&self, query: &str) -> Result<Vec<String>> {
        let query = query.trim();
        let bt = if let Some(arg) = query.strip_prefix("BACKTRACE ") {
            let rows = self.run.output.rows.len();
            let index: usize = arg.trim().parse().map_err(|_| {
                EngineError::BacktraceError(format!("bad row index `{}`", arg.trim()))
            })?;
            let row = self
                .run
                .output
                .rows
                .get(index)
                .ok_or_else(|| semiring::row_range_error(index, rows))?;
            let tree = ProvTree::from_paths(Path::path_set(&row.item).iter());
            Backtrace {
                entries: vec![(row.id, tree)],
            }
        } else if let Some(arg) = query.strip_prefix("PATTERN ") {
            let pattern = TreePattern::parse(arg.trim())
                .map_err(|e| EngineError::BacktraceError(format!("bad pattern: {e}")))?;
            pattern.match_rows(&self.run.output.rows)
        } else {
            return Err(unknown_query_error("structural", query));
        };
        let sources = backtrace(self.run, bt)?;
        Ok(canonical_provenance(&sources)
            .into_iter()
            .map(|(source, index, tree)| format!("{source}[{index}]: {tree}"))
            .collect())
    }
}

/// Why-not explanations as a backend.
pub struct WhyNotBackend;

struct PreparedWhyNot<'r> {
    run: &'r CapturedRun,
    ctx: &'r Context,
}

impl CaptureBackend for WhyNotBackend {
    fn name(&self) -> &'static str {
        "whynot"
    }

    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>> {
        Ok(Box::new(PreparedWhyNot { run, ctx }))
    }
}

impl PreparedBackend for PreparedWhyNot<'_> {
    fn answer(&self, query: &str) -> Result<Vec<String>> {
        let query = query.trim();
        let Some(arg) = query.strip_prefix("WHYNOT") else {
            return Err(unknown_query_error("whynot", query));
        };
        let conds = whynot::parse_whynot_query(arg)?;
        let answer = whynot::why_not(self.run, self.ctx, &conds)?;
        Ok(answer.render(self.run))
    }
}

/// N[X] semiring polynomials as a backend.
pub struct SemiringBackend;

struct PreparedSemiring<'r> {
    run: &'r CapturedRun,
}

impl CaptureBackend for SemiringBackend {
    fn name(&self) -> &'static str {
        "semiring"
    }

    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        _ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>> {
        Ok(Box::new(PreparedSemiring { run }))
    }
}

impl PreparedBackend for PreparedSemiring<'_> {
    fn answer(&self, query: &str) -> Result<Vec<String>> {
        let (verb, index) = semiring::parse_row_query(query, &["POLY", "COUNT", "PROB"])?;
        let poly = semiring::polynomial_of(self.run, index)?;
        Ok(vec![match verb {
            "POLY" => poly.render(),
            "COUNT" => poly.count().to_string(),
            _ => semiring::probability(&poly)?,
        }])
    }
}

static STRUCTURAL: StructuralBackend = StructuralBackend;
static WHYNOT: WhyNotBackend = WhyNotBackend;
static SEMIRING: SemiringBackend = SemiringBackend;

/// Looks a built-in backend up by name.
pub fn backend_by_name(name: &str) -> Option<&'static dyn CaptureBackend> {
    match name {
        "structural" => Some(&STRUCTURAL),
        "whynot" => Some(&WHYNOT),
        "semiring" => Some(&SEMIRING),
        _ => None,
    }
}

/// The backend selected by `PEBBLE_BACKEND` (default `structural`). An
/// unknown name falls back to the default with a one-line warning, at
/// most once per process — configuration must never panic the engine.
pub fn backend_from_env() -> &'static dyn CaptureBackend {
    match std::env::var("PEBBLE_BACKEND") {
        Ok(name) if !name.trim().is_empty() => backend_by_name(name.trim()).unwrap_or_else(|| {
            use std::sync::Once;
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "pebble: unknown PEBBLE_BACKEND `{}`; using `structural`",
                    name.trim()
                );
            });
            &STRUCTURAL
        }),
        _ => &STRUCTURAL,
    }
}

/// Executes a program with capture on behalf of a backend: clears the
/// columnar flag when the backend forces the row path, and stamps the
/// run report's `backend` section.
pub fn run_for_backend(
    program: &Program,
    ctx: &Context,
    mut config: ExecConfig,
    backend: &dyn CaptureBackend,
) -> Result<CapturedRun> {
    if backend.forces_row_path() {
        config.columnar = false;
    }
    let mut run = run_captured(program, ctx, config)?;
    run.output.report.backend = Some(BackendStats {
        name: backend.name().to_string(),
        forces_row_path: backend.forces_row_path(),
    });
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dataflow::{context::items_of, Expr};
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
            ]),
        );
        c
    }

    fn captured() -> (CapturedRun, Context) {
        let mut b = pebble_dataflow::ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let p = b.build(f);
        let c = ctx();
        let run = run_captured(&p, &c, ExecConfig::with_partitions(2)).unwrap();
        (run, c)
    }

    #[test]
    fn registry_resolves_builtins() {
        for name in ["structural", "whynot", "semiring"] {
            assert_eq!(backend_by_name(name).unwrap().name(), name);
        }
        assert!(backend_by_name("nope").is_none());
    }

    #[test]
    fn structural_backend_answers_and_rejects() {
        let (run, c) = captured();
        let prepared = StructuralBackend.prepare(&run, &c).unwrap();
        let lines = prepared.answer("BACKTRACE 0").unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("t[1]: "), "got {}", lines[0]);
        assert!(prepared.answer("BACKTRACE 7").is_err());
        let err = prepared.answer("TRACE 0").unwrap_err();
        assert_eq!(
            err.to_string(),
            "backtrace failed: backend `structural` does not understand `TRACE 0`"
        );
    }

    #[test]
    fn whynot_backend_round_trips() {
        let (run, c) = captured();
        let prepared = WhyNotBackend.prepare(&run, &c).unwrap();
        assert_eq!(
            prepared.answer("WHYNOT v=2").unwrap(),
            vec!["found: output rows 0".to_string()]
        );
        assert!(prepared.answer("POLY 0").is_err());
    }

    #[test]
    fn semiring_backend_answers_all_verbs() {
        let (run, c) = captured();
        let prepared = SemiringBackend.prepare(&run, &c).unwrap();
        assert_eq!(prepared.answer("POLY 0").unwrap(), vec!["x0_1".to_string()]);
        assert_eq!(prepared.answer("COUNT 0").unwrap(), vec!["1".to_string()]);
        assert_eq!(prepared.answer("PROB 0").unwrap(), vec!["1/4".to_string()]);
        assert!(prepared.answer("WHYNOT v=1").is_err());
    }

    #[test]
    fn run_for_backend_stamps_report() {
        let (_, c) = captured();
        let mut b = pebble_dataflow::ProgramBuilder::new();
        let r = b.read("t");
        let p = b.build(r);
        let run = run_for_backend(&p, &c, ExecConfig::with_partitions(1), &SEMIRING).unwrap();
        let stats = run.output.report.backend.as_ref().unwrap();
        assert_eq!(stats.name, "semiring");
        assert!(!stats.forces_row_path);
    }
}
