//! The backtracing algorithm (Sec. 6.3, Algs. 1–4).
//!
//! Starting from a backtracing structure `B` over the program's result
//! (usually produced by tree-pattern matching), the algorithm steps
//! backwards through the operator provenance `P` of every operator until
//! the `read` sources are reached. Each step
//!
//! 1. joins `B` with the identifier associations `P.P` to move from output
//!    to input identifiers (the same join lineage systems perform), and
//! 2. rewrites the backtracing trees: recorded manipulations `P.M` are
//!    undone with `manipulatePath`, and recorded accesses `P.I.A` are
//!    stamped with `accessPath`, materializing *influencing* nodes.
//!
//! `join`/`union` fork the walk into both predecessors; the results per
//! `read` operator are merged by input identifier.
//!
//! ### Aggregation relevance (Alg. 4 interpretation)
//!
//! For bag nesting, a group member is relevant (`inProv`) exactly when the
//! tree pinpoints its nested position (Ex. 6.6: members at positions 2 and
//! 3 survive; positions 1 and 4 are dropped). Scalar aggregates make every
//! group member relevant, since all values feed the aggregate. Group-key
//! mappings alone make members relevant only when the query does *not*
//! pinpoint nested positions — this reproduces the paper's example, where
//! tweets 1 and 29 of group 102 are excluded although they share the
//! queried `user` key, while key-only queries still return the whole group
//! (which a lineage system would, too).

use pebble_dataflow::{EngineError, ItemId, OpId, Result};
use pebble_nested::{DataType, Path, Step};

use crate::btree::{Backtrace, ProvTree};
use crate::capture::{CapturedRun, OperatorProvenance, ProvAssoc};
use pebble_dataflow::hash::FxHashMap;

/// One traced input item of a source dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedItem {
    /// Identifier the item carried during the captured run.
    pub id: ItemId,
    /// Position of the item in the source dataset (0-based).
    pub index: usize,
    /// Backtracing tree over the item's schema, with contributing /
    /// influencing flags and access/manipulation operator sets.
    pub tree: ProvTree,
}

/// Provenance traced back to one `read` operator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceProvenance {
    /// The `read` operator.
    pub read_op: OpId,
    /// Name of the source dataset.
    pub source: String,
    /// Traced items, ordered by identifier.
    pub entries: Vec<TracedItem>,
}

impl SourceProvenance {
    /// Identifier-free view of the traced items: `(source, dataset index,
    /// rendered tree)` per entry, sorted by index.
    ///
    /// Item identifiers encode the partition an item travelled through, so
    /// they differ between runs with different partition counts; dataset
    /// indexes and backtracing trees do not. Comparing canonical entries is
    /// how the metamorphic tests and the differential oracle check that
    /// backtracing results are invariant under partitioning and fusion.
    pub fn canonical_entries(&self) -> Vec<(String, usize, String)> {
        let mut out: Vec<(String, usize, String)> = self
            .entries
            .iter()
            .map(|e| (self.source.clone(), e.index, e.tree.to_string()))
            .collect();
        out.sort();
        out
    }
}

/// Canonicalizes a whole backtracing answer (see
/// [`SourceProvenance::canonical_entries`]): entries of every source,
/// sorted by `(source, index)`.
pub fn canonical_provenance(sources: &[SourceProvenance]) -> Vec<(String, usize, String)> {
    let mut out: Vec<(String, usize, String)> = sources
        .iter()
        .flat_map(SourceProvenance::canonical_entries)
        .collect();
    out.sort();
    out
}

/// Read-only view of a captured run's provenance — everything the
/// backtracing algorithm needs, abstracted over where the provenance lives.
///
/// [`CapturedRun`] implements it over the in-memory capture (answers come
/// straight from the program); `pebble-serve`'s `ProvStore` implements it
/// over a cold-opened segment file. The algorithm itself
/// ([`backtrace_from`]) is generic, which is what guarantees store-backed
/// answers are byte-identical to in-memory ones: both paths execute the
/// same code over the same association tables.
pub trait ProvView {
    /// The sink (final) operator of the program.
    fn sink_op(&self) -> OpId;

    /// Captured provenance per operator, indexed by operator id.
    fn prov_ops(&self) -> &[OperatorProvenance];

    /// Output schema per operator, indexed by operator id.
    fn schemas(&self) -> &[DataType];

    /// Source dataset name of a `read` operator; an error when `oid` is
    /// not a read.
    fn read_source(&self, oid: OpId) -> Result<String>;

    /// Output paths of position-less aggregates (`count(*)`, whole-item
    /// set nesting) at aggregation operator `oid` — see
    /// `backtrace_aggregation` for why these need the all-members rule.
    fn countstar_outputs(&self, oid: OpId) -> Vec<Path>;

    /// The provenance record of operator `oid`.
    fn prov_op(&self, oid: OpId) -> &OperatorProvenance {
        &self.prov_ops()[oid as usize]
    }

    /// Schema of the `idx`-th input of `oid` (its predecessor's output
    /// schema).
    fn input_schema_of(&self, oid: OpId, idx: usize) -> &DataType {
        let pred = self.prov_ops()[oid as usize].inputs[idx]
            .pred
            .expect("operator input without captured predecessor");
        &self.schemas()[pred as usize]
    }
}

impl ProvView for CapturedRun {
    fn sink_op(&self) -> OpId {
        self.program.sink()
    }

    fn prov_ops(&self) -> &[OperatorProvenance] {
        &self.ops
    }

    fn schemas(&self) -> &[DataType] {
        &self.output.op_schemas
    }

    fn read_source(&self, oid: OpId) -> Result<String> {
        match &self.program.operators()[oid as usize].kind {
            pebble_dataflow::OpKind::Read { source } => Ok(source.clone()),
            other => Err(EngineError::BacktraceError(format!(
                "operator #{oid} is {other:?}, expected a read"
            ))),
        }
    }

    fn countstar_outputs(&self, oid: OpId) -> Vec<Path> {
        match &self.program.operators()[oid as usize].kind {
            pebble_dataflow::OpKind::GroupAggregate { aggs, .. } => aggs
                .iter()
                .filter(|a| {
                    // Whole-item bag nesting (collect_list with no input
                    // path) is handled positionally through M; only
                    // count(*) and whole-item set nesting (position-less)
                    // fall back to the all-members rule.
                    a.input.is_empty() && a.func != pebble_dataflow::AggFunc::CollectList
                })
                .map(|a| Path::attr(&a.output))
                .collect(),
            _ => Vec::new(),
        }
    }

    fn input_schema_of(&self, oid: OpId, idx: usize) -> &DataType {
        self.input_schema(oid, idx)
    }
}

/// Pre-built per-operator hash indexes over the identifier association
/// tables. Building them is linear in the provenance size; reusing one
/// index across many provenance questions amortizes that cost (the
/// "optimize provenance querying" direction the paper names as future
/// work — benchmarked in `ablations`).
pub struct BacktraceIndex {
    per_op: Vec<OpIndex>,
}

/// Binary association entry: `(left input, right input)`.
type BinaryEntry = (Option<ItemId>, Option<ItemId>);

enum OpIndex {
    /// id → dataset position.
    Read(FxHashMap<ItemId, usize>),
    /// output id → input id.
    Unary(FxHashMap<ItemId, ItemId>),
    /// output id → (left input, right input).
    Binary(FxHashMap<ItemId, BinaryEntry>),
    /// output id → (input id, element position).
    Flatten(FxHashMap<ItemId, (ItemId, u32)>),
    /// output id → group member ids in nesting order.
    Agg(FxHashMap<ItemId, Vec<ItemId>>),
    /// Prepared variants: entries sorted by output id, probed by binary
    /// search. Reconstructed from persisted sort permutations, avoiding
    /// the hash-build cost at cold open.
    SortedRead(Vec<(ItemId, usize)>),
    /// Sorted `output id → input id`.
    SortedUnary(Vec<(ItemId, ItemId)>),
    /// Sorted `output id → (left input, right input)`.
    SortedBinary(Vec<(ItemId, BinaryEntry)>),
    /// Sorted `output id → (input id, element position)`.
    SortedFlatten(Vec<(ItemId, (ItemId, u32))>),
    /// Sorted `output id → group member ids`.
    SortedAgg(Vec<(ItemId, Vec<ItemId>)>),
}

/// A probe handle over either index representation. Output identifiers are
/// unique per operator (each output row carries exactly one id), so hash
/// lookup and binary search return identical answers.
enum Lookup<'a, V> {
    Map(&'a FxHashMap<ItemId, V>),
    Sorted(&'a [(ItemId, V)]),
}

impl<'a, V> Lookup<'a, V> {
    fn get(&self, id: &ItemId) -> Option<&'a V> {
        match self {
            Lookup::Map(m) => m.get(id),
            Lookup::Sorted(s) => s.binary_search_by_key(id, |e| e.0).ok().map(|i| &s[i].1),
        }
    }
}

/// A prepared-index permutation that does not describe its association
/// table.
fn perm_error(oid: OpId, detail: &str) -> EngineError {
    EngineError::BacktraceError(format!("prepared index for operator #{oid} {detail}"))
}

/// Checks a prepared entry list is strictly ascending by output id (which,
/// together with the length check, proves the permutation is a bijection —
/// output ids are unique).
fn check_sorted<V>(oid: OpId, entries: &[(ItemId, V)]) -> Result<()> {
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err(perm_error(oid, "is not sorted by output identifier"));
    }
    Ok(())
}

/// Applies a persisted permutation to an association table, producing the
/// sorted entry list. `pick` projects one association entry to its
/// `(output id, payload)` pair.
fn apply_perm<T, V>(
    oid: OpId,
    table: &[T],
    perm: &[u32],
    pick: impl Fn(&T) -> (ItemId, V),
) -> Result<Vec<(ItemId, V)>> {
    if perm.len() != table.len() {
        return Err(perm_error(oid, "does not cover its association table"));
    }
    let entries = perm
        .iter()
        .map(|&p| {
            table
                .get(p as usize)
                .map(&pick)
                .ok_or_else(|| perm_error(oid, "references an out-of-range position"))
        })
        .collect::<Result<Vec<_>>>()?;
    check_sorted(oid, &entries)?;
    Ok(entries)
}

impl BacktraceIndex {
    /// Builds the index for a captured run.
    ///
    /// When metrics are enabled (`PEBBLE_METRICS`), the build time is
    /// recorded into the process-wide [`pebble_obs::global`] histograms.
    pub fn build(run: &CapturedRun) -> Self {
        Self::build_ops(&run.ops)
    }

    /// Builds the hash index over bare association tables (what
    /// [`BacktraceIndex::build`] does under the hood; also the path a
    /// loaded store without persisted permutations takes).
    pub fn build_ops(ops: &[OperatorProvenance]) -> Self {
        let start = pebble_obs::metrics_enabled().then(std::time::Instant::now);
        let per_op = ops
            .iter()
            .map(|op| match &op.assoc {
                ProvAssoc::Read(ids) => {
                    OpIndex::Read(ids.iter().enumerate().map(|(i, &id)| (id, i)).collect())
                }
                ProvAssoc::Unary(v) => OpIndex::Unary(v.iter().map(|&(i, o)| (o, i)).collect()),
                ProvAssoc::Binary(v) => {
                    OpIndex::Binary(v.iter().map(|&(l, r, o)| (o, (l, r))).collect())
                }
                ProvAssoc::Flatten(v) => {
                    OpIndex::Flatten(v.iter().map(|&(i, pos, o)| (o, (i, pos))).collect())
                }
                ProvAssoc::Agg(v) => {
                    OpIndex::Agg(v.iter().map(|(ids, o)| (*o, ids.clone())).collect())
                }
            })
            .collect();
        if let Some(start) = start {
            pebble_obs::global()
                .backtrace_build_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        BacktraceIndex { per_op }
    }

    /// Reconstructs a prepared (binary-search) index from persisted sort
    /// permutations — `perms[oid]` lists the association-table positions of
    /// operator `oid` in ascending output-id order, as produced by
    /// [`BacktraceIndex::permutation`].
    ///
    /// Fails with a typed [`EngineError::BacktraceError`] when a
    /// permutation does not describe its table (wrong length, out-of-range
    /// position, not sorted) — loaded data is never trusted blindly.
    pub fn from_sorted(ops: &[OperatorProvenance], perms: &[Vec<u32>]) -> Result<Self> {
        if perms.len() != ops.len() {
            return Err(EngineError::BacktraceError(format!(
                "prepared index has {} permutations for {} operators",
                perms.len(),
                ops.len()
            )));
        }
        let start = pebble_obs::metrics_enabled().then(std::time::Instant::now);
        let per_op = ops
            .iter()
            .zip(perms)
            .map(|(op, perm)| {
                let oid = op.oid;
                Ok(match &op.assoc {
                    ProvAssoc::Read(ids) => OpIndex::SortedRead(apply_perm(
                        oid,
                        ids,
                        perm,
                        |&id| (id, 0usize), // position patched below
                    )?),
                    ProvAssoc::Unary(v) => {
                        OpIndex::SortedUnary(apply_perm(oid, v, perm, |&(i, o)| (o, i))?)
                    }
                    ProvAssoc::Binary(v) => {
                        OpIndex::SortedBinary(apply_perm(oid, v, perm, |&(l, r, o)| (o, (l, r)))?)
                    }
                    ProvAssoc::Flatten(v) => {
                        OpIndex::SortedFlatten(apply_perm(oid, v, perm, |&(i, pos, o)| {
                            (o, (i, pos))
                        })?)
                    }
                    ProvAssoc::Agg(v) => {
                        OpIndex::SortedAgg(apply_perm(oid, v, perm, |(ids, o)| (*o, ids.clone()))?)
                    }
                })
            })
            .collect::<Result<Vec<_>>>()?;
        // Read entries map to *dataset positions*, which are the
        // permutation values themselves.
        let per_op = per_op
            .into_iter()
            .zip(perms)
            .map(|(idx, perm)| match idx {
                OpIndex::SortedRead(entries) => OpIndex::SortedRead(
                    entries
                        .into_iter()
                        .zip(perm)
                        .map(|((id, _), &p)| (id, p as usize))
                        .collect(),
                ),
                other => other,
            })
            .collect();
        if let Some(start) = start {
            pebble_obs::global()
                .backtrace_build_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        Ok(BacktraceIndex { per_op })
    }

    /// The sort permutation of one operator's association table: positions
    /// ordered by ascending output id. This is what `pebble-serve`
    /// persists so cold open can rebuild the prepared index with
    /// [`BacktraceIndex::from_sorted`] instead of re-hashing.
    pub fn permutation(op: &OperatorProvenance) -> Vec<u32> {
        let keys: Vec<ItemId> = match &op.assoc {
            ProvAssoc::Read(ids) => ids.clone(),
            ProvAssoc::Unary(v) => v.iter().map(|&(_, o)| o).collect(),
            ProvAssoc::Binary(v) => v.iter().map(|&(_, _, o)| o).collect(),
            ProvAssoc::Flatten(v) => v.iter().map(|&(_, _, o)| o).collect(),
            ProvAssoc::Agg(v) => v.iter().map(|(_, o)| *o).collect(),
        };
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        perm.sort_by_key(|&p| keys[p as usize]);
        perm
    }

    fn unary(&self, oid: OpId) -> Result<Lookup<'_, ItemId>> {
        match &self.per_op[oid as usize] {
            OpIndex::Unary(m) => Ok(Lookup::Map(m)),
            OpIndex::SortedUnary(v) => Ok(Lookup::Sorted(v)),
            _ => Err(shape_error(oid, "a unary")),
        }
    }

    fn binary(&self, oid: OpId) -> Result<Lookup<'_, BinaryEntry>> {
        match &self.per_op[oid as usize] {
            OpIndex::Binary(m) => Ok(Lookup::Map(m)),
            OpIndex::SortedBinary(v) => Ok(Lookup::Sorted(v)),
            _ => Err(shape_error(oid, "a binary")),
        }
    }

    fn flatten(&self, oid: OpId) -> Result<Lookup<'_, (ItemId, u32)>> {
        match &self.per_op[oid as usize] {
            OpIndex::Flatten(m) => Ok(Lookup::Map(m)),
            OpIndex::SortedFlatten(v) => Ok(Lookup::Sorted(v)),
            _ => Err(shape_error(oid, "a flatten")),
        }
    }

    fn agg(&self, oid: OpId) -> Result<Lookup<'_, Vec<ItemId>>> {
        match &self.per_op[oid as usize] {
            OpIndex::Agg(m) => Ok(Lookup::Map(m)),
            OpIndex::SortedAgg(v) => Ok(Lookup::Sorted(v)),
            _ => Err(shape_error(oid, "an aggregation")),
        }
    }

    fn read(&self, oid: OpId) -> Result<Lookup<'_, usize>> {
        match &self.per_op[oid as usize] {
            OpIndex::Read(m) => Ok(Lookup::Map(m)),
            OpIndex::SortedRead(v) => Ok(Lookup::Sorted(v)),
            _ => Err(shape_error(oid, "a read")),
        }
    }
}

/// The captured association table's shape does not match the operator type
/// — capture tables inconsistent with the program.
fn shape_error(oid: OpId, expected: &str) -> EngineError {
    EngineError::BacktraceError(format!(
        "operator #{oid} does not carry {expected} association table"
    ))
}

/// The predecessor an operator's `idx`-th input refers to, as an error
/// when the captured provenance lacks it.
fn pred_of(p: &OperatorProvenance, idx: usize) -> Result<OpId> {
    p.inputs.get(idx).and_then(|i| i.pred).ok_or_else(|| {
        EngineError::BacktraceError(format!(
            "operator #{} ({}) has no captured predecessor for input {idx}",
            p.oid, p.op_type
        ))
    })
}

/// Backtraces `b` from the sink of a captured run to all of its sources
/// (Alg. 1, driven iteratively over the DAG).
///
/// Fails with [`EngineError::BacktraceError`] when the captured provenance
/// is inconsistent with the program (wrong association table shapes,
/// missing predecessors, identifiers absent from the `read` tables).
pub fn backtrace(run: &CapturedRun, b: Backtrace) -> Result<Vec<SourceProvenance>> {
    backtrace_with(run, &BacktraceIndex::build(run), b)
}

/// Backtraces with a pre-built [`BacktraceIndex`]; use when answering many
/// provenance questions over the same captured run.
///
/// When metrics are enabled (`PEBBLE_METRICS`), each probe's duration is
/// recorded into the process-wide [`pebble_obs::global`] histograms.
pub fn backtrace_with(
    run: &CapturedRun,
    index: &BacktraceIndex,
    b: Backtrace,
) -> Result<Vec<SourceProvenance>> {
    backtrace_from(run, index, b)
}

/// Backtraces over any [`ProvView`] — the generic entry point shared by the
/// in-memory path ([`backtrace_with`]) and loaded provenance stores.
///
/// When metrics are enabled (`PEBBLE_METRICS`), each probe's duration is
/// recorded into the process-wide [`pebble_obs::global`] histograms.
pub fn backtrace_from<V: ProvView + ?Sized>(
    view: &V,
    index: &BacktraceIndex,
    b: Backtrace,
) -> Result<Vec<SourceProvenance>> {
    let start = pebble_obs::metrics_enabled().then(std::time::Instant::now);
    let result = backtrace_probe(view, index, b);
    if let Some(start) = start {
        pebble_obs::global()
            .backtrace_probe_ns
            .record(start.elapsed().as_nanos() as u64);
    }
    result
}

fn backtrace_probe<V: ProvView + ?Sized>(
    view: &V,
    index: &BacktraceIndex,
    b: Backtrace,
) -> Result<Vec<SourceProvenance>> {
    let mut worklist: Vec<(OpId, Backtrace)> = vec![(view.sink_op(), b)];
    let mut per_read: FxHashMap<OpId, Backtrace> = FxHashMap::default();

    while let Some((oid, mut b)) = worklist.pop() {
        b.merge_by_id();
        if b.entries.is_empty() {
            continue;
        }
        let p = view.prov_op(oid);
        match p.op_type.as_str() {
            "read" => {
                per_read.entry(oid).or_default().entries.extend(b.entries);
            }
            "filter" | "select" | "map" => {
                let b2 = backtrace_generic(view, index, p, b)?;
                worklist.push((pred_of(p, 0)?, b2));
            }
            "flatten" => {
                let b2 = backtrace_flatten(view, index, p, b)?;
                worklist.push((pred_of(p, 0)?, b2));
            }
            "aggregation" => {
                let b2 = backtrace_aggregation(view, index, p, b)?;
                worklist.push((pred_of(p, 0)?, b2));
            }
            "join" => {
                for side in 0..2 {
                    let b2 = backtrace_join_side(view, index, p, &b, side)?;
                    worklist.push((pred_of(p, side)?, b2));
                }
            }
            "union" => {
                for side in 0..2 {
                    let b2 = backtrace_union_side(index, p, &b, side)?;
                    worklist.push((pred_of(p, side)?, b2));
                }
            }
            other => {
                return Err(EngineError::BacktraceError(format!(
                    "unknown operator type `{other}` at operator #{oid}"
                )))
            }
        }
    }

    let mut out: Vec<SourceProvenance> = Vec::new();
    for (read_op, mut b) in per_read {
        b.merge_by_id();
        let index_of = index.read(read_op)?;
        let source = view.read_source(read_op)?;
        let entries = b
            .entries
            .into_iter()
            .map(|(id, tree)| {
                let index = index_of.get(&id).copied().ok_or_else(|| {
                    EngineError::BacktraceError(format!(
                        "identifier {id:#x} is not in read operator #{read_op}'s associations"
                    ))
                })?;
                Ok(TracedItem { id, index, tree })
            })
            .collect::<Result<Vec<_>>>()?;
        out.push(SourceProvenance {
            read_op,
            source,
            entries,
        });
    }
    out.sort_by_key(|s| s.read_op);
    Ok(out)
}

/// Expands a schema-level access path to itself plus every schema path
/// below it ("marks the user and its children as accessed", Ex. 6.6).
fn expand_access(schema: &DataType, path: &Path) -> Vec<Path> {
    let mut out = vec![path.clone()];
    if let Some(sub) = schema.resolve(path) {
        for suffix in sub.schema_paths() {
            out.push(path.join(&suffix));
        }
    }
    out
}

fn record_accesses(p: &OperatorProvenance, schema: &DataType, tree: &mut ProvTree) {
    for input in &p.inputs {
        for a in input.accessed.iter().flatten() {
            for expanded in expand_access(schema, a) {
                tree.access_path(&expanded, p.oid);
            }
        }
    }
}

/// Alg. 3: generic backtracing for `filter`, `select`, and `map`.
fn backtrace_generic<V: ProvView + ?Sized>(
    view: &V,
    index: &BacktraceIndex,
    p: &OperatorProvenance,
    b: Backtrace,
) -> Result<Backtrace> {
    let to_input = index.unary(p.oid)?;
    let input_schema = view.input_schema_of(p.oid, 0);
    let mut out = Backtrace::new();
    for (id, mut tree) in b.entries {
        let Some(&input_id) = to_input.get(&id) else {
            continue;
        };
        match &p.manipulated {
            Some(ms) => {
                tree.manipulate_paths(ms, p.oid);
                // A select fully defines its output: any root attribute
                // still referencing the select's *output* schema after the
                // rewrite (e.g. a struct container whose children were all
                // moved back) does not exist in the input and is dropped,
                // so the tree conforms to the input schema (Sec. 6.2).
                if p.op_type == "select" {
                    if let Some(fields) = input_schema.fields() {
                        tree.retain_roots(|name| fields.iter().any(|f| f.name == name));
                    }
                }
            }
            // Opaque map: no path information. Conservatively, every node
            // of the *input schema* may have been read and restructured to
            // produce the queried output, so all schema nodes are
            // materialized and marked manipulated (Sec. 6.3).
            None => {
                for path in input_schema.schema_paths() {
                    tree.insert(&path, true);
                }
                tree.mark_all_manipulated(p.oid);
            }
        }
        record_accesses(p, input_schema, &mut tree);
        out.entries.push((input_id, tree));
    }
    Ok(out)
}

/// Alg. 2: backtracing `flatten` — generic step with `[pos]` placeholders,
/// then grouping by input id and substituting concrete positions while
/// merging trees.
fn backtrace_flatten<V: ProvView + ?Sized>(
    view: &V,
    index: &BacktraceIndex,
    p: &OperatorProvenance,
    b: Backtrace,
) -> Result<Backtrace> {
    let to_input = index.flatten(p.oid)?;
    let ms = p.manipulated.as_deref().ok_or_else(|| {
        EngineError::BacktraceError(format!(
            "flatten operator #{} captured no manipulations",
            p.oid
        ))
    })?;
    let Some((m_in, _m_out)) = ms.first() else {
        return Err(EngineError::BacktraceError(format!(
            "flatten operator #{} captured an empty manipulation set",
            p.oid
        )));
    };
    let input_schema = view.input_schema_of(p.oid, 0);
    let mut out = Backtrace::new();
    for (id, mut tree) in b.entries {
        let Some(&(input_id, pos)) = to_input.get(&id) else {
            continue;
        };
        // Undo ⟨a_col[pos], a_new⟩, leaving a placeholder node …
        tree.manipulate_paths(ms, p.oid);
        // … then substitute the recorded position (mergeTrees, Alg. 2 l.2).
        tree.fill_placeholder(m_in, pos);
        // Record the access on the concrete element.
        let concrete = m_in.fill_placeholder(pos);
        tree.access_path(&concrete, p.oid);
        record_rest_accesses(p, input_schema, &mut tree, m_in);
        out.entries.push((input_id, tree));
    }
    out.merge_by_id();
    Ok(out)
}

/// Records accesses except the flatten element path (already recorded at a
/// concrete position).
fn record_rest_accesses(
    p: &OperatorProvenance,
    schema: &DataType,
    tree: &mut ProvTree,
    skip: &Path,
) {
    for input in &p.inputs {
        for a in input.accessed.iter().flatten() {
            if a == skip {
                continue;
            }
            for expanded in expand_access(schema, a) {
                tree.access_path(&expanded, p.oid);
            }
        }
    }
}

/// Alg. 4: backtracing aggregation/nesting back to the grouping input.
fn backtrace_aggregation<V: ProvView + ?Sized>(
    view: &V,
    index: &BacktraceIndex,
    p: &OperatorProvenance,
    b: Backtrace,
) -> Result<Backtrace> {
    // pos_flatten (Alg. 4 l. 1): ⟨ids^i, id^o⟩ → ⟨id^i, p_P, id^o⟩.
    let groups = index.agg(p.oid)?;
    let ms = p.manipulated.as_deref().ok_or_else(|| {
        EngineError::BacktraceError(format!(
            "aggregation operator #{} captured no manipulations",
            p.oid
        ))
    })?;
    let input_schema = view.input_schema_of(p.oid, 0);
    // `count(*)`-style aggregates read no attribute, so they have no entry
    // in M; their output attributes still make every group member relevant
    // when queried (each row feeds the count). The nodes are removed from
    // the tree — there is no input attribute to rewrite them to (the view
    // knows which outputs these are; see [`ProvView::countstar_outputs`]).
    let countstar_outputs: Vec<Path> = view.countstar_outputs(p.oid);
    let mut out = Backtrace::new();

    for (out_id, tree) in &b.entries {
        let Some(member_ids) = groups.get(out_id) else {
            continue;
        };
        // Does the query pinpoint concrete positions inside any nested
        // (bag-collected) output? If so, only those positions select
        // members; key mappings alone do not (see module docs).
        let positional_query = ms.iter().any(|(_, m_out)| {
            m_out.has_placeholder() && {
                // A node at the collection attr exists with position child.
                let coll = collection_prefix(m_out);
                tree.contains(&coll.child(Step::AnyPos))
            }
        });

        for (idx, &member_id) in member_ids.iter().enumerate() {
            let p_pos = idx as u32 + 1;
            let mut t = tree.clone();
            let mut in_prov = false;
            // Collection removals are deferred until every mapping has
            // been applied: several mappings may target different
            // attributes inside the same nested collection (whole-item
            // nesting maps one pair per attribute).
            let mut removals: Vec<Path> = Vec::new();
            for (m_in, m_out) in ms {
                if m_out.has_placeholder() {
                    // Bag nesting: the member contributes exactly to the
                    // nested item at its own position (Alg. 4 ll. 6-12).
                    let out_path = m_out.fill_placeholder(p_pos);
                    if t.contains(&out_path) {
                        in_prov = true;
                        t.manipulate_path(m_in, &out_path, p.oid);
                    }
                    // Remove the nested collection's remaining positions
                    // (Alg. 4 l. 13) — after the mapping loop.
                    let prefix = collection_prefix(m_out);
                    if !removals.contains(&prefix) {
                        removals.push(prefix);
                    }
                } else if t.contains(m_out) {
                    let is_key = m_in == m_out
                        && p.inputs[0]
                            .accessed
                            .as_deref()
                            .is_some_and(|a| a.contains(m_in));
                    if !is_key || !positional_query {
                        in_prov = true;
                    }
                    t.manipulate_path(m_in, m_out, p.oid);
                }
            }
            for prefix in &removals {
                t.remove_nodes(prefix);
            }
            for out_path in &countstar_outputs {
                if t.contains(out_path) {
                    if !positional_query {
                        in_prov = true;
                    }
                    t.remove_nodes(out_path);
                }
            }
            if !in_prov {
                continue;
            }
            record_accesses(p, input_schema, &mut t);
            out.entries.push((member_id, t));
        }
    }
    out.merge_by_id();
    Ok(out)
}

/// Truncates at the first `[pos]` placeholder: `tweets[pos]` → `tweets`,
/// `members[pos].k` → `members` — the nested collection whose other
/// positions are removed (Alg. 4 l. 13).
fn collection_prefix(m_out: &Path) -> Path {
    let cut = m_out
        .steps()
        .iter()
        .position(|s| matches!(s, Step::AnyPos))
        .unwrap_or(m_out.len());
    Path::new(m_out.steps()[..cut].iter().cloned())
}

/// Join backtracing for one input side: move to that side's identifiers,
/// undo that side's attribute copies/renames, prune nodes belonging to the
/// other input's schema, and record the key accesses.
fn backtrace_join_side<V: ProvView + ?Sized>(
    view: &V,
    index: &BacktraceIndex,
    p: &OperatorProvenance,
    b: &Backtrace,
    side: usize,
) -> Result<Backtrace> {
    let assoc_index = index.binary(p.oid)?;
    let side_of = |pair: &(Option<ItemId>, Option<ItemId>)| {
        if side == 0 {
            pair.0
        } else {
            pair.1
        }
    };
    let input_schema = view.input_schema_of(p.oid, side);
    let side_fields: Vec<String> = input_schema
        .fields()
        .map(|fs| fs.iter().map(|f| f.name.clone()).collect())
        .unwrap_or_default();
    // Split M by *output* attribute: result attribute names are unique —
    // left fields keep their names, clashing right fields are renamed — so
    // a mapping belongs to the left side iff its output attribute is a
    // left field name.
    let left_fields: Vec<String> = view
        .input_schema_of(p.oid, 0)
        .fields()
        .map(|fs| fs.iter().map(|f| f.name.clone()).collect())
        .unwrap_or_default();
    let ms: Vec<(Path, Path)> = p
        .manipulated
        .as_deref()
        .unwrap_or_default()
        .iter()
        .filter(|(_, m_out)| {
            let is_left_out = match m_out.head() {
                Some(Step::Attr(a)) => left_fields.iter().any(|f| f == a),
                _ => false,
            };
            (side == 0) == is_left_out
        })
        .cloned()
        .collect();
    let mut out = Backtrace::new();
    for (id, tree) in &b.entries {
        let Some(input_id) = assoc_index.get(id).and_then(&side_of) else {
            continue;
        };
        let mut t = tree.clone();
        t.manipulate_paths(&ms, p.oid);
        // Drop nodes that reference the other input's schema.
        t.retain_roots(|name| side_fields.iter().any(|f| f == name));
        for a in p.inputs[side].accessed.iter().flatten() {
            for expanded in expand_access(input_schema, a) {
                t.access_path(&expanded, p.oid);
            }
        }
        out.entries.push((input_id, t));
    }
    Ok(out)
}

/// Union backtracing for one input side: keep the entries that originate
/// from that side (the other side's field is undefined); trees pass
/// through unchanged (`A = M = ∅`).
fn backtrace_union_side(
    index: &BacktraceIndex,
    p: &OperatorProvenance,
    b: &Backtrace,
    side: usize,
) -> Result<Backtrace> {
    let assoc_index = index.binary(p.oid)?;
    let mut out = Backtrace::new();
    for (id, tree) in &b.entries {
        let Some(pair) = assoc_index.get(id) else {
            continue;
        };
        let input_id = if side == 0 { pair.0 } else { pair.1 };
        if let Some(input_id) = input_id {
            out.entries.push((input_id, tree.clone()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::run_captured;
    use pebble_dataflow::{
        context::items_of, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, NamedExpr,
        ProgramBuilder,
    };
    use pebble_nested::{DataItem, Value};

    fn cfg() -> ExecConfig {
        ExecConfig::with_partitions(2)
    }

    fn simple_ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
                vec![("k", Value::str("a")), ("v", Value::Int(3))],
            ]),
        );
        c
    }

    fn whole_tree(paths: &[&str]) -> ProvTree {
        let owned: Vec<Path> = paths.iter().map(|p| Path::parse(p)).collect();
        ProvTree::from_paths(owned.iter())
    }

    #[test]
    fn filter_backtrace_marks_access() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let run = run_captured(&b.build(f), &simple_ctx(), cfg()).unwrap();
        // Trace the first result item (k=b) asking about k.
        let first = &run.output.rows[0];
        let bt = Backtrace {
            entries: vec![(first.id, whole_tree(&["k"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        assert_eq!(sources.len(), 1);
        let entries = &sources[0].entries;
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].index, 1); // second source item (k=b)
        let tree = &entries[0].tree;
        assert!(tree.contains(&Path::attr("k")));
        // v was accessed by the filter: influencing node with a{1}.
        let v = tree
            .nodes()
            .into_iter()
            .find(|(p, _)| *p == Path::attr("v"))
            .unwrap()
            .1;
        assert!(!v.contributing);
        assert!(v.accessed.contains(&1));
    }

    #[test]
    fn select_backtrace_renames() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let s = b.select(r, vec![NamedExpr::aliased("key", "k")]);
        let run = run_captured(&b.build(s), &simple_ctx(), cfg()).unwrap();
        let first = &run.output.rows[0];
        let bt = Backtrace {
            entries: vec![(first.id, whole_tree(&["key"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        let tree = &sources[0].entries[0].tree;
        assert!(tree.contains(&Path::attr("k")));
        assert!(!tree.contains(&Path::attr("key")));
        let k = &tree.nodes()[0].1;
        assert!(k.manipulated.contains(&1));
        assert!(k.contributing);
    }

    #[test]
    fn union_backtrace_splits_sides() {
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let run = run_captured(&b.build(u), &simple_ctx(), cfg()).unwrap();
        // Trace all six result items.
        let bt = Backtrace {
            entries: run
                .output
                .rows
                .iter()
                .map(|row| (row.id, whole_tree(&["k"])))
                .collect(),
        };
        let sources = backtrace(&run, bt).unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].entries.len(), 3);
        assert_eq!(sources[1].entries.len(), 3);
    }

    #[test]
    fn aggregation_scalar_pulls_all_members() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::Sum, "v", "total")],
        );
        let run = run_captured(&b.build(g), &simple_ctx(), cfg()).unwrap();
        let group_a = run
            .output
            .rows
            .iter()
            .find(|row| row.item.get("k") == Some(&Value::str("a")))
            .unwrap();
        let bt = Backtrace {
            entries: vec![(group_a.id, whole_tree(&["total"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        // Both k=a members contribute to the sum.
        assert_eq!(sources[0].entries.len(), 2);
        let idx: Vec<usize> = sources[0].entries.iter().map(|e| e.index).collect();
        assert_eq!(idx, [0, 2]);
        // The sum input path v is back in the tree.
        assert!(sources[0].entries[0].tree.contains(&Path::attr("v")));
    }

    #[test]
    fn aggregation_positional_selects_single_member() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        );
        let run = run_captured(&b.build(g), &simple_ctx(), cfg()).unwrap();
        let group_a = run
            .output
            .rows
            .iter()
            .find(|row| row.item.get("k") == Some(&Value::str("a")))
            .unwrap();
        // Query pinpoints the second nested element (v=3, source index 2).
        let bt = Backtrace {
            entries: vec![(group_a.id, whole_tree(&["k", "vs[2]"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        assert_eq!(sources[0].entries.len(), 1);
        assert_eq!(sources[0].entries[0].index, 2);
        let tree = &sources[0].entries[0].tree;
        // vs[2] was transformed back to the input attribute v.
        assert!(tree.contains(&Path::attr("v")));
        // The group key is marked accessed by the aggregation.
        let k = tree
            .nodes()
            .into_iter()
            .find(|(p, _)| *p == Path::attr("k"))
            .unwrap()
            .1;
        assert!(k.accessed.contains(&1));
    }

    #[test]
    fn aggregation_key_only_query_returns_group() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "v", "vs")],
        );
        let run = run_captured(&b.build(g), &simple_ctx(), cfg()).unwrap();
        let group_a = run
            .output
            .rows
            .iter()
            .find(|row| row.item.get("k") == Some(&Value::str("a")))
            .unwrap();
        let bt = Backtrace {
            entries: vec![(group_a.id, whole_tree(&["k"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        // No positional query: the whole group contributes to the key.
        assert_eq!(sources[0].entries.len(), 2);
    }

    #[test]
    fn flatten_backtrace_restores_position() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![vec![
                ("id", Value::Int(7)),
                (
                    "ms",
                    Value::Bag(vec![
                        Value::Item(DataItem::from_fields([("x", Value::str("p"))])),
                        Value::Item(DataItem::from_fields([("x", Value::str("q"))])),
                    ]),
                ),
            ]]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.flatten(r, "ms", "m");
        let run = run_captured(&b.build(f), &c, cfg()).unwrap();
        // Trace the second exploded row's m.x.
        let second = &run.output.rows[1];
        let bt = Backtrace {
            entries: vec![(second.id, whole_tree(&["m.x"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        let tree = &sources[0].entries[0].tree;
        assert!(tree.contains(&Path::parse("ms[2].x")));
        assert!(!tree.contains(&Path::attr("m")));
    }

    #[test]
    fn flatten_merges_same_input_trees() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![vec![(
                "ms",
                Value::Bag(vec![Value::Int(1), Value::Int(2)]),
            )]]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.flatten(r, "ms", "m");
        let run = run_captured(&b.build(f), &c, cfg()).unwrap();
        let bt = Backtrace {
            entries: run
                .output
                .rows
                .iter()
                .map(|row| (row.id, whole_tree(&["m"])))
                .collect(),
        };
        let sources = backtrace(&run, bt).unwrap();
        // Both exploded rows trace to the single input item, trees merged.
        assert_eq!(sources[0].entries.len(), 1);
        let tree = &sources[0].entries[0].tree;
        assert!(tree.contains(&Path::parse("ms[1]")));
        assert!(tree.contains(&Path::parse("ms[2]")));
    }

    #[test]
    fn join_backtrace_prunes_other_side() {
        let mut c = Context::new();
        c.register(
            "l",
            items_of(vec![vec![("k", Value::Int(1)), ("lv", Value::str("L"))]]),
        );
        c.register(
            "r",
            items_of(vec![vec![("k", Value::Int(1)), ("rv", Value::str("R"))]]),
        );
        let mut b = ProgramBuilder::new();
        let lo = b.read("l");
        let ro = b.read("r");
        let j = b.join(lo, ro, vec![(Path::attr("k"), Path::attr("k"))]);
        let run = run_captured(&b.build(j), &c, cfg()).unwrap();
        let row = &run.output.rows[0];
        // Result schema: k, lv, k_r, rv. Trace lv and rv.
        let bt = Backtrace {
            entries: vec![(row.id, whole_tree(&["lv", "rv"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        assert_eq!(sources.len(), 2);
        let left = sources.iter().find(|s| s.source == "l").unwrap();
        let right = sources.iter().find(|s| s.source == "r").unwrap();
        assert!(left.entries[0].tree.contains(&Path::attr("lv")));
        assert!(!left.entries[0].tree.contains(&Path::attr("rv")));
        assert!(right.entries[0].tree.contains(&Path::attr("rv")));
        assert!(!right.entries[0].tree.contains(&Path::attr("lv")));
        // Join key access recorded on both sides.
        let lk = left.entries[0]
            .tree
            .nodes()
            .into_iter()
            .find(|(p, _)| *p == Path::attr("k"))
            .unwrap()
            .1;
        assert!(lk.accessed.contains(&2));
    }

    #[test]
    fn join_backtrace_renamed_right_key() {
        let mut c = Context::new();
        c.register(
            "l",
            items_of(vec![vec![("k", Value::Int(1)), ("lv", Value::str("L"))]]),
        );
        c.register(
            "r",
            items_of(vec![vec![("k", Value::Int(1)), ("rv", Value::str("R"))]]),
        );
        let mut b = ProgramBuilder::new();
        let lo = b.read("l");
        let ro = b.read("r");
        let j = b.join(lo, ro, vec![(Path::attr("k"), Path::attr("k"))]);
        let run = run_captured(&b.build(j), &c, cfg()).unwrap();
        let row = &run.output.rows[0];
        // Trace the renamed right key k_r.
        let bt = Backtrace {
            entries: vec![(row.id, whole_tree(&["k_r"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        let right = sources.iter().find(|s| s.source == "r").unwrap();
        assert!(right.entries[0].tree.contains(&Path::attr("k")));
        let left = sources.iter().find(|s| s.source == "l").unwrap();
        // Left side: k_r belongs to the right schema; only the access to
        // the left join key remains (influencing).
        let ktree = &left.entries[0].tree;
        assert!(!ktree.contains(&Path::attr("k_r")));
    }

    #[test]
    fn map_backtrace_marks_everything_manipulated() {
        use pebble_dataflow::MapUdf;
        use std::sync::Arc;
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let m = b.map(
            r,
            MapUdf {
                name: "noop".into(),
                f: Arc::new(Clone::clone),
                output_schema: None,
            },
        );
        let run = run_captured(&b.build(m), &simple_ctx(), cfg()).unwrap();
        let row = &run.output.rows[0];
        let bt = Backtrace {
            entries: vec![(row.id, whole_tree(&["k", "v"]))],
        };
        let sources = backtrace(&run, bt).unwrap();
        let tree = &sources[0].entries[0].tree;
        assert!(tree.nodes().iter().all(|(_, n)| n.manipulated.contains(&1)));
    }
}

#[cfg(test)]
mod dag_tests {
    use super::*;
    use crate::capture::run_captured;
    use crate::{PatternNode, TreePattern};
    use pebble_dataflow::{context::items_of, Context, ExecConfig, Expr, ProgramBuilder};
    use pebble_nested::Value;

    /// Diamond DAG: one read feeds two filter branches that re-unite. The
    /// per-read accumulation must merge trees arriving via both branches.
    #[test]
    fn diamond_dag_merges_at_shared_read() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::Int(1)), ("v", Value::Int(5))],
                vec![("k", Value::Int(2)), ("v", Value::Int(50))],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let low = b.filter(r, Expr::col("v").lt(Expr::lit(100i64)));
        let high = b.filter(r, Expr::col("v").ge(Expr::lit(0i64)));
        let u = b.union(low, high);
        let p = b.build(u);
        let run = run_captured(&p, &c, ExecConfig::with_partitions(2)).unwrap();
        assert_eq!(run.output.rows.len(), 4); // both items pass both filters

        // Trace every result item asking about k.
        let pattern = TreePattern::root().node(PatternNode::attr("k").eq(1i64));
        let bt = pattern.match_rows(&run.output.rows);
        assert_eq!(bt.entries.len(), 2); // item 1 via both branches
        let sources = backtrace(&run, bt).unwrap();
        // One read, entries merged by input id: a single traced item.
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].entries.len(), 1);
        let tree = &sources[0].entries[0].tree;
        // The v access carries both filters' operator ids (1 and 2).
        let v = tree
            .nodes()
            .into_iter()
            .find(|(p, _)| *p == Path::attr("v"))
            .unwrap()
            .1;
        assert!(v.accessed.contains(&1));
        assert!(v.accessed.contains(&2));
    }

    /// Backtracing an empty structure is a no-op.
    #[test]
    fn empty_backtrace_yields_nothing() {
        let mut c = Context::new();
        c.register("t", items_of(vec![vec![("k", Value::Int(1))]]));
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::lit(true));
        let run = run_captured(&b.build(f), &c, ExecConfig::with_partitions(1)).unwrap();
        let sources = backtrace(&run, Backtrace::new()).unwrap();
        assert!(sources.is_empty());
    }

    /// Ids that do not exist in the result are skipped gracefully.
    #[test]
    fn unknown_ids_are_skipped() {
        let mut c = Context::new();
        c.register("t", items_of(vec![vec![("k", Value::Int(1))]]));
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::lit(true));
        let run = run_captured(&b.build(f), &c, ExecConfig::with_partitions(1)).unwrap();
        let bogus = Backtrace {
            entries: vec![(u64::MAX, ProvTree::new())],
        };
        let sources = backtrace(&run, bogus).unwrap();
        assert!(sources.iter().all(|s| s.entries.is_empty()));
    }
}

#[cfg(test)]
mod nest_tests {
    use super::*;
    use crate::capture::run_captured;
    use pebble_dataflow::{context::items_of, Context, ExecConfig, GroupKey, ProgramBuilder};
    use pebble_nested::Value;

    /// Backtracing through the paper's grouping/nesting operator: a query
    /// pinpointing one nested member traces exactly that input item, and
    /// the member's attributes rewrite from `members[pos].attr` back to
    /// top-level `attr`.
    #[test]
    fn whole_item_nesting_backtraces_positionally() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::Int(1)), ("v", Value::Int(10))],
                vec![("k", Value::Int(1)), ("v", Value::Int(20))],
                vec![("k", Value::Int(2)), ("v", Value::Int(30))],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let n = b.nest(r, vec![GroupKey::new("k")], "members");
        let run = run_captured(&b.build(n), &c, ExecConfig::with_partitions(2)).unwrap();
        let g1 = run
            .output
            .rows
            .iter()
            .find(|r| r.item.get("k") == Some(&Value::Int(1)))
            .unwrap();
        // Query the second nested member's v.
        let mut tree = ProvTree::new();
        tree.insert(&Path::parse("members[2].v"), true);
        let sources = backtrace(
            &run,
            Backtrace {
                entries: vec![(g1.id, tree)],
            },
        )
        .unwrap();
        assert_eq!(sources[0].entries.len(), 1);
        let entry = &sources[0].entries[0];
        assert_eq!(entry.index, 1); // the second k=1 input item
        assert!(entry.tree.contains(&Path::attr("v")));
        // Grouping key marked accessed.
        let k = entry
            .tree
            .nodes()
            .into_iter()
            .find(|(p, _)| *p == Path::attr("k"))
            .unwrap()
            .1;
        assert!(k.accessed.contains(&1));
    }
}
