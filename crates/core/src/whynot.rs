//! Why-not (missing-answer) explanations over captured structural
//! provenance.
//!
//! Given an expected-but-absent output pattern — a conjunction of
//! `path = value` conditions over the sink schema — the backend explains
//! *why* no output item matches: it maps the conditions backwards through
//! the operators' manipulation sets `M` onto each `read` source, selects
//! the candidate source items that satisfy the (traceable) conditions,
//! and then walks the candidates **forward** through the captured
//! association tables (Tab. 6) along every read→sink route. The first
//! operator on a route at which a candidate's identifier set becomes
//! empty is its *pruning frontier* — the operator (and, for filters, the
//! predicate) that eliminated the expected derivation.
//!
//! The semantics deliberately over-approximates when a condition cannot
//! be mapped backwards (opaque `map`s, computed `select` columns,
//! aggregate outputs): the condition is dropped and the candidate set
//! grows, so explanations become coarser, never wrong. This follows the
//! missing-answer tradition of Diestelkämper & Herschel's follow-up work
//! ("To not miss the forest for the trees"): explain the absence with the
//! pruning operators, at the granularity the captured provenance affords.
//!
//! Everything in the rendered answer is identifier-free — output row
//! positions, source dataset indices, operator ids, and schema-level
//! paths — so answers are byte-identical across partition counts, worker
//! counts, columnar on/off, and spill budgets. The differential oracle
//! (`pebble-oracle`) re-implements [`why_not`]'s candidate selection and
//! forward walk naively, one candidate at a time with linear scans, and
//! compares rendered answers byte for byte.

use pebble_dataflow::hash::{FxHashMap, FxHashSet};
use pebble_dataflow::{Context, EngineError, ItemId, OpId, OpKind, Program, Result};
use pebble_nested::{DataItem, Path, Value};

use crate::capture::{CapturedRun, ProvAssoc};

/// One `path = value` conjunct of a why-not question.
#[derive(Clone, Debug, PartialEq)]
pub struct Condition {
    /// Schema-level path over the sink schema (positions become `[pos]`).
    pub path: Path,
    /// Expected value at that path (existence semantics inside
    /// collections: some element must match).
    pub value: Value,
}

/// Upper bound on the read→sink routes a why-not answer enumerates; DAGs
/// past this are answered from the first `MAX_ROUTES` routes in
/// deterministic DFS order.
pub const MAX_ROUTES: usize = 64;

/// Constructs the (shared) error for an unparsable why-not question.
/// Both the engine and the oracle reference answer malformed questions
/// through this constructor, so their error `Display`s agree exactly.
pub fn whynot_parse_error(detail: &str) -> EngineError {
    EngineError::BacktraceError(format!("why-not query: {detail}"))
}

/// Parses `path=value[,path=value…]` into conditions. Values are JSON
/// literals (`"str"`, `42`, `1.5`, `true`, `null`); the path is parsed
/// with [`Path::parse`] and lifted to schema level. Commas inside string
/// literals do not split conjuncts.
pub fn parse_whynot_query(query: &str) -> Result<Vec<Condition>> {
    let query = query.trim();
    if query.is_empty() {
        return Err(whynot_parse_error("empty question"));
    }
    let mut conds = Vec::new();
    for part in split_top_level(query) {
        let part = part.trim();
        let Some((path, value)) = part.split_once('=') else {
            return Err(whynot_parse_error(&format!(
                "expected `path=value`, got `{part}`"
            )));
        };
        let path = path.trim();
        if path.is_empty() {
            return Err(whynot_parse_error(&format!("missing path in `{part}`")));
        }
        let value = pebble_nested::json::parse(value.trim())
            .map_err(|e| whynot_parse_error(&format!("bad value in `{part}`: {e}")))?;
        conds.push(Condition {
            path: Path::parse(path).to_schema_level(),
            value,
        });
    }
    Ok(conds)
}

/// Splits on `,` outside of double-quoted strings.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_str, mut escaped) = (0usize, false, false);
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'\\' if in_str => escaped = !escaped,
            b'"' if !escaped => in_str = !in_str,
            b',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&s[start..]);
    out
}

/// Does `item` satisfy the condition? Existence semantics: at least one
/// value reached by the (schema-level) path equals the expected value.
pub fn condition_holds(cond: &Condition, item: &DataItem) -> bool {
    cond.path
        .eval_all(item)
        .into_iter()
        .any(|v| *v == cond.value)
}

/// One read→sink route: the read operator plus, per downstream operator,
/// which of its inputs the route enters through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// The `read` operator the route starts at.
    pub read_op: OpId,
    /// Downstream operators in route order, with the input index entered.
    pub ops: Vec<(OpId, usize)>,
}

/// Enumerates every read→sink route of the program in deterministic DFS
/// order (reads ascending, consumers ascending), capped at
/// [`MAX_ROUTES`]. Shared between the engine and the oracle reference —
/// routes are program structure, not provenance computation.
pub fn enumerate_routes(program: &Program) -> Vec<Route> {
    let consumers = program.consumers();
    let sink = program.sink();
    let mut routes = Vec::new();
    for (read_op, _) in program.reads() {
        let mut stack: Vec<(OpId, Vec<(OpId, usize)>)> = vec![(read_op, Vec::new())];
        while let Some((at, path)) = stack.pop() {
            if routes.len() >= MAX_ROUTES {
                return routes;
            }
            if at == sink {
                routes.push(Route { read_op, ops: path });
                continue;
            }
            let mut nexts: Vec<(OpId, usize)> = Vec::new();
            for &c in consumers.get(&at).map(Vec::as_slice).unwrap_or(&[]) {
                for (idx, &input) in program.operators()[c as usize].inputs.iter().enumerate() {
                    if input == at {
                        nexts.push((c, idx));
                    }
                }
            }
            // DFS with a stack pops in reverse push order; push descending
            // so routes come out ascending.
            nexts.sort_unstable();
            for &(c, idx) in nexts.iter().rev() {
                let mut p = path.clone();
                p.push((c, idx));
                stack.push((c, p));
            }
        }
    }
    routes
}

/// Maps one condition backwards through operator `oid`, entered via input
/// `side`, onto that input's schema. `None` means the condition is not
/// traceable through this operator (it stops constraining candidates).
///
/// The rules mirror how the capture derives `M` (Sec. 5.1):
/// * `filter` / `union` / `read` keep items whole — identity;
/// * `map` is opaque (`M = ⊥`) — untraceable;
/// * `flatten` rewrites `new_attr…` to `col[pos]…`, other attributes pass
///   through unchanged;
/// * `select` and `group-aggregate` rewrite by the longest matching
///   output prefix in `M`; computed/aggregated outputs are untraceable;
/// * `join` maps left attributes identically and right attributes by
///   undoing the clash renaming; an attribute that does not belong to the
///   entered side is untraceable through that side.
pub fn map_condition_back(run: &CapturedRun, oid: OpId, side: usize, path: &Path) -> Option<Path> {
    let op = &run.program.operators()[oid as usize];
    match &op.kind {
        OpKind::Read { .. } | OpKind::Filter { .. } | OpKind::Union => Some(path.clone()),
        OpKind::Map { .. } => None,
        OpKind::Flatten { col, new_attr } => {
            let out_prefix = Path::attr(new_attr);
            match path.replace_prefix(
                &out_prefix,
                &col.to_schema_level().child(pebble_nested::Step::AnyPos),
            ) {
                Some(rewritten) => Some(rewritten),
                None => Some(path.clone()),
            }
        }
        OpKind::Select { .. } | OpKind::GroupAggregate { .. } => {
            longest_prefix_rewrite(run.op(oid).manipulated.as_deref()?, path)
        }
        OpKind::Join { .. } => {
            let first = path.head()?.clone();
            let pebble_nested::Step::Attr(attr) = &first else {
                return None;
            };
            let my_fields: Vec<String> = run
                .input_schema(oid, side)
                .fields()
                .map(|fs| fs.iter().map(|f| f.name.clone()).collect())
                .unwrap_or_default();
            if side == 0 {
                return my_fields.contains(attr).then(|| path.clone());
            }
            // Right side: undo the clash renaming recorded in M, else
            // identity for non-clashing right attributes.
            if let Some(m) = run.op(oid).manipulated.as_deref() {
                for (src, dst) in m {
                    if src != dst {
                        if let Some(p) = path.replace_prefix(dst, src) {
                            return Some(p);
                        }
                    }
                }
            }
            my_fields.contains(attr).then(|| path.clone())
        }
    }
}

/// Rewrites `path` by the `M` pair whose output side is its longest
/// prefix; `None` when no pair matches.
fn longest_prefix_rewrite(m: &[(Path, Path)], path: &Path) -> Option<Path> {
    let mut best: Option<(usize, Path)> = None;
    for (src, dst) in m {
        if let Some(rewritten) = path.replace_prefix(dst, src) {
            if best.as_ref().is_none_or(|(len, _)| dst.len() > *len) {
                best = Some((dst.len(), rewritten));
            }
        }
    }
    best.map(|(_, p)| p)
}

/// Explanation of one route: which source items were candidates, where
/// each was pruned, and which reached the output after all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteExplanation {
    /// The route explained.
    pub route: Route,
    /// Source dataset name of the route's read.
    pub source: String,
    /// Conditions (indices into the question) that could be traced back
    /// to this route's source and thus constrained the candidates.
    pub traced_conditions: Vec<usize>,
    /// Candidate source items (dataset indices, ascending).
    pub candidates: Vec<usize>,
    /// Per candidate (parallel to `candidates`): the operator on the
    /// route at which its derivations died, or `None` if it survived.
    pub pruned_at: Vec<Option<OpId>>,
    /// Candidates that reached the sink, with the output row positions
    /// they produced (the expected item exists structurally but fails the
    /// question's conditions there).
    pub survived: Vec<(usize, Vec<usize>)>,
}

/// A complete why-not answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WhyNotAnswer {
    /// Output row positions that already satisfy every condition (the
    /// question is not actually missing). Non-empty short-circuits the
    /// route analysis.
    pub found: Vec<usize>,
    /// One explanation per enumerated route.
    pub routes: Vec<RouteExplanation>,
}

impl WhyNotAnswer {
    /// Renders the answer as identifier-free lines. Shared between the
    /// engine and the oracle reference; the algorithms that *fill*
    /// [`WhyNotAnswer`] are what the differential fuzz compares.
    pub fn render(&self, run: &CapturedRun) -> Vec<String> {
        if !self.found.is_empty() {
            let rows: Vec<String> = self.found.iter().map(usize::to_string).collect();
            return vec![format!("found: output rows {}", rows.join(","))];
        }
        let mut out = vec!["missing: no output row satisfies the question".to_string()];
        for r in &self.routes {
            let hops: Vec<String> = r
                .route
                .ops
                .iter()
                .map(|(oid, side)| format!("#{oid}:{}/{side}", run.op(*oid).op_type))
                .collect();
            out.push(format!(
                "route #{}:{} -> {}",
                r.route.read_op,
                r.source,
                if hops.is_empty() {
                    "(sink)".to_string()
                } else {
                    hops.join(" -> ")
                }
            ));
            if r.candidates.is_empty() {
                out.push(
                    "  no candidate source items satisfy the traceable conditions".to_string(),
                );
                continue;
            }
            let cands: Vec<String> = r.candidates.iter().map(usize::to_string).collect();
            out.push(format!(
                "  candidates ({} traced conditions): [{}]",
                r.traced_conditions.len(),
                cands.join(",")
            ));
            // Group pruned candidates by frontier operator, route order.
            for &(oid, _) in &r.route.ops {
                let at: Vec<String> = r
                    .candidates
                    .iter()
                    .zip(&r.pruned_at)
                    .filter(|(_, p)| **p == Some(oid))
                    .map(|(c, _)| c.to_string())
                    .collect();
                if !at.is_empty() {
                    let op = run.op(oid);
                    let detail = match &run.program.operators()[oid as usize].kind {
                        OpKind::Filter { predicate } => format!(" predicate {predicate:?}"),
                        OpKind::Join { keys } => {
                            let ks: Vec<String> =
                                keys.iter().map(|(l, r)| format!("{l}={r}")).collect();
                            format!(" on {}", ks.join(","))
                        }
                        _ => String::new(),
                    };
                    out.push(format!(
                        "  pruned at #{oid}:{}{detail}: [{}]",
                        op.op_type,
                        at.join(",")
                    ));
                }
            }
            for (cand, rows) in &r.survived {
                let rs: Vec<String> = rows.iter().map(usize::to_string).collect();
                out.push(format!(
                    "  candidate {cand} reaches output rows [{}] without matching the question",
                    rs.join(",")
                ));
            }
        }
        out
    }
}

/// Computes the why-not explanation for a conjunction of conditions —
/// the engine implementation: per-operator association indexes are built
/// once and every candidate's identifier set is advanced through them.
pub fn why_not(run: &CapturedRun, ctx: &Context, conds: &[Condition]) -> Result<WhyNotAnswer> {
    if conds.is_empty() {
        return Err(whynot_parse_error("empty question"));
    }
    let found: Vec<usize> = run
        .output
        .rows
        .iter()
        .enumerate()
        .filter(|(_, row)| conds.iter().all(|c| condition_holds(c, &row.item)))
        .map(|(i, _)| i)
        .collect();
    if !found.is_empty() {
        return Ok(WhyNotAnswer {
            found,
            routes: Vec::new(),
        });
    }

    // Output row position by identifier, for reporting survivors.
    let row_pos: FxHashMap<ItemId, usize> = run
        .output
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| (r.id, i))
        .collect();

    let mut routes = Vec::new();
    for route in enumerate_routes(&run.program) {
        let source = source_name(&run.program, route.read_op)?;
        let items = ctx
            .source(&source)
            .ok_or_else(|| EngineError::UnknownSource(source.clone()))?;

        // Map each condition backwards along the route (sink to read).
        let mut traced_conditions = Vec::new();
        let mut source_conds: Vec<Condition> = Vec::new();
        for (ci, cond) in conds.iter().enumerate() {
            let mut path = Some(cond.path.clone());
            for &(oid, side) in route.ops.iter().rev() {
                path = path.and_then(|p| map_condition_back(run, oid, side, &p));
            }
            if let Some(path) = path {
                traced_conditions.push(ci);
                source_conds.push(Condition {
                    path,
                    value: cond.value.clone(),
                });
            }
        }

        let candidates: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, item)| source_conds.iter().all(|c| condition_holds(c, item)))
            .map(|(i, _)| i)
            .collect();

        // Forward walk: candidate dataset index -> identifier set.
        let read_ids = read_ids(run, route.read_op)?;
        let mut alive: Vec<(usize, FxHashSet<ItemId>)> = candidates
            .iter()
            .filter_map(|&c| read_ids.get(c).map(|&id| (c, FxHashSet::from_iter([id]))))
            .collect();
        let mut pruned: FxHashMap<usize, OpId> = FxHashMap::default();
        for &(oid, side) in &route.ops {
            let index = forward_index(&run.op(oid).assoc, side);
            for (cand, ids) in alive.iter_mut() {
                if ids.is_empty() {
                    continue;
                }
                let next: FxHashSet<ItemId> = ids
                    .iter()
                    .filter_map(|id| index.get(id))
                    .flatten()
                    .copied()
                    .collect();
                if next.is_empty() {
                    pruned.insert(*cand, oid);
                }
                *ids = next;
            }
        }

        let pruned_at: Vec<Option<OpId>> =
            candidates.iter().map(|c| pruned.get(c).copied()).collect();
        let mut survived = Vec::new();
        for (cand, ids) in &alive {
            let mut rows: Vec<usize> = ids
                .iter()
                .filter_map(|id| row_pos.get(id))
                .copied()
                .collect();
            if !rows.is_empty() {
                rows.sort_unstable();
                survived.push((*cand, rows));
            }
        }
        survived.sort_unstable();

        routes.push(RouteExplanation {
            route,
            source,
            traced_conditions,
            candidates,
            pruned_at,
            survived,
        });
    }
    Ok(WhyNotAnswer {
        found: Vec::new(),
        routes,
    })
}

/// Source dataset name of a read operator.
pub fn source_name(program: &Program, read_op: OpId) -> Result<String> {
    match &program.operators()[read_op as usize].kind {
        OpKind::Read { source } => Ok(source.clone()),
        _ => Err(EngineError::BacktraceError(format!(
            "operator #{read_op} is not a read"
        ))),
    }
}

/// The identifiers a read assigned, in dataset order.
pub fn read_ids(run: &CapturedRun, read_op: OpId) -> Result<Vec<ItemId>> {
    match &run.op(read_op).assoc {
        ProvAssoc::Read(ids) => Ok(ids.clone()),
        _ => Err(EngineError::BacktraceError(format!(
            "operator #{read_op} has no read associations"
        ))),
    }
}

/// Builds the input→outputs index of one association table, keyed by the
/// given input side for binary operators.
fn forward_index(assoc: &ProvAssoc, side: usize) -> FxHashMap<ItemId, Vec<ItemId>> {
    let mut index: FxHashMap<ItemId, Vec<ItemId>> = FxHashMap::default();
    match assoc {
        ProvAssoc::Read(_) => {}
        ProvAssoc::Unary(v) => {
            for &(i, o) in v {
                index.entry(i).or_default().push(o);
            }
        }
        ProvAssoc::Binary(v) => {
            for &(l, r, o) in v {
                if let Some(i) = if side == 0 { l } else { r } {
                    index.entry(i).or_default().push(o);
                }
            }
        }
        ProvAssoc::Flatten(v) => {
            for &(i, _, o) in v {
                index.entry(i).or_default().push(o);
            }
        }
        ProvAssoc::Agg(v) => {
            for (members, o) in v {
                for &m in members {
                    index.entry(m).or_default().push(*o);
                }
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::run_captured;
    use pebble_dataflow::{context::items_of, ExecConfig, Expr, MapUdf, ProgramBuilder};
    use std::sync::Arc;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
                vec![("k", Value::str("a")), ("v", Value::Int(3))],
            ]),
        );
        c
    }

    #[test]
    fn query_parsing() {
        let conds = parse_whynot_query(r#" k="a,b" , v=2 "#).unwrap();
        assert_eq!(conds.len(), 2);
        assert_eq!(conds[0].path, Path::parse("k"));
        assert_eq!(conds[0].value, Value::str("a,b"));
        assert_eq!(conds[1].value, Value::Int(2));
        assert!(parse_whynot_query("").is_err());
        assert!(parse_whynot_query("novalue").is_err());
        assert!(parse_whynot_query("v=").is_err());
        assert!(parse_whynot_query("=2").is_err());
        let err = parse_whynot_query("").unwrap_err();
        assert_eq!(
            err.to_string(),
            "backtrace failed: why-not query: empty question"
        );
    }

    #[test]
    fn routes_enumerate_deterministically() {
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let f = b.filter(u, Expr::lit(true));
        let routes = enumerate_routes(&b.build(f));
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].read_op, 0);
        assert_eq!(routes[0].ops, vec![(2, 0), (3, 0)]);
        assert_eq!(routes[1].read_op, 1);
        assert_eq!(routes[1].ops, vec![(2, 1), (3, 0)]);
    }

    #[test]
    fn found_short_circuits() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let run = run_captured(&b.build(f), &ctx(), ExecConfig::with_partitions(2)).unwrap();
        let conds = parse_whynot_query("v=2").unwrap();
        let answer = why_not(&run, &ctx(), &conds).unwrap();
        assert_eq!(
            answer.render(&run),
            vec!["found: output rows 0".to_string()]
        );
    }

    #[test]
    fn filtered_candidate_reports_pruning_frontier() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let run = run_captured(&b.build(f), &ctx(), ExecConfig::with_partitions(2)).unwrap();
        let conds = parse_whynot_query("v=1").unwrap();
        let lines = why_not(&run, &ctx(), &conds).unwrap().render(&run);
        assert_eq!(lines[0], "missing: no output row satisfies the question");
        assert_eq!(lines[1], "route #0:t -> #1:filter/0");
        assert_eq!(lines[2], "  candidates (1 traced conditions): [0]");
        assert!(
            lines[3].starts_with("  pruned at #1:filter predicate ") && lines[3].ends_with(": [0]"),
            "unexpected frontier line: {}",
            lines[3]
        );
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn opaque_map_drops_condition_and_reports_survivors() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let m = b.map(
            r,
            MapUdf {
                name: "identity".into(),
                f: Arc::new(Clone::clone),
                output_schema: None,
            },
        );
        let run = run_captured(&b.build(m), &ctx(), ExecConfig::with_partitions(2)).unwrap();
        let conds = parse_whynot_query("v=999").unwrap();
        let answer = why_not(&run, &ctx(), &conds).unwrap();
        // The condition cannot be traced through the opaque map: all three
        // source items are candidates, and all survive to the output.
        let lines = answer.render(&run);
        assert_eq!(lines[2], "  candidates (0 traced conditions): [0,1,2]");
        assert_eq!(
            lines[3],
            "  candidate 0 reaches output rows [0] without matching the question"
        );
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn flatten_condition_maps_to_collection() {
        let mut c = Context::new();
        c.register(
            "n",
            items_of(vec![vec![(
                "xs",
                Value::Bag(vec![Value::Int(1), Value::Int(2)]),
            )]]),
        );
        let mut b = ProgramBuilder::new();
        let r = b.read("n");
        let fl = b.flatten(r, "xs", "x");
        let run = run_captured(&b.build(fl), &c, ExecConfig::with_partitions(1)).unwrap();
        let p = map_condition_back(&run, 1, 0, &Path::parse("x")).unwrap();
        assert_eq!(p, Path::parse("xs").child(pebble_nested::Step::AnyPos));
        // A condition on the flattened element selects the owning item.
        let conds = parse_whynot_query("x=7").unwrap();
        let lines = why_not(&run, &c, &conds).unwrap().render(&run);
        assert_eq!(lines[1], "route #0:n -> #1:flatten/0");
        assert_eq!(
            lines[2],
            "  no candidate source items satisfy the traceable conditions"
        );
    }
}
