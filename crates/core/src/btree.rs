//! Backtracing structures and trees (Defs. 6.2 and 6.3).
//!
//! A backtracing structure `B = {{⟨id, T⟩}}` pairs top-level item
//! identifiers with backtracing trees. Tree nodes reference attributes (or
//! positions within nested collections) and carry
//!
//! * the set `A` of operators that *accessed* the attribute,
//! * the set `M` of operators that *manipulated* (restructured) it,
//! * the flag `c`: `true` for *contributing* nodes (needed to reproduce the
//!   queried items), `false` for *influencing* nodes (accessed during
//!   processing but not required for reproduction).
//!
//! The two tree-rewriting methods of Sec. 6.2 live here:
//! [`ProvTree::manipulate_path`] undoes one structural manipulation
//! recorded in `P.M`, and [`ProvTree::access_path`] records accesses from
//! `P.I.A`, materializing influencing nodes when necessary.

use std::collections::BTreeSet;
use std::fmt;

use pebble_dataflow::OpId;
use pebble_nested::{Path, Step};

/// Label of a backtracing tree node: an attribute name, a concrete 1-based
/// position inside a nested collection, or the `[pos]` placeholder used
/// transiently while undoing `flatten`/nesting (Alg. 2).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeLabel {
    /// Attribute name.
    Attr(String),
    /// Position in a nested collection (1-based).
    Pos(u32),
    /// Position placeholder, filled in by `mergeTrees` (Alg. 2 l. 2).
    AnyPos,
}

impl NodeLabel {
    fn from_step(step: &Step) -> NodeLabel {
        match step {
            Step::Attr(a) => NodeLabel::Attr(a.clone()),
            Step::Pos(i) => NodeLabel::Pos(*i),
            Step::AnyPos => NodeLabel::AnyPos,
        }
    }

    /// Step/label matching: `[pos]` (either side) matches any position.
    fn matches(&self, step: &Step) -> bool {
        match (self, step) {
            (NodeLabel::Attr(a), Step::Attr(b)) => a == b,
            (NodeLabel::Pos(i), Step::Pos(j)) => i == j,
            (NodeLabel::Pos(_), Step::AnyPos) | (NodeLabel::AnyPos, Step::Pos(_)) => true,
            (NodeLabel::AnyPos, Step::AnyPos) => true,
            _ => false,
        }
    }

    fn to_step(&self) -> Step {
        match self {
            NodeLabel::Attr(a) => Step::Attr(a.clone()),
            NodeLabel::Pos(i) => Step::Pos(*i),
            NodeLabel::AnyPos => Step::AnyPos,
        }
    }
}

/// A node of a backtracing tree (Def. 6.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BNode {
    /// Attribute name or collection position.
    pub label: NodeLabel,
    /// Child nodes.
    pub children: Vec<BNode>,
    /// Operators that accessed this attribute (`A`).
    pub accessed: BTreeSet<OpId>,
    /// Operators that manipulated this attribute (`M`).
    pub manipulated: BTreeSet<OpId>,
    /// Contributing (`true`) vs merely influencing (`false`).
    pub contributing: bool,
}

impl BNode {
    fn new(label: NodeLabel, contributing: bool) -> Self {
        BNode {
            label,
            children: Vec::new(),
            accessed: BTreeSet::new(),
            manipulated: BTreeSet::new(),
            contributing,
        }
    }

    fn merge_from(&mut self, other: BNode) {
        self.contributing |= other.contributing;
        self.accessed.extend(other.accessed);
        self.manipulated.extend(other.manipulated);
        for child in other.children {
            match self.children.iter_mut().find(|c| c.label == child.label) {
                Some(mine) => mine.merge_from(child),
                None => self.children.push(child),
            }
        }
        self.sort_children();
    }

    fn sort_children(&mut self) {
        self.children.sort_by(|a, b| a.label.cmp(&b.label));
    }

    fn count(&self) -> usize {
        1 + self.children.iter().map(BNode::count).sum::<usize>()
    }
}

/// A backtracing tree `T` — a forest of attribute nodes under the implicit
/// root that represents the top-level data item.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvTree {
    /// Top-level attribute nodes.
    pub roots: Vec<BNode>,
}

impl ProvTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tree from contributing paths.
    pub fn from_paths<'a>(paths: impl IntoIterator<Item = &'a Path>) -> Self {
        let mut t = ProvTree::new();
        for p in paths {
            t.insert(p, true);
        }
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.roots.iter().map(BNode::count).sum()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Inserts a path; every node on a contributing path is marked
    /// contributing (`true` wins over an existing `false`).
    pub fn insert(&mut self, path: &Path, contributing: bool) {
        let mut nodes = &mut self.roots;
        for step in path.steps() {
            let idx = match nodes.iter().position(|n| n.label.matches(step)) {
                Some(i) => i,
                None => {
                    nodes.push(BNode::new(NodeLabel::from_step(step), contributing));
                    nodes.sort_by(|a, b| a.label.cmp(&b.label));
                    nodes
                        .iter()
                        .position(|n| n.label.matches(step))
                        .expect("just inserted")
                }
            };
            nodes[idx].contributing |= contributing;
            nodes = &mut nodes[idx].children;
        }
    }

    /// True if a node matching `path` exists (placeholder-tolerant).
    pub fn contains(&self, path: &Path) -> bool {
        !self.find(path).is_empty()
    }

    fn find(&self, path: &Path) -> Vec<&BNode> {
        let mut frontier: Vec<&BNode> = Vec::new();
        let Some((first, rest)) = path.steps().split_first() else {
            return Vec::new();
        };
        for n in &self.roots {
            if n.label.matches(first) {
                frontier.push(n);
            }
        }
        for step in rest {
            let mut next = Vec::new();
            for n in frontier {
                for c in &n.children {
                    if c.label.matches(step) {
                        next.push(c);
                    }
                }
            }
            frontier = next;
        }
        frontier
    }

    /// Detaches all nodes matching `path`, returning them.
    fn detach(&mut self, path: &Path) -> Vec<BNode> {
        fn go(nodes: &mut Vec<BNode>, steps: &[Step], out: &mut Vec<BNode>) {
            let Some((step, rest)) = steps.split_first() else {
                return;
            };
            if rest.is_empty() {
                let mut i = 0;
                while i < nodes.len() {
                    if nodes[i].label.matches(step) {
                        out.push(nodes.remove(i));
                    } else {
                        i += 1;
                    }
                }
            } else {
                for n in nodes.iter_mut() {
                    if n.label.matches(step) {
                        go(&mut n.children, rest, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        if !path.is_empty() {
            go(&mut self.roots, path.steps(), &mut out);
        }
        out
    }

    /// Removes all nodes matching `path` and their subtrees (Alg. 4 l. 13).
    pub fn remove_nodes(&mut self, path: &Path) {
        let _ = self.detach(path);
    }

    /// The `manipulatePath` method of Sec. 6.2: if nodes matching the
    /// output path of mapping `m = ⟨in, out⟩` exist, they are transformed
    /// back to the input path, and `oid` is recorded in the relocated
    /// node's manipulation set. Returns `true` when the tree changed.
    ///
    /// The node at `out` keeps its children, flags, and operator sets; it
    /// is re-labelled with the terminal step of `in` and re-hung under
    /// `in`'s prefix (created on demand, inheriting the contributing flag).
    pub fn manipulate_path(&mut self, m_in: &Path, m_out: &Path, oid: OpId) -> bool {
        let detached = self.detach(m_out);
        if detached.is_empty() {
            return false;
        }
        self.graft(m_in, detached, oid);
        true
    }

    /// Applies several manipulations *atomically*: all output subtrees are
    /// detached before any is re-grafted, so mappings whose input paths
    /// overlap other mappings' output paths (e.g. attribute swaps in a
    /// `select`) are undone correctly. Returns `true` if any mapping moved
    /// nodes.
    pub fn manipulate_paths(&mut self, mappings: &[(Path, Path)], oid: OpId) -> bool {
        let detached: Vec<(&Path, Vec<BNode>)> = mappings
            .iter()
            .map(|(m_in, m_out)| (m_in, self.detach(m_out)))
            .collect();
        let mut changed = false;
        for (m_in, nodes) in detached {
            if !nodes.is_empty() {
                self.graft(m_in, nodes, oid);
                changed = true;
            }
        }
        changed
    }

    /// Re-hangs detached nodes under `m_in` (relabelled with its terminal
    /// step), recording `oid` in their manipulation sets.
    fn graft(&mut self, m_in: &Path, detached: Vec<BNode>, oid: OpId) {
        let Some(terminal) = m_in.steps().last() else {
            return;
        };
        let prefix = Path::new(m_in.steps()[..m_in.len() - 1].iter().cloned());
        for mut node in detached {
            node.label = NodeLabel::from_step(terminal);
            node.manipulated.insert(oid);
            let contributing = node.contributing;
            // Ensure the prefix exists, then merge the node under it.
            self.insert(&prefix, contributing);
            let slot = if prefix.is_empty() {
                &mut self.roots
            } else {
                &mut self
                    .find_mut(&prefix)
                    .expect("prefix just inserted")
                    .children
            };
            match slot.iter_mut().find(|c| c.label == node.label) {
                Some(existing) => existing.merge_from(node),
                None => {
                    slot.push(node);
                    slot.sort_by(|a, b| a.label.cmp(&b.label));
                }
            }
        }
    }

    fn find_mut(&mut self, path: &Path) -> Option<&mut BNode> {
        fn go<'a>(nodes: &'a mut [BNode], steps: &[Step]) -> Option<&'a mut BNode> {
            let (step, rest) = steps.split_first()?;
            let idx = nodes.iter().position(|n| n.label.matches(step))?;
            let node = &mut nodes[idx];
            if rest.is_empty() {
                Some(node)
            } else {
                go(&mut node.children, rest)
            }
        }
        go(&mut self.roots, path.steps())
    }

    /// The `accessPath` method of Sec. 6.2: ensures the nodes of `path`
    /// exist (newly created nodes are *influencing*, `c = false`) and adds
    /// `oid` to the access set of every node along the path.
    pub fn access_path(&mut self, path: &Path, oid: OpId) {
        // Mark existing matching chains first.
        let mut marked_any = self.mark_access(path, oid);
        if !marked_any {
            // Materialize the path as influencing nodes.
            self.insert(path, false);
            marked_any = self.mark_access(path, oid);
        }
        debug_assert!(marked_any || path.is_empty());
    }

    fn mark_access(&mut self, path: &Path, oid: OpId) -> bool {
        fn go(nodes: &mut [BNode], steps: &[Step], oid: OpId) -> bool {
            let Some((step, rest)) = steps.split_first() else {
                return true;
            };
            let mut any = false;
            for n in nodes.iter_mut() {
                if n.label.matches(step) && (rest.is_empty() || go(&mut n.children, rest, oid)) {
                    n.accessed.insert(oid);
                    any = true;
                }
            }
            any
        }
        go(&mut self.roots, path.steps(), oid)
    }

    /// Replaces `[pos]` placeholder nodes matching `prefix` (a path whose
    /// last step is `[pos]`) with the concrete position `pos`, merging with
    /// an existing node of that position (the `mergeTrees` substitution of
    /// Alg. 2 l. 2).
    pub fn fill_placeholder(&mut self, prefix: &Path, pos: u32) {
        let steps = prefix.steps();
        let Some((Step::AnyPos, init)) = steps.split_last() else {
            return;
        };
        let parent_path = Path::new(init.iter().cloned());
        let holders: Vec<&mut Vec<BNode>> = if parent_path.is_empty() {
            vec![&mut self.roots]
        } else {
            match self.find_mut(&parent_path) {
                Some(n) => vec![&mut n.children],
                None => return,
            }
        };
        for children in holders {
            if let Some(idx) = children.iter().position(|c| c.label == NodeLabel::AnyPos) {
                let mut node = children.remove(idx);
                node.label = NodeLabel::Pos(pos);
                match children.iter_mut().find(|c| c.label == node.label) {
                    Some(existing) => existing.merge_from(node),
                    None => {
                        children.push(node);
                        children.sort_by(|a, b| a.label.cmp(&b.label));
                    }
                }
            }
        }
    }

    /// Merges another tree into this one (same-id tree merging of Alg. 2).
    pub fn merge(&mut self, other: ProvTree) {
        for node in other.roots {
            match self.roots.iter_mut().find(|c| c.label == node.label) {
                Some(mine) => mine.merge_from(node),
                None => self.roots.push(node),
            }
        }
        self.roots.sort_by(|a, b| a.label.cmp(&b.label));
    }

    /// Keeps only root attributes whose name satisfies `keep` (used by the
    /// join backtrace to prune the other input's schema).
    pub fn retain_roots(&mut self, keep: impl Fn(&str) -> bool) {
        self.roots.retain(|n| match &n.label {
            NodeLabel::Attr(a) => keep(a),
            _ => true,
        });
    }

    /// Enumerates `(path, node)` pairs in depth-first order.
    pub fn nodes(&self) -> Vec<(Path, &BNode)> {
        fn go<'a>(node: &'a BNode, prefix: &Path, out: &mut Vec<(Path, &'a BNode)>) {
            let p = prefix.child(node.label.to_step());
            out.push((p.clone(), node));
            for c in &node.children {
                go(c, &p, out);
            }
        }
        let mut out = Vec::new();
        for n in &self.roots {
            go(n, &Path::root(), &mut out);
        }
        out
    }

    /// Adds `oid` to the manipulation set of every node (used by the `map`
    /// backtrace, which has no path information: everything may have been
    /// restructured).
    pub fn mark_all_manipulated(&mut self, oid: OpId) {
        fn go(node: &mut BNode, oid: OpId) {
            node.manipulated.insert(oid);
            for c in &mut node.children {
                go(c, oid);
            }
        }
        for n in &mut self.roots {
            go(n, oid);
        }
    }

    /// All contributing paths (paths to nodes with `c = true`).
    pub fn contributing_paths(&self) -> Vec<Path> {
        self.nodes()
            .into_iter()
            .filter(|(_, n)| n.contributing)
            .map(|(p, _)| p)
            .collect()
    }

    /// All influencing paths (nodes with `c = false`).
    pub fn influencing_paths(&self) -> Vec<Path> {
        self.nodes()
            .into_iter()
            .filter(|(_, n)| !n.contributing)
            .map(|(p, _)| p)
            .collect()
    }
}

impl fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeLabel::Attr(a) => write!(f, "{a}"),
            NodeLabel::Pos(i) => write!(f, "[{i}]"),
            NodeLabel::AnyPos => write!(f, "[pos]"),
        }
    }
}

impl fmt::Display for ProvTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(node: &BNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}{}", "  ".repeat(depth), node.label)?;
            if !node.contributing {
                write!(f, " (influencing)")?;
            }
            if !node.accessed.is_empty() {
                let ops: Vec<String> = node.accessed.iter().map(u32::to_string).collect();
                write!(f, " a{{{}}}", ops.join(","))?;
            }
            if !node.manipulated.is_empty() {
                let ops: Vec<String> = node.manipulated.iter().map(u32::to_string).collect();
                write!(f, " m{{{}}}", ops.join(","))?;
            }
            writeln!(f)?;
            for c in &node.children {
                go(c, depth + 1, f)?;
            }
            Ok(())
        }
        for n in &self.roots {
            go(n, 0, f)?;
        }
        Ok(())
    }
}

/// The backtracing structure `B = {{⟨id, T⟩}}` (Def. 6.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Backtrace {
    /// Identifier/tree pairs.
    pub entries: Vec<(pebble_dataflow::ItemId, ProvTree)>,
}

impl Backtrace {
    /// Empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Groups entries by id, merging trees of equal ids (Alg. 2 l. 2).
    pub fn merge_by_id(&mut self) {
        let mut merged: Vec<(pebble_dataflow::ItemId, ProvTree)> = Vec::new();
        for (id, tree) in self.entries.drain(..) {
            match merged.iter_mut().find(|(i, _)| *i == id) {
                Some((_, t)) => t.merge(tree),
                None => merged.push((id, tree)),
            }
        }
        merged.sort_by_key(|(id, _)| *id);
        self.entries = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(paths: &[&str]) -> ProvTree {
        let owned: Vec<Path> = paths.iter().map(|s| Path::parse(s)).collect();
        ProvTree::from_paths(owned.iter())
    }

    #[test]
    fn insert_and_contains() {
        let t = tree(&["user.id_str", "tweets[2].text", "tweets[3].text"]);
        assert!(t.contains(&Path::parse("user.id_str")));
        assert!(t.contains(&Path::parse("tweets[2]")));
        assert!(t.contains(&Path::parse("tweets[pos].text"))); // placeholder match
        assert!(!t.contains(&Path::parse("tweets[4]")));
        assert_eq!(t.len(), 7); // user, id_str, tweets, [2], text, [3], text
    }

    #[test]
    fn manipulate_renames_root_attr() {
        // select text → tweet: undo mapping ⟨text, tweet⟩.
        let mut t = tree(&["tweet"]);
        assert!(t.manipulate_path(&Path::attr("text"), &Path::attr("tweet"), 8));
        assert!(t.contains(&Path::attr("text")));
        assert!(!t.contains(&Path::attr("tweet")));
        let (_, n) = &t.nodes()[0];
        assert!(n.manipulated.contains(&8));
    }

    #[test]
    fn manipulate_relocates_subtree() {
        // flatten: undo ⟨user_mentions[pos], m_user⟩ — m_user.id_str
        // becomes user_mentions.[pos].id_str (Ex. 6.5).
        let mut t = tree(&["m_user.id_str"]);
        assert!(t.manipulate_path(&Path::parse("user_mentions[pos]"), &Path::attr("m_user"), 5));
        assert!(t.contains(&Path::parse("user_mentions[pos].id_str")));
        // Fill the placeholder with the recorded position (mergeTrees).
        t.fill_placeholder(&Path::parse("user_mentions[pos]"), 2);
        assert!(t.contains(&Path::parse("user_mentions[2].id_str")));
        // No placeholder label survives the merge substitution.
        assert!(t.nodes().iter().all(|(_, n)| n.label != NodeLabel::AnyPos));
    }

    #[test]
    fn manipulate_missing_out_is_noop() {
        let mut t = tree(&["a.b"]);
        assert!(!t.manipulate_path(&Path::attr("x"), &Path::attr("zz"), 1));
        assert!(t.contains(&Path::parse("a.b")));
    }

    #[test]
    fn manipulate_aggregation_example_6_6() {
        // Tree: tweets.2.text and tweets.3.text; member at pos 2 undoes
        // ⟨tweet, tweets[2]⟩; then the other positions are removed.
        let mut t = tree(&["tweets[2].text", "tweets[3].text", "user.id_str"]);
        let out = Path::parse("tweets[pos]").fill_placeholder(2);
        assert!(t.contains(&out));
        assert!(t.manipulate_path(&Path::attr("tweet"), &out, 9));
        assert!(t.contains(&Path::parse("tweet.text")));
        t.remove_nodes(&Path::attr("tweets"));
        assert!(!t.contains(&Path::parse("tweets[3]")));
        assert!(t.contains(&Path::parse("user.id_str")));
    }

    #[test]
    fn access_marks_existing_and_creates_influencing() {
        let mut t = tree(&["user.id_str"]);
        t.access_path(&Path::parse("user.name"), 9);
        t.access_path(&Path::parse("user.id_str"), 9);
        let nodes = t.nodes();
        let name = nodes
            .iter()
            .find(|(p, _)| *p == Path::parse("user.name"))
            .unwrap()
            .1;
        assert!(!name.contributing);
        assert!(name.accessed.contains(&9));
        let id = nodes
            .iter()
            .find(|(p, _)| *p == Path::parse("user.id_str"))
            .unwrap()
            .1;
        assert!(id.contributing);
        assert!(id.accessed.contains(&9));
        // The shared parent `user` is marked accessed too.
        let user = nodes
            .iter()
            .find(|(p, _)| *p == Path::attr("user"))
            .unwrap()
            .1;
        assert!(user.accessed.contains(&9));
    }

    #[test]
    fn merge_unions_flags() {
        let mut a = tree(&["x.y"]);
        let mut b = ProvTree::new();
        b.insert(&Path::parse("x.z"), false);
        b.access_path(&Path::parse("x.z"), 4);
        a.merge(b);
        assert!(a.contains(&Path::parse("x.y")));
        assert!(a.contains(&Path::parse("x.z")));
        let x = a.nodes()[0].1;
        assert!(x.contributing); // true wins
    }

    #[test]
    fn merge_by_id_groups_entries() {
        let mut b = Backtrace::new();
        b.entries.push((1, tree(&["a"])));
        b.entries.push((2, tree(&["b"])));
        b.entries.push((1, tree(&["c"])));
        b.merge_by_id();
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].1.len(), 2); // a and c under id 1
    }

    #[test]
    fn mark_all_manipulated_for_map() {
        let mut t = tree(&["a.b", "c"]);
        t.mark_all_manipulated(7);
        assert!(t.nodes().iter().all(|(_, n)| n.manipulated.contains(&7)));
    }

    #[test]
    fn retain_roots_prunes_other_schema() {
        let mut t = tree(&["keep.x", "drop.y"]);
        t.retain_roots(|name| name == "keep");
        assert!(t.contains(&Path::parse("keep.x")));
        assert!(!t.contains(&Path::attr("drop")));
    }

    #[test]
    fn contributing_and_influencing_partition() {
        let mut t = tree(&["a"]);
        t.access_path(&Path::attr("b"), 1);
        assert_eq!(t.contributing_paths(), vec![Path::attr("a")]);
        assert_eq!(t.influencing_paths(), vec![Path::attr("b")]);
    }

    #[test]
    fn display_renders_markers() {
        let mut t = tree(&["user.id_str"]);
        t.access_path(&Path::parse("user.name"), 9);
        let s = t.to_string();
        assert!(s.contains("user"));
        assert!(s.contains("name (influencing) a{9}"));
    }
}
