//! Lightweight structural provenance capture (Sec. 5.1).
//!
//! The operator provenance `P = ⟨oid, type, I, M, P⟩` (Def. 5.1) stores
//!
//! * per input: a reference to the preceding operator and the accessed
//!   paths `A` **at schema level** (positions replaced by `[pos]`);
//! * the manipulated path pairs `M`, also at schema level;
//! * the identifier association table `P`, whose shape depends on the
//!   operator type (Tab. 6).
//!
//! `A`/`M` are data-item independent, so they are derived *statically* from
//! the plan and the input schemas; only the association tables are recorded
//! at run time, through the engine's [`ProvenanceSink`] hook. This is what
//! keeps the capture overhead comparable to plain lineage systems.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use pebble_dataflow::{
    run, Context, EngineError, ExecConfig, ItemId, OpId, OpKind, Program, ProvenanceSink, Result,
    RunOutput,
};
use pebble_nested::encode::{
    frame_block, get_ids_delta, get_varint, put_ids_delta, put_varint, take_frame, CodecError,
};
use pebble_nested::{DataType, Path, Step};
use pebble_obs::{ObsConfig, ProvenanceStats, RunReport};

/// Identifier association table `P` of Def. 5.1, operator-dependent per
/// Tab. 6.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvAssoc {
    /// `read`: identifiers assigned to the source items, in dataset order.
    Read(Vec<ItemId>),
    /// `map`/`select`/`filter`: `⟨id^i, id^o⟩`.
    Unary(Vec<(ItemId, ItemId)>),
    /// `join`/`union`: `⟨id_1^i, id_2^i, id^o⟩` (one side undefined for
    /// `union`).
    Binary(Vec<(Option<ItemId>, Option<ItemId>, ItemId)>),
    /// `flatten`: `⟨id^i, pos, id^o⟩`.
    Flatten(Vec<(ItemId, u32, ItemId)>),
    /// grouping + aggregation: `⟨ids^i, id^o⟩`, nested input ids in
    /// nesting order.
    Agg(Vec<(Vec<ItemId>, ItemId)>),
}

impl ProvAssoc {
    /// Number of association entries.
    pub fn len(&self) -> usize {
        match self {
            ProvAssoc::Read(v) => v.len(),
            ProvAssoc::Unary(v) => v.len(),
            ProvAssoc::Binary(v) => v.len(),
            ProvAssoc::Flatten(v) => v.len(),
            ProvAssoc::Agg(v) => v.len(),
        }
    }

    /// True if no associations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes a plain lineage system (Titian-style: identifiers only) would
    /// store for this table.
    pub fn lineage_bytes(&self) -> usize {
        const ID: usize = std::mem::size_of::<ItemId>();
        match self {
            ProvAssoc::Read(v) => v.len() * ID,
            ProvAssoc::Unary(v) => v.len() * 2 * ID,
            ProvAssoc::Binary(v) => v.len() * 3 * ID,
            // Lineage keeps only ⟨id^i, id^o⟩ for flatten — no positions.
            ProvAssoc::Flatten(v) => v.len() * 2 * ID,
            ProvAssoc::Agg(v) => v.iter().map(|(ids, _)| (ids.len() + 1) * ID).sum(),
        }
    }

    /// Additional bytes structural provenance stores on top of lineage:
    /// the `pos` column of `flatten` tables (Tab. 6 row 3).
    pub fn structural_extra_bytes(&self) -> usize {
        match self {
            ProvAssoc::Flatten(v) => v.len() * std::mem::size_of::<u32>(),
            _ => 0,
        }
    }

    /// Resident heap bytes of the stored entries — the quantity the capture
    /// memory budget accounts (identifiers plus flatten positions).
    fn resident_bytes(&self) -> usize {
        self.lineage_bytes() + self.structural_extra_bytes()
    }

    /// An empty table of the same shape.
    fn empty_like(&self) -> ProvAssoc {
        match self {
            ProvAssoc::Read(_) => ProvAssoc::Read(Vec::new()),
            ProvAssoc::Unary(_) => ProvAssoc::Unary(Vec::new()),
            ProvAssoc::Binary(_) => ProvAssoc::Binary(Vec::new()),
            ProvAssoc::Flatten(_) => ProvAssoc::Flatten(Vec::new()),
            ProvAssoc::Agg(_) => ProvAssoc::Agg(Vec::new()),
        }
    }

    /// Appends the other table's entries (shapes must match; the sink only
    /// merges tables it created for the same operator).
    fn append_from(&mut self, other: ProvAssoc) -> std::result::Result<(), CodecError> {
        match (self, other) {
            (ProvAssoc::Read(a), ProvAssoc::Read(b)) => a.extend(b),
            (ProvAssoc::Unary(a), ProvAssoc::Unary(b)) => a.extend(b),
            (ProvAssoc::Binary(a), ProvAssoc::Binary(b)) => a.extend(b),
            (ProvAssoc::Flatten(a), ProvAssoc::Flatten(b)) => a.extend(b),
            (ProvAssoc::Agg(a), ProvAssoc::Agg(b)) => a.extend(b),
            _ => return Err(CodecError("association table shape mismatch".into())),
        }
        Ok(())
    }
}

/// Frame type byte for spilled association chunks (the framing itself is
/// [`frame_block`], shared with segments and row spill blocks).
const BLOCK_CAPTURE_ASSOC: u8 = 0x53;

/// Encodes a drained association table as one framed chunk. Identifier
/// columns are delta-encoded — they are near-sequential, so spilled chunks
/// are far smaller than the resident tables they replace.
fn encode_assoc_chunk(assoc: &ProvAssoc, out: &mut Vec<u8>) {
    let mut buf = Vec::new();
    match assoc {
        ProvAssoc::Read(v) => {
            buf.push(0);
            put_ids_delta(&mut buf, v);
        }
        ProvAssoc::Unary(v) => {
            buf.push(1);
            let ins: Vec<u64> = v.iter().map(|e| e.0).collect();
            let outs: Vec<u64> = v.iter().map(|e| e.1).collect();
            put_ids_delta(&mut buf, &ins);
            put_ids_delta(&mut buf, &outs);
        }
        ProvAssoc::Binary(v) => {
            buf.push(2);
            put_varint(&mut buf, v.len() as u64);
            for e in v {
                buf.push(u8::from(e.0.is_some()) | u8::from(e.1.is_some()) << 1);
            }
            let lefts: Vec<u64> = v.iter().filter_map(|e| e.0).collect();
            let rights: Vec<u64> = v.iter().filter_map(|e| e.1).collect();
            let outs: Vec<u64> = v.iter().map(|e| e.2).collect();
            put_ids_delta(&mut buf, &lefts);
            put_ids_delta(&mut buf, &rights);
            put_ids_delta(&mut buf, &outs);
        }
        ProvAssoc::Flatten(v) => {
            buf.push(3);
            let ins: Vec<u64> = v.iter().map(|e| e.0).collect();
            let outs: Vec<u64> = v.iter().map(|e| e.2).collect();
            put_ids_delta(&mut buf, &ins);
            for e in v {
                put_varint(&mut buf, e.1 as u64);
            }
            put_ids_delta(&mut buf, &outs);
        }
        ProvAssoc::Agg(v) => {
            buf.push(4);
            put_varint(&mut buf, v.len() as u64);
            for (ids, out) in v {
                put_ids_delta(&mut buf, ids);
                put_varint(&mut buf, *out);
            }
        }
    }
    frame_block(out, BLOCK_CAPTURE_ASSOC, &buf);
}

/// Decodes one chunk written by [`encode_assoc_chunk`]. Total: malformed
/// bytes yield a [`CodecError`], never a panic.
fn decode_assoc_chunk(payload: &[u8]) -> std::result::Result<ProvAssoc, CodecError> {
    let Some((&tag, mut rest)) = payload.split_first() else {
        return Err(CodecError("empty association chunk".into()));
    };
    let buf = &mut rest;
    let assoc = match tag {
        0 => ProvAssoc::Read(get_ids_delta(buf)?),
        1 => {
            let ins = get_ids_delta(buf)?;
            let outs = get_ids_delta(buf)?;
            if ins.len() != outs.len() {
                return Err(CodecError("unary chunk column length mismatch".into()));
            }
            ProvAssoc::Unary(ins.into_iter().zip(outs).collect())
        }
        2 => {
            let n = get_varint(buf)? as usize;
            if buf.len() < n {
                return Err(CodecError("truncated binary chunk flags".into()));
            }
            let (flags, rest) = buf.split_at(n);
            let flags = flags.to_vec();
            *buf = rest;
            let mut lefts = get_ids_delta(buf)?.into_iter();
            let mut rights = get_ids_delta(buf)?.into_iter();
            let outs = get_ids_delta(buf)?;
            if outs.len() != n {
                return Err(CodecError("binary chunk column length mismatch".into()));
            }
            let mut v = Vec::with_capacity(n);
            for (f, out) in flags.into_iter().zip(outs) {
                let l =
                    if f & 1 != 0 {
                        Some(lefts.next().ok_or_else(|| {
                            CodecError("binary chunk left column too short".into())
                        })?)
                    } else {
                        None
                    };
                let r =
                    if f & 2 != 0 {
                        Some(rights.next().ok_or_else(|| {
                            CodecError("binary chunk right column too short".into())
                        })?)
                    } else {
                        None
                    };
                v.push((l, r, out));
            }
            ProvAssoc::Binary(v)
        }
        3 => {
            let ins = get_ids_delta(buf)?;
            let mut pos = Vec::with_capacity(ins.len());
            for _ in 0..ins.len() {
                pos.push(
                    u32::try_from(get_varint(buf)?)
                        .map_err(|_| CodecError("flatten chunk position out of range".into()))?,
                );
            }
            let outs = get_ids_delta(buf)?;
            if outs.len() != ins.len() {
                return Err(CodecError("flatten chunk column length mismatch".into()));
            }
            ProvAssoc::Flatten(
                ins.into_iter()
                    .zip(pos)
                    .zip(outs)
                    .map(|((i, p), o)| (i, p, o))
                    .collect(),
            )
        }
        4 => {
            let n = get_varint(buf)? as usize;
            if buf.len() < n {
                return Err(CodecError("truncated aggregation chunk".into()));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let ids = get_ids_delta(buf)?;
                let out = get_varint(buf)?;
                v.push((ids, out));
            }
            ProvAssoc::Agg(v)
        }
        tag => return Err(CodecError(format!("unknown association chunk tag {tag}"))),
    };
    if !buf.is_empty() {
        return Err(CodecError("trailing bytes after association chunk".into()));
    }
    Ok(assoc)
}

/// Out-of-core state for a budgeted capture: per-operator append-only spill
/// files holding drained association chunks. Created only when the run's
/// [`ExecConfig`] carries a memory budget; dropped state removes the
/// directory.
struct CaptureSpill {
    budget: usize,
    /// Resident entry bytes across all operators' in-memory tables.
    resident: AtomicUsize,
    dir: PathBuf,
    files: Vec<Mutex<Option<fs::File>>>,
    spills: AtomicU64,
    spill_bytes: AtomicU64,
}

impl CaptureSpill {
    fn new(budget: usize, n_ops: usize) -> CaptureSpill {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let base = std::env::var_os("PEBBLE_SPILL_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        pebble_dataflow::spill::sweep_stale_run_dirs_once(&base);
        let dir = base.join(format!(
            "pebble-capture-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        CaptureSpill {
            budget,
            resident: AtomicUsize::new(0),
            dir,
            files: (0..n_ops).map(|_| Mutex::new(None)).collect(),
            spills: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
        }
    }

    /// Drains `assoc` to the operator's spill file, leaving it empty. The
    /// error message carries the io error *kind* only — never a filesystem
    /// path — so failing runs stay `Display`-comparable across machines.
    fn drain(&self, op: OpId, assoc: &mut ProvAssoc) -> Result<()> {
        let bytes = assoc.resident_bytes();
        if bytes == 0 {
            return Ok(());
        }
        pebble_dataflow::fault::check_spill(op)?;
        let io_err = |what: &str, e: &std::io::Error| EngineError::SpillError {
            op,
            message: format!("{what}: {}", e.kind()),
        };
        let mut chunk = Vec::new();
        encode_assoc_chunk(assoc, &mut chunk);
        let mut slot = self.files[op as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            fs::create_dir_all(&self.dir)
                .map_err(|e| io_err("create capture spill directory", &e))?;
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(format!("op{op}.assoc")))
                .map_err(|e| io_err("create capture spill file", &e))?;
            *slot = Some(file);
        }
        slot.as_mut()
            .expect("file was just opened")
            .write_all(&chunk)
            .map_err(|e| io_err("write capture spill chunk", &e))?;
        *assoc = assoc.empty_like();
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
        self.spills.fetch_add(1, Ordering::Relaxed);
        self.spill_bytes
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Reads back every chunk spilled for `op`, in write order, into one
    /// table shaped like `tail`, then re-appends the resident tail — the
    /// exact append sequence an unbudgeted capture accumulates in memory.
    fn restore(&self, op: OpId, tail: ProvAssoc) -> Result<ProvAssoc> {
        let slot = self.files[op as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            return Ok(tail);
        }
        drop(slot);
        let codec_err = |e: CodecError| EngineError::SpillError {
            op,
            message: format!("read capture spill chunk: {e}"),
        };
        let bytes = fs::read(self.dir.join(format!("op{op}.assoc"))).map_err(|e| {
            EngineError::SpillError {
                op,
                message: format!("read capture spill file: {}", e.kind()),
            }
        })?;
        let mut full = tail.empty_like();
        let mut cur = bytes.as_slice();
        while !cur.is_empty() {
            let (ty, payload) = take_frame(&mut cur).map_err(codec_err)?;
            if ty != BLOCK_CAPTURE_ASSOC {
                return Err(codec_err(CodecError(format!("unexpected frame type {ty}"))));
            }
            full.append_from(decode_assoc_chunk(payload).map_err(codec_err)?)
                .map_err(codec_err)?;
        }
        full.append_from(tail).map_err(codec_err)?;
        Ok(full)
    }
}

impl Drop for CaptureSpill {
    fn drop(&mut self) {
        for f in &self.files {
            f.lock().unwrap_or_else(PoisonError::into_inner).take();
        }
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Per-input provenance `⟨p, A⟩` of Def. 5.1. `accessed == None` encodes the
/// undefined access set `⊥` of opaque `map` functions, distinct from the
/// empty set `∅` (Sec. 5.0.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputProv {
    /// Preceding operator (`None` for `read`, which has no predecessor).
    pub pred: Option<OpId>,
    /// Schema-level accessed paths `A`, or `None` for `⊥`.
    pub accessed: Option<Vec<Path>>,
}

/// The operator provenance 5-tuple `P = ⟨oid, type, I, M, P⟩` (Def. 5.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperatorProvenance {
    /// Operator identifier `oid`.
    pub oid: OpId,
    /// Operator type name.
    pub op_type: String,
    /// One entry per input: predecessor + accessed paths.
    pub inputs: Vec<InputProv>,
    /// Schema-level manipulated path pairs `(input path, output path)`, or
    /// `None` for `⊥` (opaque `map`).
    pub manipulated: Option<Vec<(Path, Path)>>,
    /// The identifier association table.
    pub assoc: ProvAssoc,
}

impl OperatorProvenance {
    /// Bytes needed for the schema-level path sets (counted as UTF-8 path
    /// strings, matching how Pebble persists them).
    pub fn path_bytes(&self) -> usize {
        let paths = self
            .inputs
            .iter()
            .flat_map(|i| i.accessed.iter().flatten())
            .map(|p| p.to_string().len())
            .sum::<usize>();
        let manip = self
            .manipulated
            .iter()
            .flatten()
            .map(|(a, b)| a.to_string().len() + b.to_string().len())
            .sum::<usize>();
        paths + manip
    }
}

/// A fully captured execution: the result rows (with identifiers), the
/// operator provenance for every operator, and the schemas needed for
/// backtracing.
pub struct CapturedRun {
    /// The program that was executed.
    pub program: Program,
    /// Engine output (sink rows with ids, per-op schemas and counts).
    pub output: RunOutput,
    /// Operator provenance, indexed by operator id.
    pub ops: Vec<OperatorProvenance>,
}

impl CapturedRun {
    /// Total bytes a lineage-only system would store (Fig. 8 dark bars).
    pub fn lineage_bytes(&self) -> usize {
        self.ops.iter().map(|o| o.assoc.lineage_bytes()).sum()
    }

    /// Total bytes of structural provenance: lineage + flatten positions +
    /// schema-level path sets (Fig. 8 stacked bars).
    pub fn structural_bytes(&self) -> usize {
        self.lineage_bytes()
            + self
                .ops
                .iter()
                .map(|o| o.assoc.structural_extra_bytes() + o.path_bytes())
                .sum::<usize>()
    }

    /// The provenance of one operator.
    pub fn op(&self, oid: OpId) -> &OperatorProvenance {
        &self.ops[oid as usize]
    }

    /// Input schema of operator `oid`'s `idx`-th input.
    pub fn input_schema(&self, oid: OpId, idx: usize) -> &DataType {
        let pred = self.program.operators()[oid as usize].inputs[idx];
        &self.output.op_schemas[pred as usize]
    }
}

/// Recording sink: appends association batches under per-operator locks.
/// Worker threads contend only when flushing whole partitions.
struct CaptureSink {
    per_op: Vec<Mutex<ProvAssoc>>,
    /// Out-of-core state, present iff the run's config carries a memory
    /// budget: association tables overflow to per-operator chunk files and
    /// are merged back (byte-identically) when the run is assembled.
    spill: Option<CaptureSpill>,
    /// First association-building failure, if any. Sink callbacks cannot
    /// return errors through the engine, so the failure is parked here and
    /// surfaced as a typed [`EngineError::CaptureError`] after the run.
    failure: Mutex<Option<EngineError>>,
}

impl CaptureSink {
    fn new(program: &Program, ctx: &Context, config: &ExecConfig) -> Self {
        // Forward row-count estimates seed each association table's
        // capacity, so capture appends without reallocating along the way.
        // Estimates are upper bounds for everything except flatten and
        // join, which can expand; those still save the early doublings.
        let ops = program.operators();
        let mut est: Vec<usize> = Vec::with_capacity(ops.len());
        for op in ops {
            let of = |id: OpId| est[id as usize];
            est.push(match &op.kind {
                OpKind::Read { source } => ctx.source(source).map_or(0, <[_]>::len),
                OpKind::Filter { .. }
                | OpKind::Select { .. }
                | OpKind::Map { .. }
                | OpKind::Flatten { .. } => of(op.inputs[0]),
                OpKind::Join { .. } => of(op.inputs[0]).max(of(op.inputs[1])),
                OpKind::Union => of(op.inputs[0]) + of(op.inputs[1]),
                OpKind::GroupAggregate { .. } => of(op.inputs[0]),
            });
        }
        let per_op = ops
            .iter()
            .zip(est)
            .map(|(op, n)| {
                Mutex::new(match &op.kind {
                    OpKind::Read { .. } => ProvAssoc::Read(Vec::with_capacity(n)),
                    OpKind::Filter { .. } | OpKind::Select { .. } | OpKind::Map { .. } => {
                        ProvAssoc::Unary(Vec::with_capacity(n))
                    }
                    OpKind::Join { .. } | OpKind::Union => ProvAssoc::Binary(Vec::with_capacity(n)),
                    OpKind::Flatten { .. } => ProvAssoc::Flatten(Vec::with_capacity(n)),
                    OpKind::GroupAggregate { .. } => ProvAssoc::Agg(Vec::with_capacity(n)),
                })
            })
            .collect();
        CaptureSink {
            per_op,
            spill: (config.mem_budget_bytes > 0)
                .then(|| CaptureSpill::new(config.mem_budget_bytes, ops.len())),
            failure: Mutex::new(None),
        }
    }

    /// Locks operator `op`'s association table, recovering from poisoning:
    /// a worker that panicked mid-run can only have poisoned the lock
    /// between whole batch appends (the engine run fails separately), so
    /// the table itself is still structurally sound.
    fn assoc(&self, op: OpId) -> MutexGuard<'_, ProvAssoc> {
        self.per_op[op as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Records the first capture failure (a batch whose shape does not
    /// match the operator's association table — an engine bug, but one
    /// that must surface as an error, not as silently dropped provenance).
    fn fail(&self, op: OpId, kind: &str) {
        let mut slot = self.failure.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(EngineError::CaptureError {
                op,
                message: format!("{kind} batch does not match the operator's association table"),
            });
        }
    }

    /// Budget accounting after a batch append: charges `added` entry bytes
    /// and drains this operator's table to disk when the capture-resident
    /// total exceeds the budget. A drain failure is parked like any other
    /// capture failure and surfaced after the run.
    fn recorded(&self, op: OpId, assoc: &mut ProvAssoc, added: usize) {
        let Some(spill) = &self.spill else { return };
        let resident = spill.resident.fetch_add(added, Ordering::Relaxed) + added;
        if resident <= spill.budget {
            return;
        }
        if let Err(e) = spill.drain(op, assoc) {
            let mut slot = self.failure.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    }

    /// Spill activity counters (chunks written, encoded bytes), if this
    /// capture ran under a budget.
    fn spill_stats(&self) -> Option<(u64, u64)> {
        self.spill.as_ref().map(|s| {
            (
                s.spills.load(Ordering::Relaxed),
                s.spill_bytes.load(Ordering::Relaxed),
            )
        })
    }
}

impl ProvenanceSink for CaptureSink {
    const ENABLED: bool = true;

    fn read_batch(&self, op: OpId, ids: &[ItemId]) {
        let mut guard = self.assoc(op);
        if let ProvAssoc::Read(v) = &mut *guard {
            v.extend_from_slice(ids);
            self.recorded(op, &mut guard, std::mem::size_of_val(ids));
        } else {
            self.fail(op, "read");
        }
    }

    fn unary_batch(&self, op: OpId, assoc: &[(ItemId, ItemId)]) {
        let mut guard = self.assoc(op);
        if let ProvAssoc::Unary(v) = &mut *guard {
            v.extend_from_slice(assoc);
            self.recorded(op, &mut guard, std::mem::size_of_val(assoc));
        } else {
            self.fail(op, "unary");
        }
    }

    fn unary_run(&self, op: OpId, in_first: ItemId, out_first: ItemId, len: u64) {
        // The stored table stays expanded pairs — byte-identical to a
        // per-pair capture — but a whole id range appends in one lock hold
        // with no intermediate batch buffer.
        let mut guard = self.assoc(op);
        if let ProvAssoc::Unary(v) = &mut *guard {
            v.extend((0..len).map(|k| (in_first + k, out_first + k)));
            self.recorded(op, &mut guard, len as usize * 16);
        } else {
            self.fail(op, "unary");
        }
    }

    fn binary_batch(&self, op: OpId, assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {
        let mut guard = self.assoc(op);
        if let ProvAssoc::Binary(v) = &mut *guard {
            v.extend_from_slice(assoc);
            self.recorded(op, &mut guard, assoc.len() * 24);
        } else {
            self.fail(op, "binary");
        }
    }

    fn flatten_batch(&self, op: OpId, assoc: &[(ItemId, u32, ItemId)]) {
        let mut guard = self.assoc(op);
        if let ProvAssoc::Flatten(v) = &mut *guard {
            v.extend_from_slice(assoc);
            self.recorded(op, &mut guard, assoc.len() * 20);
        } else {
            self.fail(op, "flatten");
        }
    }

    fn agg_batch(&self, op: OpId, assoc: Vec<(Vec<ItemId>, ItemId)>) {
        let mut guard = self.assoc(op);
        if let ProvAssoc::Agg(v) = &mut *guard {
            let added: usize = assoc.iter().map(|(ids, _)| (ids.len() + 1) * 8).sum();
            v.extend(assoc);
            self.recorded(op, &mut guard, added);
        } else {
            self.fail(op, "aggregation");
        }
    }
}

/// Executes `program` with structural provenance capture enabled.
pub fn run_captured(program: &Program, ctx: &Context, config: ExecConfig) -> Result<CapturedRun> {
    run_captured_impl(program, ctx, config, run)
}

/// Executes `program` with capture enabled, teeing every association batch
/// into `extra` as well.
///
/// The in-memory capture stays the primary record; `extra` (e.g. a
/// streaming segment writer) observes the identical batch sequence via
/// [`pebble_dataflow::Tee`]. Association batches are emitted from the
/// scheduler thread in a deterministic per-operator order, so what `extra`
/// sees is reproducible run to run.
pub fn run_captured_with<S: pebble_dataflow::ProvenanceSink>(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    extra: &S,
) -> Result<CapturedRun> {
    let sink = CaptureSink::new(program, ctx, &config);
    let tee = pebble_dataflow::Tee(&sink, extra);
    let output = run(program, ctx, config, &tee)?;
    let cap_spill = sink.spill_stats();
    let mut captured = assemble(program, sink, output)?;
    captured.output.report.provenance = Some(provenance_stats(&captured));
    apply_capture_spill(&mut captured.output.report, cap_spill);
    Ok(captured)
}

/// Folds the capture layer's spill counters into the run report's `spill`
/// section (present whenever the engine ran under a budget).
fn apply_capture_spill(report: &mut RunReport, stats: Option<(u64, u64)>) {
    if let (Some(section), Some((spills, bytes))) = (report.spill.as_mut(), stats) {
        section.capture_spills = spills;
        section.capture_spill_bytes = bytes;
    }
}

/// Executes `program` with capture enabled and operator fusion disabled.
///
/// Fused and unfused executions are specified to capture byte-identical
/// provenance; this entry point lets the metamorphic tests and the
/// differential oracle check that equivalence directly.
pub fn run_captured_unfused(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
) -> Result<CapturedRun> {
    run_captured_impl(program, ctx, config, pebble_dataflow::run_unfused)
}

/// Executes `program` with capture enabled on the legacy per-operator
/// spawning executor ([`pebble_dataflow::run_spawn`]).
///
/// The morsel-driven scheduler is specified to capture byte-identical
/// provenance to this executor at every worker count; the differential
/// oracle uses this entry point as the referee for that claim.
pub fn run_captured_spawn(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
) -> Result<CapturedRun> {
    run_captured_impl(program, ctx, config, pebble_dataflow::run_spawn)
}

/// Executes `program` with capture enabled under an explicit observability
/// configuration, returning the run report even when execution fails.
///
/// On success the report's `provenance` section carries the *exact*
/// association-table sizes measured from the captured run (the report's
/// per-operator `assoc_bytes` column stays an estimate). Like
/// [`pebble_dataflow::run_observed`], observation never perturbs results:
/// rows, identifiers and association tables are byte-identical with
/// metrics on or off.
pub fn run_captured_observed(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    obs: &ObsConfig,
) -> (Result<CapturedRun>, RunReport) {
    let sink = CaptureSink::new(program, ctx, &config);
    let (result, mut report) = pebble_dataflow::run_observed(program, ctx, config, &sink, obs);
    let cap_spill = sink.spill_stats();
    let run = result.and_then(|output| assemble(program, sink, output));
    match run {
        Ok(mut run) => {
            let stats = provenance_stats(&run);
            report.provenance = Some(stats.clone());
            run.output.report.provenance = Some(stats);
            apply_capture_spill(&mut report, cap_spill);
            apply_capture_spill(&mut run.output.report, cap_spill);
            (Ok(run), report)
        }
        Err(e) => (Err(e), report),
    }
}

fn run_captured_impl(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    exec: fn(&Program, &Context, ExecConfig, &CaptureSink) -> Result<RunOutput>,
) -> Result<CapturedRun> {
    let sink = CaptureSink::new(program, ctx, &config);
    let output = exec(program, ctx, config, &sink)?;
    let cap_spill = sink.spill_stats();
    let mut run = assemble(program, sink, output)?;
    run.output.report.provenance = Some(provenance_stats(&run));
    apply_capture_spill(&mut run.output.report, cap_spill);
    Ok(run)
}

/// Exact provenance sizes for the run report, measured from the captured
/// association tables rather than estimated from row counts.
fn provenance_stats(run: &CapturedRun) -> ProvenanceStats {
    ProvenanceStats {
        entries: run.ops.iter().map(|o| o.assoc.len() as u64).sum(),
        lineage_bytes: run.lineage_bytes() as u64,
        structural_bytes: run.structural_bytes() as u64,
    }
}

fn assemble(program: &Program, sink: CaptureSink, output: RunOutput) -> Result<CapturedRun> {
    let CaptureSink {
        per_op,
        spill,
        failure,
    } = sink;
    if let Some(err) = failure
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(err);
    }
    let ops = program
        .operators()
        .iter()
        .zip(per_op)
        .map(|(op, assoc)| {
            let input_schemas: Vec<&DataType> = op
                .inputs
                .iter()
                .map(|&i| &output.op_schemas[i as usize])
                .collect();
            let (inputs, manipulated) = static_provenance(&op.kind, &op.inputs, &input_schemas);
            // Under a budget, the in-memory table is only the tail written
            // since the last drain; splice the spilled chunks back in front
            // so the assembled table is byte-identical to an unbudgeted
            // capture.
            let tail = assoc.into_inner().unwrap_or_else(PoisonError::into_inner);
            let assoc = match &spill {
                Some(s) => s.restore(op.id, tail)?,
                None => tail,
            };
            Ok(OperatorProvenance {
                oid: op.id,
                op_type: op.kind.type_name().to_string(),
                inputs,
                manipulated,
                assoc,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CapturedRun {
        program: program.clone(),
        output,
        ops,
    })
}

/// Derives the schema-level access sets `A` and manipulation mapping `M`
/// of Tab. 5 from the operator definition — the "pebbles" that are the same
/// for every processed item.
fn static_provenance(
    kind: &OpKind,
    preds: &[OpId],
    input_schemas: &[&DataType],
) -> (Vec<InputProv>, Option<Vec<(Path, Path)>>) {
    let input = |accessed: Option<Vec<Path>>, idx: usize| InputProv {
        pred: preds.get(idx).copied(),
        accessed,
    };
    match kind {
        OpKind::Read { .. } => (Vec::new(), Some(Vec::new())),
        OpKind::Filter { predicate } => (
            vec![input(Some(schema_level(predicate.accessed_paths())), 0)],
            // Filter keeps each item's structure whole: M = ∅.
            Some(Vec::new()),
        ),
        OpKind::Select { exprs } => {
            let mut accessed = Vec::new();
            let mut manipulated = Vec::new();
            for ne in exprs {
                for p in ne.expr.accessed() {
                    let p = p.to_schema_level();
                    if !accessed.contains(&p) {
                        accessed.push(p);
                    }
                }
                for (src, dst) in ne.expr.manipulated(&Path::attr(&ne.name)) {
                    manipulated.push((src.to_schema_level(), dst));
                }
            }
            (vec![input(Some(accessed), 0)], Some(manipulated))
        }
        // Opaque function: A = ⊥ and M = ⊥ (Sec. 5.0.1).
        OpKind::Map { .. } => (vec![input(None, 0)], None),
        OpKind::Join { keys } => {
            let left_access: Vec<Path> =
                schema_level(keys.iter().map(|(l, _)| l.clone()).collect());
            let right_access: Vec<Path> =
                schema_level(keys.iter().map(|(_, r)| r.clone()).collect());
            // M maps every top-level input attribute to its (possibly
            // renamed) output attribute on both sides (Tab. 5 Join).
            let mut manipulated = Vec::new();
            if let Some(fields) = input_schemas[0].fields() {
                for f in fields {
                    manipulated.push((Path::attr(&f.name), Path::attr(&f.name)));
                }
            }
            let (_, renames) =
                pebble_dataflow::op::merge_item_schemas(0, input_schemas[0], input_schemas[1])
                    .unwrap_or((DataType::Null, Vec::new()));
            for (orig, renamed) in renames {
                manipulated.push((Path::attr(orig), Path::attr(renamed)));
            }
            (
                vec![input(Some(left_access), 0), input(Some(right_access), 1)],
                Some(manipulated),
            )
        }
        // Union performs an item-independent schema comparison only:
        // A = ∅ and M = ∅ for both inputs (Sec. 5.0.1).
        OpKind::Union => (
            vec![input(Some(Vec::new()), 0), input(Some(Vec::new()), 1)],
            Some(Vec::new()),
        ),
        OpKind::Flatten { col, new_attr } => {
            let accessed_path = col.to_schema_level().child(Step::AnyPos);
            (
                vec![input(Some(vec![accessed_path.clone()]), 0)],
                Some(vec![(accessed_path, Path::attr(new_attr))]),
            )
        }
        OpKind::GroupAggregate { keys, aggs } => {
            let mut accessed: Vec<Path> = Vec::new();
            let mut manipulated = Vec::new();
            for k in keys {
                let p = k.path.to_schema_level();
                if !accessed.contains(&p) {
                    accessed.push(p.clone());
                }
                manipulated.push((p, Path::attr(&k.name)));
            }
            for a in aggs {
                if a.input.is_empty() {
                    if a.func == pebble_dataflow::AggFunc::CollectList {
                        // Whole-item bag nesting: every top-level input
                        // attribute is copied under the nested position.
                        if let Some(fields) = input_schemas[0].fields() {
                            let base = Path::attr(&a.output).child(Step::AnyPos);
                            for f in fields {
                                manipulated
                                    .push((Path::attr(&f.name), base.child(Step::attr(&f.name))));
                            }
                        }
                    }
                    continue; // count(*) reads no attribute
                }
                let p = a.input.to_schema_level();
                if !accessed.contains(&p) {
                    accessed.push(p.clone());
                }
                let out = if a.func == pebble_dataflow::AggFunc::CollectList {
                    // Bag nesting records the element position placeholder
                    // so backtracing can pinpoint individual nested items
                    // (Alg. 4 l. 6-7).
                    Path::attr(&a.output).child(Step::AnyPos)
                } else {
                    // Scalar aggregates and set nesting map to the output
                    // attribute as a whole; set positions are not stable
                    // under deduplication, so every group member is a
                    // conservative contributor.
                    Path::attr(&a.output)
                };
                manipulated.push((p, out));
            }
            (vec![input(Some(accessed), 0)], Some(manipulated))
        }
    }
}

fn schema_level(paths: Vec<Path>) -> Vec<Path> {
    let mut out: Vec<Path> = Vec::with_capacity(paths.len());
    for p in paths {
        let p = p.to_schema_level();
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dataflow::{
        context::items_of, AggFunc, AggSpec, Expr, GroupKey, NamedExpr, ProgramBuilder, SelectExpr,
    };
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "tweets",
            items_of(vec![
                vec![
                    ("text", Value::str("Hello")),
                    (
                        "user_mentions",
                        Value::Bag(vec![
                            Value::Item(pebble_nested::DataItem::from_fields([(
                                "id_str",
                                Value::str("ls"),
                            )])),
                            Value::Item(pebble_nested::DataItem::from_fields([(
                                "id_str",
                                Value::str("jm"),
                            )])),
                        ]),
                    ),
                    ("retweet_cnt", Value::Int(0)),
                ],
                vec![
                    ("text", Value::str("World")),
                    ("user_mentions", Value::Bag(vec![])),
                    ("retweet_cnt", Value::Int(1)),
                ],
            ]),
        );
        c
    }

    fn config() -> ExecConfig {
        ExecConfig::with_partitions(2)
    }

    #[test]
    fn filter_provenance_shape() {
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let f = b.filter(r, Expr::col("retweet_cnt").eq(Expr::lit(0i64)));
        let run = run_captured(&b.build(f), &ctx(), config()).unwrap();
        let p = run.op(1);
        assert_eq!(p.op_type, "filter");
        assert_eq!(
            p.inputs[0].accessed.as_deref(),
            Some(&[Path::attr("retweet_cnt")][..])
        );
        assert_eq!(p.manipulated.as_deref(), Some(&[][..]));
        match &p.assoc {
            ProvAssoc::Unary(v) => assert_eq!(v.len(), 1), // one tweet passes
            other => panic!("unexpected assoc {other:?}"),
        }
    }

    #[test]
    fn flatten_provenance_matches_fig3() {
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let f = b.flatten(r, "user_mentions", "m_user");
        let run = run_captured(&b.build(f), &ctx(), config()).unwrap();
        let p = run.op(1);
        assert_eq!(p.op_type, "flatten");
        // A = {user_mentions[pos]}, M = {⟨user_mentions[pos], m_user⟩}.
        assert_eq!(
            p.inputs[0].accessed.as_deref(),
            Some(&[Path::parse("user_mentions[pos]")][..])
        );
        assert_eq!(
            p.manipulated.as_deref(),
            Some(&[(Path::parse("user_mentions[pos]"), Path::attr("m_user"))][..])
        );
        match &p.assoc {
            ProvAssoc::Flatten(v) => {
                // Tweet 1 has two mentions at positions 1, 2; tweet 2 none.
                assert_eq!(v.len(), 2);
                let read_ids = match &run.op(0).assoc {
                    ProvAssoc::Read(ids) => ids.clone(),
                    _ => unreachable!(),
                };
                assert_eq!(v[0].0, read_ids[0]);
                assert_eq!(v[0].1, 1);
                assert_eq!(v[1].1, 2);
            }
            other => panic!("unexpected assoc {other:?}"),
        }
    }

    #[test]
    fn map_provenance_is_undefined() {
        use pebble_dataflow::MapUdf;
        use std::sync::Arc;
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let m = b.map(
            r,
            MapUdf {
                name: "noop".into(),
                f: Arc::new(Clone::clone),
                output_schema: None,
            },
        );
        let run = run_captured(&b.build(m), &ctx(), config()).unwrap();
        let p = run.op(1);
        assert_eq!(p.inputs[0].accessed, None); // ⊥, not ∅
        assert_eq!(p.manipulated, None);
    }

    #[test]
    fn aggregation_provenance_records_group_ids() {
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let g = b.group_aggregate(
            r,
            vec![GroupKey::new("retweet_cnt")],
            vec![AggSpec::new(AggFunc::CollectList, "text", "texts")],
        );
        let run = run_captured(&b.build(g), &ctx(), config()).unwrap();
        let p = run.op(1);
        assert_eq!(p.op_type, "aggregation");
        let m = p.manipulated.as_deref().unwrap();
        assert!(m.contains(&(Path::attr("retweet_cnt"), Path::attr("retweet_cnt"))));
        assert!(m.contains(&(Path::attr("text"), Path::parse("texts[pos]"))));
        match &p.assoc {
            ProvAssoc::Agg(v) => {
                assert_eq!(v.len(), 2); // two groups
                assert!(v.iter().all(|(ids, _)| ids.len() == 1));
            }
            other => panic!("unexpected assoc {other:?}"),
        }
    }

    #[test]
    fn select_provenance_manipulations() {
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let s = b.select(
            r,
            vec![
                NamedExpr::aliased("tweet", "text"),
                NamedExpr::new(
                    "meta",
                    SelectExpr::strct([("rt", SelectExpr::path("retweet_cnt"))]),
                ),
            ],
        );
        let run = run_captured(&b.build(s), &ctx(), config()).unwrap();
        let p = run.op(1);
        let m = p.manipulated.as_deref().unwrap();
        assert_eq!(
            m,
            [
                (Path::attr("text"), Path::attr("tweet")),
                (Path::attr("retweet_cnt"), Path::parse("meta.rt")),
            ]
        );
        assert_eq!(
            p.inputs[0].accessed.as_deref().unwrap(),
            [Path::attr("text"), Path::attr("retweet_cnt")]
        );
    }

    #[test]
    fn union_and_join_assoc_sides() {
        let mut b = ProgramBuilder::new();
        let l = b.read("tweets");
        let r = b.read("tweets");
        let u = b.union(l, r);
        let run = run_captured(&b.build(u), &ctx(), config()).unwrap();
        let p = run.op(2);
        match &p.assoc {
            ProvAssoc::Binary(v) => {
                assert_eq!(v.len(), 4);
                assert_eq!(v.iter().filter(|(l, _, _)| l.is_some()).count(), 2);
                assert_eq!(v.iter().filter(|(_, r, _)| r.is_some()).count(), 2);
            }
            other => panic!("unexpected assoc {other:?}"),
        }
        assert_eq!(p.inputs.len(), 2);
        assert_eq!(p.inputs[0].accessed.as_deref(), Some(&[][..]));
    }

    #[test]
    fn size_accounting_monotone() {
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let f = b.flatten(r, "user_mentions", "m_user");
        let run = run_captured(&b.build(f), &ctx(), config()).unwrap();
        assert!(run.structural_bytes() > run.lineage_bytes());
        assert!(run.lineage_bytes() > 0);
    }

    #[test]
    fn capture_does_not_change_result() {
        let mut b = ProgramBuilder::new();
        let r = b.read("tweets");
        let f = b.filter(r, Expr::col("retweet_cnt").eq(Expr::lit(0i64)));
        let p = b.build(f);
        let c = ctx();
        let plain = run(&p, &c, config(), &pebble_dataflow::NoSink).unwrap();
        let captured = run_captured(&p, &c, config()).unwrap();
        assert!(plain.iter_items().eq(captured.output.iter_items()));
    }
}
