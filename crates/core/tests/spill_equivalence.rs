//! Out-of-core equivalence: a run under a memory budget is specified to be
//! *indistinguishable* from the in-memory run — same rows, same
//! identifiers, byte-identical association tables, identical backtrace
//! answers — at every budget, worker count, and morsel size. The budget may
//! only change where intermediate state lives, never what the run computes.

use std::sync::Arc;

use pebble_core::{backtrace, run_captured, run_captured_unfused, Backtrace, ProvTree};
use pebble_dataflow::{
    context::items_of, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, MapUdf, NamedExpr,
    Program, ProgramBuilder,
};
use pebble_nested::{Path, Value};

fn ctx() -> Context {
    let mut c = Context::new();
    let events: Vec<Vec<(&str, Value)>> = (0..60i64)
        .map(|i| {
            let tags = if i == 0 { 17 } else { i % 5 };
            vec![
                ("user", Value::Int(i % 9)),
                ("score", Value::Int(i)),
                ("tags", Value::Bag((0..tags).map(Value::Int).collect())),
            ]
        })
        .collect();
    c.register("events", items_of(events));
    c.register(
        "users",
        items_of(
            (0..9i64)
                .map(|i| vec![("uid", Value::Int(i)), ("org", Value::Int(i % 3))])
                .collect(),
        ),
    );
    c
}

/// Every structural operator in one DAG: flatten, self-union, join, opaque
/// map, grouping with nesting.
fn dag_program() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let fl = b.flatten(r, "tags", "tag");
    let f = b.filter(fl, Expr::col("tag").ge(Expr::lit(1i64)));
    let u = b.union(f, f);
    let users = b.read("users");
    let j = b.join(u, users, vec![(Path::attr("user"), Path::attr("uid"))]);
    let m = b.map(
        j,
        MapUdf {
            name: "noop".into(),
            f: Arc::new(Clone::clone),
            output_schema: None,
        },
    );
    let s = b.select(
        m,
        vec![
            NamedExpr::path("org"),
            NamedExpr::path("score"),
            NamedExpr::path("tag"),
        ],
    );
    let g = b.group_aggregate(
        s,
        vec![GroupKey::new("org")],
        vec![
            AggSpec::new(AggFunc::Count, "", "n"),
            AggSpec::new(AggFunc::CollectList, "score", "scores"),
        ],
    );
    b.build(g)
}

/// Whole-item backtrace of every sink row, serialized for comparison.
fn all_backtraces(run: &pebble_core::CapturedRun) -> String {
    let mut out = String::new();
    for row in &run.output.rows {
        let paths = Path::path_set(&row.item);
        let tree = ProvTree::from_paths(paths.iter());
        let bt = Backtrace {
            entries: vec![(row.id, tree)],
        };
        for src in backtrace(run, bt).unwrap() {
            out.push_str(&format!("{src:?}\n"));
        }
    }
    out
}

/// Budgeted capture vs in-memory capture: identical rows, identifiers,
/// association tables and backtraces, with real spill traffic (engine and
/// capture layer both) reported at the tight budgets.
#[test]
fn budgeted_capture_is_byte_identical() {
    let c = ctx();
    let p = dag_program();
    let base_cfg = ExecConfig::with_partitions(3).mem_budget(0);
    let baseline = run_captured(&p, &c, base_cfg).unwrap();
    assert!(baseline.output.report.spill.is_none());
    let expected_traces = all_backtraces(&baseline);

    for (budget, workers, morsel) in [(1usize, 1usize, 1usize), (1, 7, 3), (4096, 2, 0)] {
        let cfg = ExecConfig::with_partitions(3)
            .workers(workers)
            .morsel_rows(morsel)
            .mem_budget(budget);
        let alt = run_captured(&p, &c, cfg).unwrap();
        assert_eq!(
            baseline.output.rows, alt.output.rows,
            "budget={budget}: rows or ids diverged"
        );
        assert_eq!(
            baseline.output.op_counts, alt.output.op_counts,
            "budget={budget}"
        );
        for (b, a) in baseline.ops.iter().zip(&alt.ops) {
            assert_eq!(
                b.assoc, a.assoc,
                "budget={budget}: association table of op #{} diverged",
                b.oid
            );
        }
        assert_eq!(
            expected_traces,
            all_backtraces(&alt),
            "budget={budget}: backtrace answers diverged"
        );
        let spill = alt
            .output
            .report
            .spill
            .as_ref()
            .expect("budgeted run must report spill stats");
        assert!(spill.spills > 0, "budget={budget}: engine never spilled");
        assert!(
            spill.capture_spills > 0,
            "budget={budget}: capture layer never spilled"
        );
        assert!(spill.capture_spill_bytes > 0);

        // Fusion stays transparent under a budget too.
        let unfused = run_captured_unfused(&p, &c, cfg).unwrap();
        assert_eq!(baseline.output.rows, unfused.output.rows);
        for (b, a) in baseline.ops.iter().zip(&unfused.ops) {
            assert_eq!(b.assoc, a.assoc, "budget={budget} unfused: op #{}", b.oid);
        }
    }
}

/// An injected spill-write failure surfaces as the same typed, path-free
/// error from the engine layer (operator output spill) and the capture
/// layer (association chunk spill).
#[test]
fn spill_fault_is_deterministic_and_path_free() {
    let c = ctx();
    let p = dag_program();
    let cfg = ExecConfig::with_partitions(3).mem_budget(1);
    // Operator 5 is the join: its build side spills through the grace path.
    pebble_dataflow::fault::arm_spill(5);
    let err = run_captured(&p, &c, cfg)
        .err()
        .expect("armed spill fault must fail the run");
    pebble_dataflow::fault::disarm();
    assert_eq!(
        err.to_string(),
        "spill failed at operator #5: injected spill-write failure"
    );
    // Clean after disarm.
    assert!(run_captured(&p, &c, cfg).is_ok());
}
