//! Observational identity of the zero-copy value representation.
//!
//! The interned-[`Label`]/`Arc`-backed representation of items must be
//! invisible to every consumer: JSON serialization round-trips byte for
//! byte, plain and captured executions of generated pipelines emit
//! byte-identical NDJSON (capture cannot perturb results, and the fused
//! per-row pipeline cannot diverge from the unfused semantics), and a
//! checked-in golden fixture pins the exact output bytes of a pipeline
//! exercising fusion, flatten, and aggregation.
//!
//! Re-bless the fixture with `BLESS=1 cargo test -p pebble-core
//! --test representation_equivalence` after an *intentional* output change.

use proptest::prelude::*;

use pebble_core::run_captured;
use pebble_dataflow::{
    context::items_of, Context, ExecConfig, Expr, NamedExpr, NoSink, Program, ProgramBuilder,
    RunOutput,
};
use pebble_nested::{json, DataItem, Label, Value};

fn ndjson(out: &RunOutput) -> String {
    let mut s = String::new();
    for item in out.iter_items() {
        s.push_str(&json::item_to_string(item));
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------------
// JSON roundtrip
// ---------------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e15f64..1e15).prop_map(Value::Double),
        "[ -~]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Bag),
            item_strategy_from(inner).prop_map(Value::Item),
        ]
    })
}

fn item_strategy_from(
    inner: impl Strategy<Value = Value> + Clone,
) -> impl Strategy<Value = DataItem> {
    prop::collection::btree_map("[a-z][a-z0-9_]{0,5}", inner, 0..4).prop_map(|m| {
        let mut d = DataItem::new();
        for (k, v) in m {
            d.push(k, v);
        }
        d
    })
}

proptest! {
    /// Serialize → parse → serialize is byte-identical: the shared-payload
    /// representation introduces no observable difference in how values
    /// print, and parsing reconstructs an equal value.
    #[test]
    fn json_roundtrip_is_byte_identical(v in value_strategy()) {
        let first = json::to_string(&v);
        let reparsed = json::parse(&first).expect("own output must parse");
        prop_assert_eq!(&reparsed, &v);
        let second = json::to_string(&reparsed);
        prop_assert_eq!(first, second);
    }

    /// Labels coming out of parsing intern to the same handles as labels
    /// built directly, and items compare equal regardless of which route
    /// produced their attribute names.
    #[test]
    fn parsed_items_equal_constructed_items(item in item_strategy_from(value_strategy().boxed())) {
        let text = json::item_to_string(&item);
        let parsed = match json::parse(&text).expect("own output must parse") {
            Value::Item(d) => d,
            other => panic!("item must parse as item, got {other:?}"),
        };
        prop_assert_eq!(&parsed, &item);
        let mut rebuilt = DataItem::new();
        for (name, value) in item.fields() {
            rebuilt.push(Label::new(name), value.clone());
        }
        prop_assert_eq!(rebuilt, item);
    }
}

// ---------------------------------------------------------------------------
// Capture–replay equivalence over generated pipelines
// ---------------------------------------------------------------------------

/// One per-row stage of a generated pipeline over the fixed row schema
/// `{k, v, tags}`. Chains of these are exactly what the engine fuses.
#[derive(Clone, Debug)]
enum GenStage {
    FilterLe(i64),
    /// Identity projection of all three columns — schema-preserving, so
    /// stages compose freely.
    SelectAll,
}

#[derive(Clone, Debug)]
struct GenPipeline {
    stages: Vec<GenStage>,
    flatten_tags: bool,
    group: bool,
}

fn row_strategy() -> impl Strategy<Value = (String, i64, Vec<i64>)> {
    ("[a-d]", -20i64..20, prop::collection::vec(0i64..9, 0..4))
}

fn pipeline_strategy() -> impl Strategy<Value = GenPipeline> {
    let stage = prop_oneof![
        (-20i64..20).prop_map(GenStage::FilterLe),
        Just(GenStage::SelectAll),
    ];
    (
        prop::collection::vec(stage, 1..5),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(stages, flatten_tags, group)| GenPipeline {
            stages,
            flatten_tags,
            group,
        })
}

fn build(p: &GenPipeline) -> Program {
    use pebble_dataflow::{AggFunc, AggSpec, GroupKey};
    let mut b = ProgramBuilder::new();
    let mut cur = b.read("rows");
    for stage in &p.stages {
        cur = match stage {
            GenStage::FilterLe(c) => b.filter(cur, Expr::col("v").le(Expr::lit(*c))),
            GenStage::SelectAll => b.select(
                cur,
                vec![
                    NamedExpr::path("k"),
                    NamedExpr::path("v"),
                    NamedExpr::path("tags"),
                ],
            ),
        };
    }
    if p.flatten_tags {
        cur = b.flatten(cur, "tags", "tag");
    }
    if p.group {
        cur = b.group_aggregate(
            cur,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::Sum, "v", "sum_v")],
        );
    }
    b.build(cur)
}

fn context_of(rows: &[(String, i64, Vec<i64>)]) -> Context {
    let mut ctx = Context::new();
    ctx.register(
        "rows",
        items_of(
            rows.iter()
                .map(|(k, v, tags)| {
                    vec![
                        ("k", Value::str(k.as_str())),
                        ("v", Value::Int(*v)),
                        (
                            "tags",
                            Value::Bag(tags.iter().copied().map(Value::Int).collect()),
                        ),
                    ]
                })
                .collect(),
        ),
    );
    ctx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plain execution, captured execution, and a differently partitioned
    /// plain execution all emit byte-identical NDJSON, and capture leaves
    /// row identifiers untouched.
    #[test]
    fn capture_replay_ndjson_identical(
        rows in prop::collection::vec(row_strategy(), 0..30),
        pipe in pipeline_strategy(),
    ) {
        let program = build(&pipe);
        let ctx = context_of(&rows);
        let plain = pebble_dataflow::run(
            &program, &ctx, ExecConfig::with_partitions(3), &NoSink,
        ).unwrap();
        let captured = run_captured(&program, &ctx, ExecConfig::with_partitions(3)).unwrap();
        prop_assert_eq!(ndjson(&plain), ndjson(&captured.output));
        let plain_ids: Vec<_> = plain.rows.iter().map(|r| r.id).collect();
        let cap_ids: Vec<_> = captured.output.rows.iter().map(|r| r.id).collect();
        prop_assert_eq!(plain_ids, cap_ids);

        let one = pebble_dataflow::run(
            &program, &ctx, ExecConfig::with_partitions(1), &NoSink,
        ).unwrap();
        prop_assert_eq!(ndjson(&one), ndjson(&plain));
    }
}

// ---------------------------------------------------------------------------
// Golden fixture
// ---------------------------------------------------------------------------

const GOLDEN: &str = include_str!("golden/representation_pipeline.ndjson");

/// A fixed pipeline exercising a fusable filter→select→filter chain,
/// flatten, and grouped aggregation over a fixed dataset.
fn golden_program() -> Program {
    use pebble_dataflow::{AggFunc, AggSpec, GroupKey};
    let mut b = ProgramBuilder::new();
    let r = b.read("rows");
    let f1 = b.filter(r, Expr::col("v").le(Expr::lit(15i64)));
    let s = b.select(
        f1,
        vec![
            NamedExpr::path("k"),
            NamedExpr::path("v"),
            NamedExpr::path("tags"),
        ],
    );
    let f2 = b.filter(s, Expr::col("v").ge(Expr::lit(-15i64)));
    let fl = b.flatten(f2, "tags", "tag");
    let g = b.group_aggregate(
        fl,
        vec![GroupKey::new("k"), GroupKey::new("tag")],
        vec![AggSpec::new(AggFunc::Sum, "v", "sum_v")],
    );
    b.build(g)
}

fn golden_context() -> Context {
    // Deterministic tiny dataset: k cycles a..d, v sweeps, tags vary.
    let rows: Vec<(String, i64, Vec<i64>)> = (0..24)
        .map(|i| {
            let k = char::from(b'a' + (i % 4) as u8).to_string();
            let v = (i as i64 * 7) % 41 - 20;
            let tags = (0..(i % 3)).map(|t| (i as i64 + t as i64) % 5).collect();
            (k, v, tags)
        })
        .collect();
    context_of(&rows)
}

#[test]
fn golden_pipeline_output_matches_fixture() {
    let out = pebble_dataflow::run(
        &golden_program(),
        &golden_context(),
        ExecConfig::with_partitions(3),
        &NoSink,
    )
    .unwrap();
    let text = ndjson(&out);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/representation_pipeline.ndjson"
            ),
            &text,
        )
        .unwrap();
        return;
    }
    assert_eq!(
        text, GOLDEN,
        "pipeline output diverged from the checked-in fixture"
    );
    // Capture must reproduce the same bytes.
    let cap = run_captured(
        &golden_program(),
        &golden_context(),
        ExecConfig::with_partitions(3),
    )
    .unwrap();
    assert_eq!(ndjson(&cap.output), GOLDEN);
}
