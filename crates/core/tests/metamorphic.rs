//! Metamorphic properties of capture and backtracing.
//!
//! Two families of invariants that need no oracle, only the engine run
//! against itself under meaning-preserving changes:
//!
//! * **capture transparency** — running with the capture sink attached
//!   returns byte-identical results to a plain run (same rows, same
//!   identifiers, same schemas), fused or unfused;
//! * **partition/fusion invariance of backtracing** — the *answer* to a
//!   provenance question (which source items, which tree shapes) cannot
//!   depend on how the engine chunked or fused the work. Identifiers may
//!   differ across partition counts, so answers are compared in the
//!   identifier-free canonical form of [`canonical_provenance`].

use std::sync::Arc;

use pebble_core::{
    backtrace, canonical_provenance, run_captured, run_captured_unfused, PatternNode, ProvTree,
    TreePattern,
};
use pebble_dataflow::{
    context::items_of, run, run_unfused, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey,
    MapUdf, NamedExpr, NoSink, Program, ProgramBuilder,
};
use pebble_nested::{json, Path, Value};

/// Partition counts every invariant is checked under.
const PARTITIONS: [usize; 3] = [1, 2, 7];

/// An identifier-free backtrace answer: `(source, index, tree)` entries as
/// produced by [`canonical_provenance`].
type CanonicalAnswer = Vec<(String, usize, String)>;

fn ctx() -> Context {
    let mut c = Context::new();
    c.register(
        "events",
        items_of(vec![
            vec![
                ("user", Value::str("ada")),
                ("score", Value::Int(3)),
                (
                    "tags",
                    Value::Bag(vec![Value::str("a"), Value::str("b"), Value::str("c")]),
                ),
            ],
            vec![
                ("user", Value::str("bob")),
                ("score", Value::Int(7)),
                ("tags", Value::Bag(vec![Value::str("b")])),
            ],
            vec![
                ("user", Value::str("ada")),
                ("score", Value::Int(10)),
                ("tags", Value::Bag(vec![])),
            ],
            vec![
                ("user", Value::str("cyd")),
                ("score", Value::Int(1)),
                ("tags", Value::Bag(vec![Value::str("a"), Value::str("a")])),
            ],
            vec![
                ("user", Value::str("bob")),
                ("score", Value::Int(4)),
                ("tags", Value::Bag(vec![Value::str("c"), Value::str("a")])),
            ],
        ]),
    );
    c.register(
        "users",
        items_of(vec![
            vec![("name", Value::str("ada")), ("org", Value::str("x"))],
            vec![("name", Value::str("bob")), ("org", Value::str("y"))],
        ]),
    );
    c
}

/// A fusable per-row chain: read → filter → select → filter.
fn chain_program() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let f = b.filter(r, Expr::col("score").ge(Expr::lit(2i64)));
    let s = b.select(
        f,
        vec![
            NamedExpr::path("user"),
            NamedExpr::path("tags"),
            NamedExpr::aliased("points", "score"),
        ],
    );
    let f2 = b.filter(s, Expr::col("points").lt(Expr::lit(10i64)));
    b.build(f2)
}

/// A DAG hitting every structural operator: flatten, join, self-union
/// (multi-consumer node), opaque map, and grouping with nesting.
fn dag_program() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let fl = b.flatten(r, "tags", "tag");
    let u = b.union(fl, fl);
    let users = b.read("users");
    let j = b.join(u, users, vec![(Path::attr("user"), Path::attr("name"))]);
    // Opaque map (no declared schema): downstream paths resolve against
    // the wildcard schema, and backtracing hits the ⊥ rule.
    let m = b.map(
        j,
        MapUdf {
            name: "noop".into(),
            f: Arc::new(Clone::clone),
            output_schema: None,
        },
    );
    let g = b.group_aggregate(
        m,
        vec![GroupKey::new("tag")],
        vec![
            AggSpec::new(AggFunc::Count, "", "n"),
            AggSpec::new(AggFunc::Sum, "score", "total"),
            AggSpec::new(AggFunc::CollectList, "user", "users"),
        ],
    );
    b.build(g)
}

fn programs() -> Vec<(&'static str, Program)> {
    vec![("chain", chain_program()), ("dag", dag_program())]
}

fn ndjson(rows: &[pebble_dataflow::Row]) -> String {
    rows.iter()
        .map(|r| json::item_to_string(&r.item))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Capture on vs off: byte-identical output, fused and unfused, at every
/// partition count — attaching the provenance sink cannot perturb results.
#[test]
fn capture_on_off_outputs_are_byte_identical() {
    let c = ctx();
    for (name, p) in programs() {
        for parts in PARTITIONS {
            let config = ExecConfig::with_partitions(parts);
            let plain = run(&p, &c, config, &NoSink).unwrap();
            let captured = run_captured(&p, &c, config).unwrap();
            assert_eq!(
                plain.rows, captured.output.rows,
                "{name} p={parts}: captured fused run differs from plain"
            );
            assert_eq!(
                ndjson(&plain.rows),
                ndjson(&captured.output.rows),
                "{name} p={parts}: serialized bytes differ"
            );

            let plain_unfused = run_unfused(&p, &c, config, &NoSink).unwrap();
            let captured_unfused = run_captured_unfused(&p, &c, config).unwrap();
            assert_eq!(
                plain_unfused.rows, captured_unfused.output.rows,
                "{name} p={parts}: captured unfused run differs from plain"
            );
            // Fused and unfused agree bit-for-bit, ids included.
            assert_eq!(
                plain.rows, plain_unfused.rows,
                "{name} p={parts}: fusion changed rows or ids"
            );
        }
    }
}

/// One provenance question per program, asked of every (partitions,
/// fusion) combination: the canonical answer must be identical. Items are
/// matched by content (row index), since identifiers differ across
/// partition counts by design.
#[test]
fn backtrace_answers_invariant_under_partitioning_and_fusion() {
    let c = ctx();
    for (name, p) in programs() {
        let mut answers: Vec<(String, CanonicalAnswer)> = Vec::new();
        for parts in PARTITIONS {
            let config = ExecConfig::with_partitions(parts);
            for (mode, captured) in [
                ("fused", run_captured(&p, &c, config).unwrap()),
                ("unfused", run_captured_unfused(&p, &c, config).unwrap()),
            ] {
                // Whole-item trace of the first output row.
                let row = &captured.output.rows[0];
                let paths = Path::path_set(&row.item);
                let tree = ProvTree::from_paths(paths.iter());
                let bt = pebble_core::Backtrace {
                    entries: vec![(row.id, tree)],
                };
                let whole = canonical_provenance(&backtrace(&captured, bt).unwrap());
                answers.push((format!("{name}/{mode}/p={parts}/whole-item"), whole));

                // Pattern query over a root attribute of the sink schema.
                let sink = captured.program.sink() as usize;
                let field = captured.output.op_schemas[sink].fields().unwrap()[0]
                    .name
                    .clone();
                let pattern = TreePattern::root().node(PatternNode::attr(&field));
                let bt = pattern.match_rows(&captured.output.rows);
                let pat = canonical_provenance(&backtrace(&captured, bt).unwrap());
                answers.push((format!("{name}/{mode}/p={parts}/pattern"), pat));
            }
        }
        // All whole-item answers equal; all pattern answers equal.
        for kind in ["whole-item", "pattern"] {
            let of_kind: Vec<_> = answers.iter().filter(|(n, _)| n.ends_with(kind)).collect();
            let (base_name, base) = of_kind[0];
            for (other_name, other) in &of_kind[1..] {
                assert_eq!(
                    base, other,
                    "backtrace answer differs: {base_name} vs {other_name}"
                );
            }
        }
    }
}

/// The association tables themselves are partition-*sensitive* (ids encode
/// partitions) but their *shape* is not: per-operator entry counts match
/// the operator's output row count at every partition count.
#[test]
fn association_table_sizes_invariant() {
    let c = ctx();
    for (name, p) in programs() {
        let baseline = run_captured(&p, &c, ExecConfig::with_partitions(1)).unwrap();
        for parts in PARTITIONS {
            let captured = run_captured(&p, &c, ExecConfig::with_partitions(parts)).unwrap();
            assert_eq!(
                baseline.output.op_counts, captured.output.op_counts,
                "{name} p={parts}: op_counts changed"
            );
            for (a, b) in baseline.ops.iter().zip(&captured.ops) {
                assert_eq!(
                    a.assoc.len(),
                    b.assoc.len(),
                    "{name} p={parts}: op {} association size changed",
                    a.oid
                );
                // The static parts of Def. 5.1 (A and M) are
                // partition-independent outright.
                assert_eq!(a.inputs, b.inputs, "{name} p={parts}: A changed");
                assert_eq!(a.manipulated, b.manipulated, "{name} p={parts}: M changed");
            }
        }
    }
}
