//! Observation transparency: reading the run report must not perturb the
//! run. Executions with metrics and tracing enabled are byte-identical —
//! rows, identifiers, association tables, and backtrace answers — to
//! executions with observability disabled, at every partition count.
//!
//! This is the metamorphic guarantee documented on
//! [`pebble_dataflow::RunOutput::report`]: telemetry is read-only.

use std::sync::Arc;

use pebble_core::{
    backtrace, canonical_provenance, run_captured_observed, Backtrace, BacktraceIndex, ProvTree,
};
use pebble_dataflow::{
    context::items_of, run, run_observed, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey,
    MapUdf, NoSink, ObsConfig, Program, ProgramBuilder,
};
use pebble_nested::{Path, Value};

const PARTITIONS: [usize; 3] = [1, 2, 7];

fn ctx() -> Context {
    let mut c = Context::new();
    c.register(
        "events",
        items_of(vec![
            vec![
                ("user", Value::str("ada")),
                ("score", Value::Int(3)),
                (
                    "tags",
                    Value::Bag(vec![Value::str("a"), Value::str("b"), Value::str("c")]),
                ),
            ],
            vec![
                ("user", Value::str("bob")),
                ("score", Value::Int(7)),
                ("tags", Value::Bag(vec![Value::str("b")])),
            ],
            vec![
                ("user", Value::str("cyd")),
                ("score", Value::Int(1)),
                ("tags", Value::Bag(vec![Value::str("a"), Value::str("a")])),
            ],
            vec![
                ("user", Value::str("bob")),
                ("score", Value::Int(4)),
                ("tags", Value::Bag(vec![Value::str("c"), Value::str("a")])),
            ],
        ]),
    );
    c.register(
        "users",
        items_of(vec![
            vec![("name", Value::str("ada")), ("org", Value::str("x"))],
            vec![("name", Value::str("bob")), ("org", Value::str("y"))],
        ]),
    );
    c
}

/// A DAG covering every structural operator plus an opaque map, so the
/// invariant is checked across all association-table shapes.
fn program() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let f = b.filter(r, Expr::col("score").ge(Expr::lit(2i64)));
    let fl = b.flatten(f, "tags", "tag");
    let users = b.read("users");
    let j = b.join(fl, users, vec![(Path::attr("user"), Path::attr("name"))]);
    let u = b.union(j, j);
    let m = b.map(
        u,
        MapUdf {
            name: "noop".into(),
            f: Arc::new(Clone::clone),
            output_schema: None,
        },
    );
    let g = b.group_aggregate(
        m,
        vec![GroupKey::new("tag")],
        vec![
            AggSpec::new(AggFunc::Count, "", "n"),
            AggSpec::new(AggFunc::CollectList, "user", "users"),
        ],
    );
    b.build(g)
}

/// Whole-item backtrace question for one output row.
fn whole_item(row: &pebble_dataflow::Row) -> Backtrace {
    let paths = Path::path_set(&row.item);
    Backtrace {
        entries: vec![(row.id, ProvTree::from_paths(paths.iter()))],
    }
}

fn trace_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "pebble-obs-transparency-{}-{tag}.ndjson",
        std::process::id()
    ))
}

/// Captured runs with full observability (metrics + tracing) vs disabled:
/// rows, ids, per-op counts, association tables, and backtraces are all
/// byte-identical.
#[test]
fn metrics_on_off_runs_are_byte_identical() {
    let c = ctx();
    let p = program();
    for parts in PARTITIONS {
        let config = ExecConfig::with_partitions(parts);
        let path = trace_path(&format!("p{parts}"));
        let _ = std::fs::remove_file(&path);
        let observed_cfg = ObsConfig {
            metrics: true,
            trace_path: Some(path.to_string_lossy().into_owned()),
        };

        let (off, off_report) = run_captured_observed(&p, &c, config, &ObsConfig::disabled());
        let (on, on_report) = run_captured_observed(&p, &c, config, &observed_cfg);
        let off = off.unwrap();
        let on = on.unwrap();

        // The reports differ (one carries timings), the runs must not.
        assert!(!off_report.metrics && on_report.metrics);
        assert_eq!(off.output.rows, on.output.rows, "p={parts}: rows or ids");
        assert_eq!(
            off.output.op_counts, on.output.op_counts,
            "p={parts}: op counts"
        );
        assert_eq!(
            off.output.op_schemas, on.output.op_schemas,
            "p={parts}: schemas"
        );
        for (a, b) in off.ops.iter().zip(&on.ops) {
            assert_eq!(a, b, "p={parts}: association tables");
        }

        // Even structural (always-on) counters agree between the two modes.
        assert_eq!(off_report.morsels, on_report.morsels, "p={parts}: morsels");
        for (a, b) in off_report.operators.iter().zip(&on_report.operators) {
            assert_eq!(
                (a.rows_in, a.rows_out, a.morsels),
                (b.rows_in, b.rows_out, b.morsels),
                "p={parts}: per-op structural counters"
            );
        }

        // Backtracing the whole first output row gives identical raw and
        // canonical answers.
        let row_off = &off.output.rows[0];
        let row_on = &on.output.rows[0];
        assert_eq!(row_off.id, row_on.id);
        let q_off = whole_item(row_off);
        let q_on = whole_item(row_on);
        let idx_off = BacktraceIndex::build(&off);
        let idx_on = BacktraceIndex::build(&on);
        let a = pebble_core::backtrace_with(&off, &idx_off, q_off).unwrap();
        let b = pebble_core::backtrace_with(&on, &idx_on, q_on).unwrap();
        assert_eq!(a, b, "p={parts}: backtrace answers");
        assert_eq!(canonical_provenance(&a), canonical_provenance(&b));

        // The trace file was actually produced by the observed run.
        let trace = std::fs::read_to_string(&path).expect("trace file written");
        assert!(!trace.is_empty(), "p={parts}: empty trace");
        let _ = std::fs::remove_file(&path);
    }
}

/// The transparency guarantee extends to the columnar execution path:
/// metrics on/off does not perturb a columnar run, the columnar run is
/// byte-identical to the row-path run, and the report's `columnar` section
/// carries the same structural counters in both observation modes.
#[test]
fn columnar_runs_unperturbed_and_reported() {
    let c = ctx();
    let p = program();
    for parts in PARTITIONS {
        let col_cfg = ExecConfig::with_partitions(parts).columnar(true);
        let (off, off_report) = run_captured_observed(&p, &c, col_cfg, &ObsConfig::disabled());
        let (on, on_report) = run_captured_observed(&p, &c, col_cfg, &ObsConfig::metrics());
        let off = off.unwrap();
        let on = on.unwrap();
        assert_eq!(off.output.rows, on.output.rows, "p={parts}: rows or ids");
        for (a, b) in off.ops.iter().zip(&on.ops) {
            assert_eq!(a, b, "p={parts}: association tables");
        }

        // Columnar vs row path, same config otherwise: byte-identical.
        let row_cfg = ExecConfig::with_partitions(parts).columnar(false);
        let (row, row_report) = run_captured_observed(&p, &c, row_cfg, &ObsConfig::disabled());
        let row = row.unwrap();
        assert_eq!(
            row.output.rows, on.output.rows,
            "p={parts}: columnar vs row"
        );
        for (a, b) in row.ops.iter().zip(&on.ops) {
            assert_eq!(a, b, "p={parts}: columnar vs row tables");
        }

        // The columnar report section is structural (always-on for
        // columnar runs) and identical across observation modes; a row
        // run reports no columnar section at all.
        let col_on = on_report.columnar.as_ref().expect("columnar stats on");
        let col_off = off_report.columnar.as_ref().expect("columnar stats off");
        assert_eq!(col_on, col_off, "p={parts}: columnar counters");
        assert!(row_report.columnar.is_none(), "p={parts}: row run section");
        assert!(on_report.to_json().contains("\"columnar\""));
    }
}

/// The same guarantee for plain (uncaptured) runs: `run` and `run_observed`
/// with metrics on return identical outputs.
#[test]
fn plain_run_unperturbed_by_metrics() {
    let c = ctx();
    let p = program();
    for parts in PARTITIONS {
        let config = ExecConfig::with_partitions(parts);
        let plain = run(&p, &c, config, &NoSink).unwrap();
        let (observed, report) = run_observed(&p, &c, config, &NoSink, &ObsConfig::metrics());
        let observed = observed.unwrap();
        assert!(report.metrics);
        assert_eq!(plain.rows, observed.rows, "p={parts}");
        assert_eq!(plain.op_counts, observed.op_counts, "p={parts}");
    }
}

/// Backtracing still works against a run whose report was read first —
/// reading the report takes no locks and moves no data.
#[test]
fn reading_report_then_backtracing() {
    let c = ctx();
    let p = program();
    let (run, report) = run_captured_observed(
        &p,
        &c,
        ExecConfig::with_partitions(2),
        &ObsConfig::metrics(),
    );
    let run = run.unwrap();
    let json = report.to_json();
    assert!(json.contains("\"schema_version\":2") || json.contains("\"schema_version\": 2"));
    let row = &run.output.rows[0];
    let sources = backtrace(&run, whole_item(row)).unwrap();
    assert!(!sources.is_empty());
}
