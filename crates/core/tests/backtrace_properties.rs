//! Property-based tests of the backtracing algorithm over randomly
//! generated pipelines: structural provenance must stay within lineage,
//! eager and lazy answers must agree, contributing paths must exist in the
//! traced input items, and tracing the full result must reach every input
//! item a lineage trace reaches.

use proptest::prelude::*;

use pebble_core::{backtrace, run_captured, Backtrace, ProvTree, TreePattern};
use pebble_dataflow::{
    AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, Program, ProgramBuilder,
};
use pebble_nested::{DataItem, Path, Value};

fn cfg() -> ExecConfig {
    ExecConfig::with_partitions(3)
}

/// Small nested rows: k (group key), v (numeric), xs (nested bag of items).
fn dataset_strategy() -> impl Strategy<Value = Vec<DataItem>> {
    prop::collection::vec(
        (
            0i64..4,
            0i64..40,
            prop::collection::vec((0i64..6, 0i64..3), 0..4),
        )
            .prop_map(|(k, v, xs)| {
                DataItem::from_fields([
                    ("k", Value::Int(k)),
                    ("v", Value::Int(v)),
                    (
                        "xs",
                        Value::Bag(
                            xs.into_iter()
                                .map(|(a, b)| {
                                    Value::Item(DataItem::from_fields([
                                        ("a", Value::Int(a)),
                                        ("b", Value::Int(b)),
                                    ]))
                                })
                                .collect(),
                        ),
                    ),
                ])
            }),
        1..14,
    )
}

/// One of several pipeline shapes covering every operator kind.
#[derive(Debug, Clone, Copy)]
enum Shape {
    FilterFlatten,
    FlattenSelectGroup,
    UnionFilter,
    JoinSelect,
    FilterGroupScalar,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::FilterFlatten),
        Just(Shape::FlattenSelectGroup),
        Just(Shape::UnionFilter),
        Just(Shape::JoinSelect),
        Just(Shape::FilterGroupScalar),
    ]
}

fn build(shape: Shape, threshold: i64) -> Program {
    let mut b = ProgramBuilder::new();
    match shape {
        Shape::FilterFlatten => {
            let r = b.read("src");
            let f = b.filter(r, Expr::col("v").ge(Expr::lit(threshold)));
            let fl = b.flatten(f, "xs", "x");
            b.build(fl)
        }
        Shape::FlattenSelectGroup => {
            let r = b.read("src");
            let fl = b.flatten(r, "xs", "x");
            let s = b.select(
                fl,
                vec![
                    pebble_dataflow::NamedExpr::path("k"),
                    pebble_dataflow::NamedExpr::aliased("val", "x.a"),
                ],
            );
            let g = b.group_aggregate(
                s,
                vec![GroupKey::new("k")],
                vec![AggSpec::new(AggFunc::CollectList, "val", "vals")],
            );
            b.build(g)
        }
        Shape::UnionFilter => {
            let l = b.read("src");
            let r = b.read("src");
            let u = b.union(l, r);
            let f = b.filter(u, Expr::col("v").lt(Expr::lit(threshold)));
            b.build(f)
        }
        Shape::JoinSelect => {
            let l = b.read("src");
            let r = b.read("src2");
            let j = b.join(l, r, vec![(Path::attr("k"), Path::attr("k"))]);
            let s = b.select(
                j,
                vec![
                    pebble_dataflow::NamedExpr::path("k"),
                    pebble_dataflow::NamedExpr::aliased("left_v", "v"),
                    pebble_dataflow::NamedExpr::aliased("right_v", "v_r"),
                ],
            );
            b.build(s)
        }
        Shape::FilterGroupScalar => {
            let r = b.read("src");
            let f = b.filter(r, Expr::col("v").ge(Expr::lit(threshold)));
            let g = b.group_aggregate(
                f,
                vec![GroupKey::new("k")],
                vec![
                    AggSpec::new(AggFunc::Sum, "v", "total"),
                    AggSpec::new(AggFunc::Count, "", "n"),
                ],
            );
            b.build(g)
        }
    }
}

fn contexts(data: &[DataItem], data2: &[DataItem]) -> Context {
    let mut ctx = Context::new();
    ctx.register("src", data.to_vec());
    ctx.register("src2", data2.to_vec());
    ctx
}

/// Full-result trace: every result row with its complete path tree.
fn whole_result_backtrace(run: &pebble_core::CapturedRun) -> Backtrace {
    Backtrace {
        entries: run
            .output
            .rows
            .iter()
            .map(|r| {
                let paths = Path::path_set(&r.item);
                (r.id, ProvTree::from_paths(paths.iter()))
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contributing paths returned by backtracing exist in the actual
    /// input items, and every traced index is valid.
    #[test]
    fn contributing_paths_exist_in_inputs(
        data in dataset_strategy(),
        data2 in dataset_strategy(),
        shape in shape_strategy(),
        threshold in 0i64..40,
    ) {
        let ctx = contexts(&data, &data2);
        let program = build(shape, threshold);
        let run = run_captured(&program, &ctx, cfg()).unwrap();
        let b = whole_result_backtrace(&run);
        for source in backtrace(&run, b).unwrap() {
            let items = ctx.source(&source.source).unwrap();
            for entry in &source.entries {
                prop_assert!(entry.index < items.len());
                let item = &items[entry.index];
                for path in entry.tree.contributing_paths() {
                    // Paths may contain [pos] nodes from access marking;
                    // eval_all tolerates them.
                    if path.has_placeholder() {
                        continue;
                    }
                    prop_assert!(
                        path.eval(item).is_some(),
                        "path {path} missing in input {item}"
                    );
                }
            }
        }
    }

    /// The structural answer never traces an input item lineage would not.
    #[test]
    fn contained_in_lineage(
        data in dataset_strategy(),
        data2 in dataset_strategy(),
        shape in shape_strategy(),
        threshold in 0i64..40,
    ) {
        use pebble_baselines_shim::*;
        let ctx = contexts(&data, &data2);
        let program = build(shape, threshold);
        let run = run_captured(&program, &ctx, cfg()).unwrap();
        let ids: Vec<u64> = run.output.rows.iter().map(|r| r.id).collect();
        let structural = backtrace(&run, whole_result_backtrace(&run)).unwrap();
        let lineage = lineage_trace(&program, &ctx, &ids);
        for sp in &structural {
            let indices = lineage
                .iter()
                .find(|(op, _)| *op == sp.read_op)
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            for e in &sp.entries {
                prop_assert!(
                    indices.contains(&e.index),
                    "read {} index {} beyond lineage {:?}",
                    sp.read_op, e.index, indices
                );
            }
        }
    }

    /// Eager and fully lazy tracing return identical item sets.
    #[test]
    fn eager_equals_lazy(
        data in dataset_strategy(),
        data2 in dataset_strategy(),
        shape in shape_strategy(),
        threshold in 0i64..40,
    ) {
        let ctx = contexts(&data, &data2);
        let program = build(shape, threshold);
        let pattern = TreePattern::root(); // trace everything matched (all)
        let run = run_captured(&program, &ctx, cfg()).unwrap();
        // Empty pattern gives empty trees; enrich with full item paths so
        // the trace is meaningful.
        let eager = backtrace(&run, whole_result_backtrace(&run)).unwrap();
        let (lazy, _) = pebble_baselines_shim::lazy_full(&program, &ctx, &pattern);
        // Compare per-read traced index sets.
        for sp in &eager {
            let lz: Vec<usize> = lazy
                .iter()
                .find(|l| l.read_op == sp.read_op)
                .map(|l| l.entries.iter().map(|e| e.index).collect())
                .unwrap_or_default();
            let eg: Vec<usize> = sp.entries.iter().map(|e| e.index).collect();
            prop_assert_eq!(eg, lz, "read {}", sp.read_op);
        }
    }
}

/// Thin wrappers so the property bodies stay readable (and to keep the
/// baseline crate out of the happy path imports above).
mod pebble_baselines_shim {
    use super::*;

    pub fn lineage_trace(
        program: &Program,
        ctx: &Context,
        result_ids: &[u64],
    ) -> Vec<(u32, Vec<usize>)> {
        let lrun = pebble_baselines::run_lineage(program, ctx, cfg()).unwrap();
        pebble_baselines::trace_back(&lrun, result_ids)
            .into_iter()
            .map(|s| (s.read_op, s.indices))
            .collect()
    }

    pub fn lazy_full(
        program: &Program,
        ctx: &Context,
        _pattern: &TreePattern,
    ) -> (Vec<pebble_core::SourceProvenance>, ()) {
        // Lazy semantics with a full-result trace: re-run per read and
        // trace the whole result, keeping only that read's provenance.
        let mut out = Vec::new();
        for (read_op, _) in program.reads() {
            let run = run_captured(program, ctx, cfg()).unwrap();
            let b = super::whole_result_backtrace(&run);
            let mut sources = backtrace(&run, b).unwrap();
            sources.retain(|s| s.read_op == read_op);
            out.extend(sources);
        }
        (out, ())
    }
}
