//! Cross-validation of the lightweight capture (Sec. 5.1) against the full
//! reference model (Sec. 4.3): for every operator, the identifier
//! associations recorded by the engine hook must describe exactly the
//! input/output relationships the full model derives, and the schema-level
//! `A`/`M` path sets must be the generalization of the model's concrete
//! paths.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pebble_core::model;
use pebble_core::{run_captured, ProvAssoc};
use pebble_dataflow::{
    context::items_of, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, NamedExpr, OpKind,
    ProgramBuilder,
};
use pebble_nested::{DataItem, Path, Value};

fn cfg() -> ExecConfig {
    ExecConfig::with_partitions(3)
}

/// Runs `read → op` captured and returns, per association entry, the input
/// dataset indices it references, together with the result multiset.
struct Observed {
    /// For unary/flatten ops: (input index, output item).
    pairs: Vec<(Vec<usize>, DataItem)>,
}

fn observe_unary(kind: OpKind, data: Vec<DataItem>) -> Observed {
    let mut ctx = Context::new();
    ctx.register("src", data);
    let mut b = ProgramBuilder::new();
    let r = b.read("src");
    let id = b.ops_push(kind, vec![r]);
    let program = b.build(id);
    let run = run_captured(&program, &ctx, cfg()).unwrap();
    let read_ids = match &run.op(0).assoc {
        ProvAssoc::Read(ids) => ids.clone(),
        _ => unreachable!(),
    };
    let idx = |id: u64| read_ids.iter().position(|&i| i == id).unwrap();
    let out_item = |out: u64| {
        run.output
            .rows
            .iter()
            .find(|r| r.id == out)
            .unwrap()
            .item
            .clone()
    };
    let pairs = match &run.op(1).assoc {
        ProvAssoc::Unary(v) => v
            .iter()
            .map(|&(i, o)| (vec![idx(i)], out_item(o)))
            .collect(),
        ProvAssoc::Flatten(v) => v
            .iter()
            .map(|&(i, _pos, o)| (vec![idx(i)], out_item(o)))
            .collect(),
        ProvAssoc::Agg(v) => v
            .iter()
            .map(|(ids, o)| (ids.iter().map(|&i| idx(i)).collect(), out_item(*o)))
            .collect(),
        other => panic!("unexpected assoc {other:?}"),
    };
    Observed { pairs }
}

/// Extension trait to push a raw OpKind through the builder.
trait BuilderExt {
    fn ops_push(&mut self, kind: OpKind, inputs: Vec<u32>) -> u32;
}

impl BuilderExt for ProgramBuilder {
    fn ops_push(&mut self, kind: OpKind, inputs: Vec<u32>) -> u32 {
        match kind {
            OpKind::Filter { predicate } => self.filter(inputs[0], predicate),
            OpKind::Select { exprs } => self.select(inputs[0], exprs),
            OpKind::Map { udf } => self.map(inputs[0], udf),
            OpKind::Flatten { col, new_attr } => {
                self.flatten(inputs[0], &col.to_string(), new_attr)
            }
            OpKind::GroupAggregate { keys, aggs } => self.group_aggregate(inputs[0], keys, aggs),
            OpKind::Union => self.union(inputs[0], inputs[1]),
            OpKind::Join { keys } => self.join(inputs[0], inputs[1], keys),
            OpKind::Read { source } => self.read(source),
        }
    }
}

/// Canonicalizes (inputs, item) pairs for multiset comparison.
fn canon(mut pairs: Vec<(Vec<usize>, DataItem)>) -> Vec<(Vec<usize>, String)> {
    let mut out: Vec<(Vec<usize>, String)> = pairs
        .drain(..)
        .map(|(mut ins, item)| {
            ins.sort_unstable();
            (ins, format!("{item}"))
        })
        .collect();
    out.sort();
    out
}

fn model_pairs(kind: &OpKind, data: &[DataItem]) -> Vec<(Vec<usize>, DataItem)> {
    model::apply(kind, &[data])
        .unwrap()
        .into_iter()
        .map(|p| (p.inputs.iter().map(|i| i.index).collect(), p.item))
        .collect()
}

fn check_equiv(kind: OpKind, data: Vec<DataItem>) {
    let expected = canon(model_pairs(&kind, &data));
    let observed = canon(observe_unary(kind, data).pairs);
    assert_eq!(expected, observed);
}

fn dataset_strategy() -> impl Strategy<Value = Vec<DataItem>> {
    prop::collection::vec(
        (0i64..4, 0i64..50, prop::collection::vec(0i64..5, 0..4)).prop_map(|(k, v, xs)| {
            DataItem::from_fields([
                ("k", Value::Int(k)),
                ("v", Value::Int(v)),
                ("xs", Value::Bag(xs.into_iter().map(Value::Int).collect())),
            ])
        }),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Filter: lightweight associations = full-model associations.
    #[test]
    fn filter_equivalent(data in dataset_strategy(), threshold in 0i64..50) {
        check_equiv(
            OpKind::Filter { predicate: Expr::col("v").ge(Expr::lit(threshold)) },
            data,
        );
    }

    /// Select restructuring.
    #[test]
    fn select_equivalent(data in dataset_strategy()) {
        check_equiv(
            OpKind::Select {
                exprs: vec![
                    NamedExpr::aliased("key", "k"),
                    NamedExpr::aliased("val", "v"),
                ],
            },
            data,
        );
    }

    /// Flatten: per-element explosion with positions.
    #[test]
    fn flatten_equivalent(data in dataset_strategy()) {
        check_equiv(
            OpKind::Flatten { col: Path::attr("xs"), new_attr: "x".into() },
            data,
        );
    }

    /// Grouping + aggregation: same groups, same members, same results.
    #[test]
    fn aggregation_equivalent(data in dataset_strategy()) {
        check_equiv(
            OpKind::GroupAggregate {
                keys: vec![GroupKey::new("k")],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum, "v", "total"),
                    AggSpec::new(AggFunc::CollectList, "v", "vs"),
                    AggSpec::new(AggFunc::Count, "", "n"),
                ],
            },
            data,
        );
    }

    /// Capture never changes the computed result (capture–replay
    /// equivalence over a small pipeline).
    #[test]
    fn capture_replay_equivalence(data in dataset_strategy(), threshold in 0i64..50) {
        let mut ctx = Context::new();
        ctx.register("src", data);
        let mut b = ProgramBuilder::new();
        let r = b.read("src");
        let f = b.filter(r, Expr::col("v").lt(Expr::lit(threshold)));
        let fl = b.flatten(f, "xs", "x");
        let g = b.group_aggregate(
            fl,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::CollectList, "x", "collected")],
        );
        let p = b.build(g);
        let plain = pebble_dataflow::run(&p, &ctx, cfg(), &pebble_dataflow::NoSink)
            .unwrap()
            .items();
        let captured = run_captured(&p, &ctx, cfg()).unwrap().output.items();
        prop_assert_eq!(plain, captured);
    }
}

/// The schema-level `A`/`M` of the lightweight capture generalize the full
/// model's concrete paths.
#[test]
fn schema_level_generalizes_concrete_paths() {
    let data = items_of(vec![vec![
        ("k", Value::Int(1)),
        (
            "xs",
            Value::Bag(vec![Value::Int(5), Value::Int(6), Value::Int(7)]),
        ),
    ]]);
    let kind = OpKind::Flatten {
        col: Path::attr("xs"),
        new_attr: "x".into(),
    };
    let full = model::apply(&kind, &[&data]).unwrap();
    let mut ctx = Context::new();
    ctx.register("src", data);
    let mut b = ProgramBuilder::new();
    let r = b.read("src");
    let f = b.flatten(r, "xs", "x");
    let run = run_captured(&b.build(f), &ctx, cfg()).unwrap();
    let light = run.op(1);

    // Generalize the concrete access paths of the model.
    let concrete: BTreeSet<Path> = full
        .iter()
        .flat_map(|p| p.inputs.iter().flat_map(|i| i.accessed.clone().unwrap()))
        .map(|p| p.to_schema_level())
        .collect();
    let schema: BTreeSet<Path> = light.inputs[0]
        .accessed
        .clone()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(concrete, schema);

    let concrete_m: BTreeSet<(Path, Path)> = full
        .iter()
        .flat_map(|p| p.manipulations.clone().unwrap())
        .map(|(a, b)| (a.to_schema_level(), b.to_schema_level()))
        .collect();
    let schema_m: BTreeSet<(Path, Path)> = light.manipulated.clone().unwrap().into_iter().collect();
    assert_eq!(concrete_m, schema_m);
}
