//! The comparison systems ported onto [`CaptureBackend`].
//!
//! Each baseline answers its native question through the same trait the
//! built-in backends use, over the same assembled [`CapturedRun`] — so
//! the backend-conformance suite can push Titian lineage, lazy
//! re-execution, and Lipstick annotation counting through the identical
//! determinism matrix (workers × partitions × columnar × spill budget)
//! and require byte-identical answers:
//!
//! * [`TitianBackend`] — `TRACE <row>`: lineage-only backward walk
//!   (whole top-level items, positions and paths dropped);
//! * [`LazyBackend`] — `TRACE <row>`: PROVision-style per-input
//!   re-execution followed by a full structural backtrace;
//! * [`LipstickBackend`] — `ANNOTATIONS`: per-value annotation counts
//!   vs Pebble's top-level identifiers, per source. Lipstick walks row
//!   items value by value, so it forces the row execution path.

use pebble_core::backend::unknown_query_error;
use pebble_core::{
    backtrace, canonical_provenance, run_captured, Backtrace, CaptureBackend, CapturedRun,
    PreparedBackend, ProvAssoc, ProvTree,
};
use pebble_dataflow::hash::{FxHashMap, FxHashSet};
use pebble_dataflow::{Context, EngineError, ExecConfig, ItemId, OpId, Result};
use pebble_nested::Path;

use crate::lipstick::{annotation_count, pebble_annotation_count};

fn parse_row(run: &CapturedRun, arg: &str) -> Result<usize> {
    let index: usize = arg
        .trim()
        .parse()
        .map_err(|_| EngineError::BacktraceError(format!("bad row index `{}`", arg.trim())))?;
    let rows = run.output.rows.len();
    if index >= rows {
        return Err(EngineError::BacktraceError(format!(
            "row index {index} out of range ({rows} output rows)"
        )));
    }
    Ok(index)
}

/// Titian-style lineage as a backend: `TRACE <row>` walks the captured
/// association tables backwards keeping identifiers only — no positions,
/// no paths — and reports contributing dataset indices per `read`.
pub struct TitianBackend;

struct PreparedTitian<'r> {
    run: &'r CapturedRun,
}

impl CaptureBackend for TitianBackend {
    fn name(&self) -> &'static str {
        "titian"
    }

    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        _ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>> {
        Ok(Box::new(PreparedTitian { run }))
    }
}

impl PreparedBackend for PreparedTitian<'_> {
    fn answer(&self, query: &str) -> Result<Vec<String>> {
        let query = query.trim();
        let Some(arg) = query.strip_prefix("TRACE ") else {
            return Err(unknown_query_error("titian", query));
        };
        let index = parse_row(self.run, arg)?;
        let run = self.run;
        let sink = run.program.sink();
        let mut worklist: Vec<(OpId, Vec<ItemId>)> = vec![(sink, vec![run.output.rows[index].id])];
        let mut per_read: FxHashMap<OpId, FxHashSet<ItemId>> = FxHashMap::default();
        while let Some((oid, ids)) = worklist.pop() {
            if ids.is_empty() {
                continue;
            }
            let wanted: FxHashSet<ItemId> = ids.into_iter().collect();
            let op = run.op(oid);
            let inputs = &run.program.operators()[oid as usize].inputs;
            match &op.assoc {
                ProvAssoc::Read(assigned) => {
                    let hit = assigned.iter().copied().filter(|id| wanted.contains(id));
                    per_read.entry(oid).or_default().extend(hit);
                }
                ProvAssoc::Unary(assoc) => {
                    let ins = assoc
                        .iter()
                        .filter(|(_, o)| wanted.contains(o))
                        .map(|&(i, _)| i)
                        .collect();
                    worklist.push((inputs[0], ins));
                }
                ProvAssoc::Flatten(assoc) => {
                    // Lineage drops the position Pebble keeps.
                    let ins = assoc
                        .iter()
                        .filter(|(_, _, o)| wanted.contains(o))
                        .map(|&(i, _, _)| i)
                        .collect();
                    worklist.push((inputs[0], ins));
                }
                ProvAssoc::Binary(assoc) => {
                    let mut left = Vec::new();
                    let mut right = Vec::new();
                    for &(l, r, o) in assoc {
                        if wanted.contains(&o) {
                            left.extend(l);
                            right.extend(r);
                        }
                    }
                    worklist.push((inputs[0], left));
                    worklist.push((inputs[1], right));
                }
                ProvAssoc::Agg(assoc) => {
                    let ins = assoc
                        .iter()
                        .filter(|(_, o)| wanted.contains(o))
                        .flat_map(|(members, _)| members.iter().copied())
                        .collect();
                    worklist.push((inputs[0], ins));
                }
            }
        }
        let mut reached: Vec<(OpId, FxHashSet<ItemId>)> = per_read.into_iter().collect();
        reached.sort_by_key(|&(oid, _)| oid);
        let mut out = Vec::new();
        for (oid, ids) in reached {
            let ProvAssoc::Read(assigned) = &run.op(oid).assoc else {
                unreachable!("read operator without Read associations");
            };
            let mut indices: Vec<usize> = assigned
                .iter()
                .enumerate()
                .filter(|(_, id)| ids.contains(id))
                .map(|(i, _)| i)
                .collect();
            indices.sort_unstable();
            let source = run
                .program
                .reads()
                .into_iter()
                .find(|&(r, _)| r == oid)
                .map(|(_, s)| s.to_string())
                .unwrap_or_default();
            out.push(format!("#{oid} {source}: {indices:?}"));
        }
        Ok(out)
    }
}

/// PROVision-style lazy querying as a backend: `TRACE <row>` re-executes
/// the captured program once per input dataset (capture on), backtraces
/// the whole queried item, and reports only that input's provenance —
/// the per-source independence that makes lazy querying expensive.
pub struct LazyBackend;

struct PreparedLazy<'r> {
    run: &'r CapturedRun,
    ctx: &'r Context,
}

impl CaptureBackend for LazyBackend {
    fn name(&self) -> &'static str {
        "lazy"
    }

    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>> {
        Ok(Box::new(PreparedLazy { run, ctx }))
    }
}

impl PreparedBackend for PreparedLazy<'_> {
    fn answer(&self, query: &str) -> Result<Vec<String>> {
        let query = query.trim();
        let Some(arg) = query.strip_prefix("TRACE ") else {
            return Err(unknown_query_error("lazy", query));
        };
        let index = parse_row(self.run, arg)?;
        let mut out = Vec::new();
        for (read_op, _) in self.run.program.reads() {
            // One full re-execution with capture per input dataset.
            let rerun = run_captured(&self.run.program, self.ctx, ExecConfig::with_partitions(1))?;
            let row = &rerun.output.rows[index];
            let tree = ProvTree::from_paths(Path::path_set(&row.item).iter());
            let bt = Backtrace {
                entries: vec![(row.id, tree)],
            };
            let mut sources = backtrace(&rerun, bt)?;
            sources.retain(|s| s.read_op == read_op);
            out.extend(
                canonical_provenance(&sources)
                    .into_iter()
                    .map(|(source, idx, tree)| format!("{source}[{idx}]: {tree}")),
            );
        }
        Ok(out)
    }
}

/// Lipstick-style annotation accounting as a backend: `ANNOTATIONS`
/// contrasts per-value annotation counts with Pebble's one identifier per
/// top-level item, per input dataset. Lipstick annotates values row by
/// row, so this backend forces the row execution path.
pub struct LipstickBackend;

struct PreparedLipstick<'r> {
    run: &'r CapturedRun,
    ctx: &'r Context,
}

impl CaptureBackend for LipstickBackend {
    fn name(&self) -> &'static str {
        "lipstick"
    }

    fn forces_row_path(&self) -> bool {
        true
    }

    fn prepare<'r>(
        &self,
        run: &'r CapturedRun,
        ctx: &'r Context,
    ) -> Result<Box<dyn PreparedBackend + 'r>> {
        Ok(Box::new(PreparedLipstick { run, ctx }))
    }
}

impl PreparedBackend for PreparedLipstick<'_> {
    fn answer(&self, query: &str) -> Result<Vec<String>> {
        if query.trim() != "ANNOTATIONS" {
            return Err(unknown_query_error("lipstick", query));
        }
        let mut out = Vec::new();
        for (oid, source) in self.run.program.reads() {
            let items = self
                .ctx
                .source(source)
                .ok_or_else(|| EngineError::BacktraceError(format!("unknown source `{source}`")))?;
            out.push(format!(
                "#{oid} {source}: lipstick {} annotations vs pebble {} ids",
                annotation_count(items),
                pebble_annotation_count(items)
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dataflow::{context::items_of, Expr, ProgramBuilder};
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
                vec![("k", Value::str("a")), ("v", Value::Int(3))],
            ]),
        );
        c
    }

    fn captured() -> (CapturedRun, Context) {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let p = b.build(f);
        let c = ctx();
        let run = run_captured(&p, &c, ExecConfig::with_partitions(2)).unwrap();
        (run, c)
    }

    #[test]
    fn titian_traces_whole_items() {
        let (run, c) = captured();
        let prepared = TitianBackend.prepare(&run, &c).unwrap();
        let lines = prepared.answer("TRACE 0").unwrap();
        assert_eq!(lines, ["#0 t: [1]"]);
        assert!(prepared.answer("TRACE 9").is_err());
        assert!(prepared.answer("BACKTRACE 0").is_err());
    }

    #[test]
    fn lazy_matches_structural_backtrace() {
        let (run, c) = captured();
        let lazy = LazyBackend.prepare(&run, &c).unwrap();
        let structural = pebble_core::StructuralBackend.prepare(&run, &c).unwrap();
        assert_eq!(
            lazy.answer("TRACE 1").unwrap(),
            structural.answer("BACKTRACE 1").unwrap()
        );
    }

    #[test]
    fn lipstick_counts_annotations_per_source() {
        let (run, c) = captured();
        let prepared = LipstickBackend.prepare(&run, &c).unwrap();
        let lines = prepared.answer("ANNOTATIONS").unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("#0 t: lipstick "));
        assert!(LipstickBackend.forces_row_path());
        assert!(prepared.answer("COUNT 0").is_err());
    }
}
