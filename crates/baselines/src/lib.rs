//! # pebble-baselines — comparator systems for the evaluation
//!
//! Reimplementations of the systems Pebble is compared against:
//!
//! * [`titian`] — DISC-integrated lineage capture and tracing (Sec. 7.3.4);
//! * [`mod@backend`] — the above, ported onto [`pebble_core::CaptureBackend`]
//!   so the backend-conformance suite runs every comparator through the
//!   engine's determinism matrix;
//! * [`lazy`] — PROVision-style fully lazy provenance querying (Fig. 9);
//! * [`lipstick`] — per-value annotation how-provenance (Sec. 2's 35-vs-5
//!   annotation contrast);
//! * [`where_prov`] — where-provenance copy tracing (Sec. 2's `lp` cells);
//! * [`provision`] — how-provenance polynomials with flatten/collection
//!   markers (Sec. 2's verbose formula for result item 102).

#![warn(missing_docs)]

pub mod backend;
pub mod lazy;
pub mod lipstick;
pub mod provision;
pub mod titian;
pub mod where_prov;

pub use backend::{LazyBackend, LipstickBackend, TitianBackend};
pub use lazy::{lazy_query, LazyStats};
pub use lipstick::{annotation_count, pebble_annotation_count, AnnotatedDataset};
pub use provision::{polynomial, Poly};
pub use titian::{run_lineage, trace_back, LineageRun, SourceLineage};
pub use where_prov::{where_provenance, Cell};
