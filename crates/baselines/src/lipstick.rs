//! Lipstick-style value-annotation baseline (Amsterdamer et al., PVLDB
//! 2011).
//!
//! Lipstick computes how-provenance for nested data by annotating **every
//! nested value**, not only top-level items — 35 instead of 5 annotations
//! on the running example's input (Sec. 2). That per-value annotation is
//! what makes the approach impractical at scale; this module quantifies it
//! so the benches can contrast annotation counts and annotation storage
//! with Pebble's top-level identifiers plus schema-level paths.

use pebble_nested::{DataItem, Path, Value};

/// An annotated dataset: every nested value (constants, items, collection
/// elements) carries a unique annotation id, recorded as `(item index,
/// path)` pairs.
#[derive(Clone, Debug, Default)]
pub struct AnnotatedDataset {
    /// One annotation per nested value: which item and which path.
    pub annotations: Vec<(usize, Path)>,
}

impl AnnotatedDataset {
    /// Annotates a dataset, enumerating every nested value.
    pub fn annotate(items: &[DataItem]) -> Self {
        let mut annotations = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            // The top-level item itself…
            annotations.push((idx, Path::root()));
            // …and every value reachable below it.
            for p in Path::path_set(item) {
                annotations.push((idx, p));
            }
        }
        AnnotatedDataset { annotations }
    }

    /// Number of annotations (the `35` of Sec. 2).
    pub fn count(&self) -> usize {
        self.annotations.len()
    }

    /// Storage estimate: one 8-byte id per annotation plus the path
    /// rendering Lipstick attaches to each annotated value.
    pub fn bytes(&self) -> usize {
        self.annotations
            .iter()
            .map(|(_, p)| 8 + p.to_string().len())
            .sum()
    }
}

/// Annotation count for a dataset without materializing the paths (used at
/// benchmark scale).
pub fn annotation_count(items: &[DataItem]) -> usize {
    items
        .iter()
        .map(|i| Value::Item(i.clone()).annotation_count())
        .sum()
}

/// Pebble's corresponding capture-time cost: one identifier per top-level
/// item.
pub fn pebble_annotation_count(items: &[DataItem]) -> usize {
    items.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example's first tweet (Tab. 1, row 1): the paper counts
    /// 11 annotated values for this item (superscripts 1-11).
    fn tweet_row1() -> DataItem {
        let user = |id: &str, name: &str| {
            Value::Item(DataItem::from_fields([
                ("id_str", Value::str(id)),
                ("name", Value::str(name)),
            ]))
        };
        DataItem::from_fields([
            ("text", Value::str("Hello @ls @jm @ls")),
            ("user", user("lp", "Lisa Paul")),
            (
                "user_mentions",
                Value::Bag(vec![
                    user("ls", "Lauren Smith"),
                    user("jm", "John Miller"),
                    user("ls", "Lauren Smith"),
                ]),
            ),
            ("retweet_cnt", Value::Int(0)),
        ])
    }

    #[test]
    fn running_example_annotation_counts() {
        // Tab. 1 has 5 top-level tweets and 35 annotated values in total:
        // row 1 contributes 11 (text, user, id_str, name, 3×(mention item,
        // id_str, name) = 9 — the paper annotates values, we also count the
        // bag holder), rows 2/3 contribute 5 each, etc. We assert the
        // qualitative contrast: per-value annotations are an order of
        // magnitude more than top-level identifiers.
        let items = vec![tweet_row1()];
        let lipstick = annotation_count(&items);
        let pebble = pebble_annotation_count(&items);
        assert!(lipstick >= 11, "lipstick annotations = {lipstick}");
        assert_eq!(pebble, 1);
        assert!(lipstick > 10 * pebble);
    }

    #[test]
    fn annotate_enumerates_paths() {
        let a = AnnotatedDataset::annotate(&[tweet_row1()]);
        assert!(a
            .annotations
            .iter()
            .any(|(i, p)| *i == 0 && *p == Path::parse("user_mentions[2].id_str")));
        assert!(a.count() > 10);
        assert!(a.bytes() > a.count() * 8);
    }
}
