//! PROVision-style fully lazy provenance querying (Zheng et al., ICDE
//! 2019), extended to our pipelines as in Sec. 7.3.3.
//!
//! A lazy system captures nothing during the normal run. When a provenance
//! question arrives, it *re-executes* the program with capture enabled and
//! traces the queried result items back — once **per input dataset**,
//! independently, because the offloaded tracing has no holistic view of the
//! DAG. The eager-vs-lazy comparison of Fig. 9 measures exactly this: the
//! lazy query cost grows with the number of inputs and the pipeline depth.

use pebble_core::{backtrace, run_captured, SourceProvenance, TreePattern};
use pebble_dataflow::{Context, ExecConfig, Program, Result};

/// Statistics of a lazy query, for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyStats {
    /// Number of capture re-executions performed (= number of `read`s).
    pub reruns: usize,
    /// Number of backtracing passes performed.
    pub traces: usize,
}

/// Answers a structural provenance question lazily: one full re-execution
/// with capture plus one backtracing pass per input dataset.
pub fn lazy_query(
    program: &Program,
    ctx: &Context,
    config: ExecConfig,
    pattern: &TreePattern,
) -> Result<(Vec<SourceProvenance>, LazyStats)> {
    let reads = program.reads();
    let mut stats = LazyStats::default();
    let mut out = Vec::new();
    for (read_op, _) in &reads {
        // Re-run the pipeline with capture for this input dataset.
        let run = run_captured(program, ctx, config)?;
        stats.reruns += 1;
        let b = pattern.match_rows(&run.output.rows);
        let mut sources = backtrace(&run, b)?;
        stats.traces += 1;
        // Keep only the provenance of the input currently being traced
        // (identifiers differ across re-runs, so results are reported per
        // source index, which is stable).
        sources.retain(|s| s.read_op == *read_op);
        out.extend(sources);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_core::PatternNode;
    use pebble_dataflow::{context::items_of, Expr, ProgramBuilder};
    use pebble_nested::Value;

    #[test]
    fn lazy_matches_eager_results() {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
            ]),
        );
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let f = b.filter(u, Expr::col("v").ge(Expr::lit(2i64)));
        let p = b.build(f);
        let cfg = ExecConfig::with_partitions(2);
        let pattern = TreePattern::root().node(PatternNode::attr("k").eq("b"));

        // Eager: capture once, trace once.
        let run = run_captured(&p, &c, cfg).unwrap();
        let eager = backtrace(&run, pattern.match_rows(&run.output.rows)).unwrap();

        let (lazy, stats) = lazy_query(&p, &c, cfg, &pattern).unwrap();
        assert_eq!(stats.reruns, 2); // two reads → two re-executions
        assert_eq!(lazy.len(), eager.len());
        for (a, b) in eager.iter().zip(&lazy) {
            assert_eq!(a.read_op, b.read_op);
            let ia: Vec<usize> = a.entries.iter().map(|e| e.index).collect();
            let ib: Vec<usize> = b.entries.iter().map(|e| e.index).collect();
            assert_eq!(ia, ib);
        }
    }
}
