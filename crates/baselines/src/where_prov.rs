//! Where-provenance baseline (Buneman et al., ICDT 2001), extended to our
//! pipelines as discussed in Sec. 2 of the paper.
//!
//! Where-provenance answers: *from which input cells was this result value
//! copied?* It chases the engine's copy operations (select projections,
//! flatten relocations, join field copies, nesting) backwards for a single
//! result value. Sec. 2 shows why this is weaker than structural
//! provenance: tracing `lp` in the running example yields the cells with
//! superscripts 14, 19 **and 33** of Tab. 1 — it cannot express that the
//! queried duplicate texts must be traced *within their common context*,
//! so the (irrelevant) mention of lp in tweet 29 pollutes the answer.
//!
//! The implementation walks the captured run like the backtracing
//! algorithm, but carries a single value path per entry and ignores the
//! contributing/influencing machinery.

use pebble_core::{CapturedRun, ProvAssoc};
use pebble_dataflow::{ItemId, OpId, OpKind};
use pebble_nested::{Path, Step};

/// One input cell a value was copied from.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cell {
    /// The `read` operator of the source dataset.
    pub read_op: OpId,
    /// Source dataset name.
    pub source: String,
    /// Item position in the source dataset.
    pub index: usize,
    /// Path of the cell within the item.
    pub path: Path,
}

/// Computes the where-provenance of the value at `path` inside the result
/// item identified by `id`.
pub fn where_provenance(run: &CapturedRun, id: ItemId, path: &Path) -> Vec<Cell> {
    let mut worklist: Vec<(OpId, ItemId, Path)> = vec![(run.program.sink(), id, path.clone())];
    let mut cells = Vec::new();

    while let Some((oid, id, path)) = worklist.pop() {
        let p = run.op(oid);
        match p.op_type.as_str() {
            "read" => {
                let ProvAssoc::Read(ids) = &p.assoc else {
                    unreachable!()
                };
                let Some(index) = ids.iter().position(|&i| i == id) else {
                    continue;
                };
                let OpKind::Read { source } = &run.program.operators()[oid as usize].kind else {
                    unreachable!()
                };
                cells.push(Cell {
                    read_op: oid,
                    source: source.clone(),
                    index,
                    path,
                });
            }
            "filter" => {
                // Values pass through unchanged.
                if let Some((input, _)) = unary_input(p, id) {
                    worklist.push((pred(p, 0), input, path));
                }
            }
            "map" => {
                // Opaque: the copy chain is cut; a real system would need
                // UDF instrumentation. We stop, reporting nothing — the
                // honest ⊥ of the paper's model.
            }
            "select" => {
                if let Some((input, _)) = unary_input(p, id) {
                    for rewritten in rewrite_back(p, &path) {
                        worklist.push((pred(p, 0), input, rewritten));
                    }
                }
            }
            "flatten" => {
                let ProvAssoc::Flatten(assoc) = &p.assoc else {
                    unreachable!()
                };
                let Some(&(input, pos, _)) = assoc.iter().find(|&&(_, _, o)| o == id) else {
                    continue;
                };
                let mut found = false;
                for rewritten in rewrite_back(p, &path) {
                    found = true;
                    worklist.push((pred(p, 0), input, rewritten.fill_placeholder(pos)));
                }
                if !found {
                    // Attribute not produced by the flatten: it was copied
                    // from the input item verbatim.
                    worklist.push((pred(p, 0), input, path));
                }
            }
            "union" => {
                let ProvAssoc::Binary(assoc) = &p.assoc else {
                    unreachable!()
                };
                if let Some(&(l, r, _)) = assoc.iter().find(|&&(_, _, o)| o == id) {
                    if let Some(l) = l {
                        worklist.push((pred(p, 0), l, path.clone()));
                    }
                    if let Some(r) = r {
                        worklist.push((pred(p, 1), r, path));
                    }
                }
            }
            "join" => {
                let ProvAssoc::Binary(assoc) = &p.assoc else {
                    unreachable!()
                };
                let Some(&(l, r, _)) = assoc.iter().find(|&&(_, _, o)| o == id) else {
                    continue;
                };
                // The output attribute belongs to exactly one side; the
                // rename map (recorded in M) tells us which.
                for (m_in, m_out) in p.manipulated.as_deref().unwrap_or_default() {
                    if let Some(rewritten) = path.replace_prefix(m_out, m_in) {
                        // Left mappings precede right ones in M; resolve
                        // the side via the left input schema.
                        let left_schema = run.input_schema(oid, 0);
                        let is_left = match m_out.head() {
                            Some(Step::Attr(a)) => left_schema
                                .fields()
                                .is_some_and(|fs| fs.iter().any(|f| &f.name == a)),
                            _ => false,
                        };
                        if is_left {
                            if let Some(l) = l {
                                worklist.push((pred(p, 0), l, rewritten));
                            }
                        } else if let Some(r) = r {
                            worklist.push((pred(p, 1), r, rewritten));
                        }
                        break;
                    }
                }
            }
            "aggregation" => {
                let ProvAssoc::Agg(assoc) = &p.assoc else {
                    unreachable!()
                };
                let Some((members, _)) = assoc.iter().find(|(_, o)| *o == id) else {
                    continue;
                };
                for (m_in, m_out) in p.manipulated.as_deref().unwrap_or_default() {
                    if m_out.has_placeholder() {
                        // Bag nesting: position selects the member.
                        for (idx, &member) in members.iter().enumerate() {
                            let filled = m_out.fill_placeholder(idx as u32 + 1);
                            if let Some(rewritten) = path.replace_prefix(&filled, m_in) {
                                worklist.push((pred(p, 0), member, rewritten));
                            }
                        }
                    } else if let Some(rewritten) = path.replace_prefix(m_out, m_in) {
                        // Keys and scalar aggregates: copied/derived from
                        // every member.
                        for &member in members.iter() {
                            worklist.push((pred(p, 0), member, rewritten.clone()));
                        }
                    }
                }
            }
            other => unreachable!("unknown operator `{other}`"),
        }
    }

    cells.sort();
    cells.dedup();
    cells
}

fn pred(p: &pebble_core::OperatorProvenance, idx: usize) -> OpId {
    p.inputs[idx]
        .pred
        .expect("non-read operator has predecessor")
}

fn unary_input(p: &pebble_core::OperatorProvenance, id: ItemId) -> Option<(ItemId, ())> {
    let ProvAssoc::Unary(assoc) = &p.assoc else {
        unreachable!()
    };
    assoc.iter().find(|&&(_, o)| o == id).map(|&(i, _)| (i, ()))
}

/// Rewrites a result-side path back through the operator's manipulation
/// mapping; several mappings can apply when paths overlap.
fn rewrite_back(p: &pebble_core::OperatorProvenance, path: &Path) -> Vec<Path> {
    let mut out = Vec::new();
    for (m_in, m_out) in p.manipulated.as_deref().unwrap_or_default() {
        if let Some(rewritten) = path.replace_prefix(m_out, m_in) {
            out.push(rewritten);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_core::run_captured;
    use pebble_dataflow::ExecConfig;
    use pebble_nested::Value;
    use pebble_workloads::running_example;

    fn cfg() -> ExecConfig {
        ExecConfig::with_partitions(2)
    }

    /// The Sec. 2 discussion: where-provenance of the `lp` value in result
    /// item 102 returns the id_str cells of tweets 1-3 (upper branch) *and*
    /// of the mention inside tweet 29 (lower branch) — the superscripts
    /// 14, 19, 33 (plus tweet 1's author cell) of Tab. 1.
    #[test]
    fn lp_where_provenance_includes_irrelevant_mention() {
        let ctx = running_example::context();
        let run = run_captured(&running_example::program(), &ctx, cfg()).unwrap();
        let lp = run
            .output
            .rows
            .iter()
            .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
            .unwrap();
        let cells = where_provenance(&run, lp.id, &Path::parse("user.id_str"));
        let upper: Vec<&Cell> = cells.iter().filter(|c| c.read_op == 0).collect();
        let lower: Vec<&Cell> = cells.iter().filter(|c| c.read_op == 3).collect();
        // Upper branch: tweets 0, 1, 2 authored by lp (retweet_cnt == 0).
        let upper_idx: Vec<usize> = upper.iter().map(|c| c.index).collect();
        assert_eq!(upper_idx, [0, 1, 2]);
        assert!(upper.iter().all(|c| c.path == Path::parse("user.id_str")));
        // Lower branch: the mention of lp inside tweet 4 (cell 33) — the
        // pollution structural provenance avoids for the duplicate-text
        // question.
        assert_eq!(lower.len(), 1);
        assert_eq!(lower[0].index, 4);
        assert_eq!(lower[0].path, Path::parse("user_mentions[1].id_str"));
    }

    /// Where-provenance of a nested tweet text pinpoints the single input
    /// text cell it was copied from.
    #[test]
    fn nested_text_traces_to_single_cell() {
        let ctx = running_example::context();
        let run = run_captured(&running_example::program(), &ctx, cfg()).unwrap();
        let lp = run
            .output
            .rows
            .iter()
            .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
            .unwrap();
        // tweets[2].text is the first "Hello World" (input tweet 1).
        let cells = where_provenance(&run, lp.id, &Path::parse("tweets[2].text"));
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].index, 1);
        assert_eq!(cells[0].path, Path::attr("text"));
    }

    /// An opaque map cuts the copy chain (⊥).
    #[test]
    fn map_cuts_where_provenance() {
        use pebble_dataflow::{context::items_of, Context, MapUdf, ProgramBuilder};
        use std::sync::Arc;
        let mut c = Context::new();
        c.register("t", items_of(vec![vec![("a", Value::Int(1))]]));
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let m = b.map(
            r,
            MapUdf {
                name: "id".into(),
                f: Arc::new(Clone::clone),
                output_schema: None,
            },
        );
        let run = run_captured(&b.build(m), &c, cfg()).unwrap();
        let id = run.output.rows[0].id;
        assert!(where_provenance(&run, id, &Path::attr("a")).is_empty());
    }
}
