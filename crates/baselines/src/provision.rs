//! PROVision-style how-provenance polynomials (Zheng et al., ICDE 2019),
//! extended with the paper's list-collection UDF `c_l` (Sec. 2).
//!
//! PROVision tracks tuple-level provenance polynomials over a semiring:
//! alternative derivations add (`+`), joint derivations multiply (`·`),
//! and special markers record flattening and aggregation UDFs. Sec. 2
//! derives the polynomial for result item 102 of the running example:
//!
//! ```text
//! (p1 + p12 + p17 + (p29 · P_flatten(p29 · [0]))) ·
//!   P_cl((p1 + p12 + p17 + (p29 · P_flatten(p29 · [0]))), (⟨p1⟩ + …))
//! ```
//!
//! and uses it to argue that tuple-granular polynomials are verbose while
//! still *not* pinpointing the nested items a user asks about. This module
//! reproduces such polynomials so the comparison is executable.

use pebble_core::{CapturedRun, ProvAssoc};
use pebble_dataflow::hash::FxHashMap;
use pebble_dataflow::{ItemId, OpId};

/// A provenance polynomial over source-tuple variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Poly {
    /// Source tuple variable `p_i` (read operator + dataset position).
    Var {
        /// The `read` operator that produced the tuple.
        read_op: OpId,
        /// Position in the source dataset.
        index: usize,
    },
    /// Alternative derivations: `a + b + …`.
    Sum(Vec<Poly>),
    /// Joint derivation: `a · b · …`.
    Product(Vec<Poly>),
    /// Flattening marker `P_flatten(arg · [pos])` — the element position
    /// the tuple was unnested at.
    Flatten(Box<Poly>, u32),
    /// Aggregation/collection UDF marker `P_f(args…)` (e.g. the paper's
    /// list-collection `cl`).
    Udf(&'static str, Vec<Poly>),
    /// Unknown derivation (opaque `map`).
    Opaque,
}

impl Poly {
    fn sum(mut terms: Vec<Poly>) -> Poly {
        if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Poly::Sum(terms)
        }
    }

    /// Number of source-tuple variable occurrences — the verbosity measure
    /// of Sec. 2 (each occurrence is a term the user must read).
    pub fn var_occurrences(&self) -> usize {
        match self {
            Poly::Var { .. } => 1,
            Poly::Sum(ts) | Poly::Product(ts) | Poly::Udf(_, ts) => {
                ts.iter().map(Poly::var_occurrences).sum()
            }
            Poly::Flatten(p, _) => p.var_occurrences(),
            Poly::Opaque => 0,
        }
    }

    /// The distinct source tuples mentioned (what lineage would return).
    pub fn variables(&self) -> Vec<(OpId, usize)> {
        fn go(p: &Poly, out: &mut Vec<(OpId, usize)>) {
            match p {
                Poly::Var { read_op, index } => {
                    if !out.contains(&(*read_op, *index)) {
                        out.push((*read_op, *index));
                    }
                }
                Poly::Sum(ts) | Poly::Product(ts) | Poly::Udf(_, ts) => {
                    for t in ts {
                        go(t, out);
                    }
                }
                Poly::Flatten(inner, _) => go(inner, out),
                Poly::Opaque => {}
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out.sort_unstable();
        out
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Poly::Var { read_op, index } => write!(f, "p{read_op}_{index}"),
            Poly::Sum(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Poly::Product(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Poly::Flatten(p, pos) => write!(f, "P_flatten({p}·[{pos}])"),
            Poly::Udf(name, ts) => {
                write!(f, "P_{name}(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Poly::Opaque => write!(f, "⊥"),
        }
    }
}

/// Computes the how-provenance polynomial of one result item from the
/// captured identifier associations.
pub fn polynomial(run: &CapturedRun, id: ItemId) -> Poly {
    let mut memo: FxHashMap<(OpId, ItemId), Poly> = FxHashMap::default();
    poly_of(run, run.program.sink(), id, &mut memo)
}

fn poly_of(
    run: &CapturedRun,
    oid: OpId,
    id: ItemId,
    memo: &mut FxHashMap<(OpId, ItemId), Poly>,
) -> Poly {
    if let Some(p) = memo.get(&(oid, id)) {
        return p.clone();
    }
    let op = run.op(oid);
    let result = match &op.assoc {
        ProvAssoc::Read(ids) => {
            let index = ids.iter().position(|&i| i == id).unwrap_or(usize::MAX);
            Poly::Var {
                read_op: oid,
                index,
            }
        }
        ProvAssoc::Unary(assoc) => {
            let Some(&(input, _)) = assoc.iter().find(|&&(_, o)| o == id) else {
                return Poly::Opaque;
            };
            let inner = poly_of(run, pred(op, 0), input, memo);
            if op.op_type == "map" {
                Poly::Udf("map", vec![inner])
            } else {
                inner
            }
        }
        ProvAssoc::Binary(assoc) => {
            let Some(&(l, r, _)) = assoc.iter().find(|&&(_, _, o)| o == id) else {
                return Poly::Opaque;
            };
            match (l, r) {
                // Join: joint derivation.
                (Some(l), Some(r)) => Poly::Product(vec![
                    poly_of(run, pred(op, 0), l, memo),
                    poly_of(run, pred(op, 1), r, memo),
                ]),
                // Union: the item came from exactly one side.
                (Some(l), None) => poly_of(run, pred(op, 0), l, memo),
                (None, Some(r)) => poly_of(run, pred(op, 1), r, memo),
                (None, None) => Poly::Opaque,
            }
        }
        ProvAssoc::Flatten(assoc) => {
            let Some(&(input, pos, _)) = assoc.iter().find(|&&(_, _, o)| o == id) else {
                return Poly::Opaque;
            };
            let inner = poly_of(run, pred(op, 0), input, memo);
            // The paper writes p29 · P_flatten(p29 · [0]): the source tuple
            // joined with the flattening of its own collection element.
            Poly::Product(vec![inner.clone(), Poly::Flatten(Box::new(inner), pos)])
        }
        ProvAssoc::Agg(assoc) => {
            let Some((members, _)) = assoc.iter().find(|(_, o)| *o == id) else {
                return Poly::Opaque;
            };
            let member_polys: Vec<Poly> = members
                .iter()
                .map(|&m| poly_of(run, pred(op, 0), m, memo))
                .collect();
            // Sum of alternatives, multiplied by the collection UDF over
            // the same derivations — the structure of the Sec. 2 formula.
            let sum = Poly::sum(member_polys.clone());
            Poly::Product(vec![
                sum.clone(),
                Poly::Udf("cl", vec![sum, Poly::sum(member_polys)]),
            ])
        }
    };
    memo.insert((oid, id), result.clone());
    result
}

fn pred(op: &pebble_core::OperatorProvenance, idx: usize) -> OpId {
    op.inputs[idx].pred.expect("non-read has predecessor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_core::run_captured;
    use pebble_dataflow::ExecConfig;
    use pebble_nested::{Path, Value};
    use pebble_workloads::running_example;

    #[test]
    fn running_example_polynomial_structure() {
        let ctx = running_example::context();
        let run = run_captured(
            &running_example::program(),
            &ctx,
            ExecConfig::with_partitions(2),
        )
        .unwrap();
        let lp = run
            .output
            .rows
            .iter()
            .find(|r| Path::parse("user.id_str").eval(&r.item) == Some(&Value::str("lp")))
            .unwrap();
        let poly = polynomial(&run, lp.id);
        // The paper's polynomial mentions source tuples 1, 12, 17 (authored,
        // upper branch) and 29 (mention, lower branch) — our indices
        // 0, 1, 2 on read #0 and 4 on read #3.
        let vars = poly.variables();
        assert_eq!(vars, [(0, 0), (0, 1), (0, 2), (3, 4)]);
        // Flatten and collection-UDF markers appear.
        let s = poly.to_string();
        assert!(s.contains("P_flatten"), "{s}");
        assert!(s.contains("P_cl"), "{s}");
        // Verbosity: the polynomial repeats tuple variables many times —
        // the paper's core criticism. 4 distinct tuples, ≥ 8 occurrences
        // (each member appears in the sum and inside the UDF again).
        assert!(poly.var_occurrences() >= 2 * vars.len(), "{s}");
    }

    #[test]
    fn polynomial_vars_match_lineage() {
        use crate::titian::{run_lineage, trace_back};
        let ctx = running_example::context();
        let program = running_example::program();
        let cfg = ExecConfig::with_partitions(2);
        let run = run_captured(&program, &ctx, cfg).unwrap();
        let lrun = run_lineage(&program, &ctx, cfg).unwrap();
        for row in &run.output.rows {
            let vars = polynomial(&run, row.id).variables();
            // Deterministic ids: the same row id exists in the lineage run.
            let lineage = trace_back(&lrun, &[row.id]);
            let mut expected: Vec<(u32, usize)> = lineage
                .into_iter()
                .flat_map(|s| s.indices.into_iter().map(move |i| (s.read_op, i)))
                .collect();
            expected.sort_unstable();
            assert_eq!(vars, expected, "item {}", row.id);
        }
    }

    #[test]
    fn join_produces_products() {
        use pebble_dataflow::{context::items_of, Context, ProgramBuilder};
        let mut c = Context::new();
        c.register("l", items_of(vec![vec![("k", Value::Int(1))]]));
        c.register(
            "r",
            items_of(vec![vec![("k2", Value::Int(1)), ("v", Value::Int(9))]]),
        );
        let mut b = ProgramBuilder::new();
        let l = b.read("l");
        let r = b.read("r");
        let j = b.join(l, r, vec![(Path::attr("k"), Path::attr("k2"))]);
        let run = run_captured(&b.build(j), &c, ExecConfig::with_partitions(1)).unwrap();
        let poly = polynomial(&run, run.output.rows[0].id);
        assert_eq!(
            poly,
            Poly::Product(vec![
                Poly::Var {
                    read_op: 0,
                    index: 0
                },
                Poly::Var {
                    read_op: 1,
                    index: 0
                },
            ])
        );
        assert_eq!(poly.to_string(), "p0_0·p1_0");
    }
}
