//! Titian-style lineage baseline (Interlandi et al., PVLDB 2015).
//!
//! Titian is the comparison system of Sec. 7.3.4: a DISC-integrated
//! provenance solution that records *lineage only* — which top-level input
//! items contribute to which output items — with no nested-data awareness,
//! no positions, and no attribute-level paths.
//!
//! The baseline runs on the same engine as Pebble through the identical
//! [`ProvenanceSink`] hook, so runtime differences measure exactly the
//! extra work structural provenance performs (flatten positions and the
//! static path sets), mirroring the paper's head-to-head setup.

use std::sync::Mutex;

use pebble_dataflow::hash::FxHashMap;
use pebble_dataflow::{
    run, Context, ExecConfig, ItemId, OpId, OpKind, Program, ProvenanceSink, Result, RunOutput,
};

/// One operator's lineage table: output id → contributing input ids.
#[derive(Clone, Debug, Default)]
pub struct LineageTable {
    /// `(input ids, output id)` associations.
    pub entries: Vec<(Vec<ItemId>, ItemId)>,
    /// For `read`: the assigned ids in dataset order.
    pub read_ids: Vec<ItemId>,
}

impl LineageTable {
    /// Bytes stored: identifiers only.
    pub fn bytes(&self) -> usize {
        const ID: usize = std::mem::size_of::<ItemId>();
        self.read_ids.len() * ID
            + self
                .entries
                .iter()
                .map(|(ins, _)| (ins.len() + 1) * ID)
                .sum::<usize>()
    }
}

/// A lineage-captured execution.
pub struct LineageRun {
    /// The executed program.
    pub program: Program,
    /// Engine output with identifiers.
    pub output: RunOutput,
    /// Lineage tables indexed by operator id.
    pub tables: Vec<LineageTable>,
}

impl LineageRun {
    /// Total lineage bytes across operators (Fig. 8 dark bars).
    pub fn bytes(&self) -> usize {
        self.tables.iter().map(LineageTable::bytes).sum()
    }
}

struct LineageSink {
    per_op: Vec<Mutex<LineageTable>>,
}

impl ProvenanceSink for LineageSink {
    const ENABLED: bool = true;

    fn read_batch(&self, op: OpId, ids: &[ItemId]) {
        self.per_op[op as usize]
            .lock()
            .unwrap()
            .read_ids
            .extend_from_slice(ids);
    }

    fn unary_batch(&self, op: OpId, assoc: &[(ItemId, ItemId)]) {
        let mut t = self.per_op[op as usize].lock().unwrap();
        t.entries.extend(assoc.iter().map(|&(i, o)| (vec![i], o)));
    }

    fn binary_batch(&self, op: OpId, assoc: &[(Option<ItemId>, Option<ItemId>, ItemId)]) {
        let mut t = self.per_op[op as usize].lock().unwrap();
        t.entries.extend(
            assoc
                .iter()
                .map(|&(l, r, o)| (l.into_iter().chain(r).collect(), o)),
        );
    }

    fn flatten_batch(&self, op: OpId, assoc: &[(ItemId, u32, ItemId)]) {
        // Lineage drops the position — the structural information Pebble
        // keeps (Sec. 7.3.2).
        let mut t = self.per_op[op as usize].lock().unwrap();
        t.entries
            .extend(assoc.iter().map(|&(i, _pos, o)| (vec![i], o)));
    }

    fn agg_batch(&self, op: OpId, assoc: Vec<(Vec<ItemId>, ItemId)>) {
        self.per_op[op as usize]
            .lock()
            .unwrap()
            .entries
            .extend(assoc);
    }
}

/// Executes a program with lineage-only capture.
pub fn run_lineage(program: &Program, ctx: &Context, config: ExecConfig) -> Result<LineageRun> {
    let sink = LineageSink {
        per_op: program
            .operators()
            .iter()
            .map(|_| Mutex::new(LineageTable::default()))
            .collect(),
    };
    let output = run(program, ctx, config, &sink)?;
    Ok(LineageRun {
        program: program.clone(),
        output,
        tables: sink
            .per_op
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
    })
}

/// Lineage of one source: contributing input item indices (whole tuples —
/// the granularity at which lineage systems answer, Sec. 2's light-grey
/// items).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceLineage {
    /// The `read` operator.
    pub read_op: OpId,
    /// Source dataset name.
    pub source: String,
    /// Contributing item positions, ascending.
    pub indices: Vec<usize>,
}

/// Traces result identifiers back to all sources through the lineage
/// tables (the recursive join of Sec. 6.3, without any tree rewriting).
pub fn trace_back(run: &LineageRun, result_ids: &[ItemId]) -> Vec<SourceLineage> {
    let mut worklist: Vec<(OpId, Vec<ItemId>)> = vec![(run.program.sink(), result_ids.to_vec())];
    let mut per_read: FxHashMap<OpId, Vec<ItemId>> = FxHashMap::default();

    while let Some((oid, ids)) = worklist.pop() {
        if ids.is_empty() {
            continue;
        }
        let op = &run.program.operators()[oid as usize];
        if matches!(op.kind, OpKind::Read { .. }) {
            per_read.entry(oid).or_default().extend(ids);
            continue;
        }
        let table = &run.tables[oid as usize];
        let by_out: FxHashMap<ItemId, &Vec<ItemId>> =
            table.entries.iter().map(|(ins, o)| (*o, ins)).collect();
        // Binary operators interleave both predecessors' ids in one table;
        // route each input id to the predecessor whose id range produced
        // it by testing membership against each predecessor's outputs.
        let mut upstream: Vec<Vec<ItemId>> = vec![Vec::new(); op.inputs.len()];
        let pred_outputs: Vec<FxHashMap<ItemId, ()>> = op
            .inputs
            .iter()
            .map(|&p| {
                let t = &run.tables[p as usize];
                t.read_ids
                    .iter()
                    .copied()
                    .chain(t.entries.iter().map(|(_, o)| *o))
                    .map(|id| (id, ()))
                    .collect()
            })
            .collect();
        for id in ids {
            if let Some(ins) = by_out.get(&id) {
                for &i in ins.iter() {
                    for (slot, outs) in upstream.iter_mut().zip(&pred_outputs) {
                        if outs.contains_key(&i) {
                            slot.push(i);
                            break;
                        }
                    }
                }
            }
        }
        for (&pred, ids) in op.inputs.iter().zip(upstream) {
            worklist.push((pred, ids));
        }
    }

    let mut out: Vec<SourceLineage> = per_read
        .into_iter()
        .map(|(read_op, mut ids)| {
            ids.sort_unstable();
            ids.dedup();
            let table = &run.tables[read_op as usize];
            let index_of: FxHashMap<ItemId, usize> = table
                .read_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i))
                .collect();
            let mut indices: Vec<usize> = ids
                .iter()
                .filter_map(|id| index_of.get(id).copied())
                .collect();
            indices.sort_unstable();
            let source = match &run.program.operators()[read_op as usize].kind {
                OpKind::Read { source } => source.clone(),
                _ => unreachable!(),
            };
            SourceLineage {
                read_op,
                source,
                indices,
            }
        })
        .collect();
    out.sort_by_key(|s| s.read_op);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dataflow::{context::items_of, AggFunc, AggSpec, Expr, GroupKey, ProgramBuilder};
    use pebble_nested::Value;

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register(
            "t",
            items_of(vec![
                vec![("k", Value::str("a")), ("v", Value::Int(1))],
                vec![("k", Value::str("b")), ("v", Value::Int(2))],
                vec![("k", Value::str("a")), ("v", Value::Int(3))],
            ]),
        );
        c
    }

    fn cfg() -> ExecConfig {
        ExecConfig::with_partitions(2)
    }

    #[test]
    fn lineage_traces_through_filter_and_group() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").le(Expr::lit(3i64)));
        let g = b.group_aggregate(
            f,
            vec![GroupKey::new("k")],
            vec![AggSpec::new(AggFunc::Sum, "v", "s")],
        );
        let run = run_lineage(&b.build(g), &ctx(), cfg()).unwrap();
        let group_a = run
            .output
            .rows
            .iter()
            .find(|r| r.item.get("k") == Some(&Value::str("a")))
            .unwrap();
        let lineage = trace_back(&run, &[group_a.id]);
        assert_eq!(lineage.len(), 1);
        assert_eq!(lineage[0].indices, [0, 2]);
    }

    #[test]
    fn lineage_union_splits() {
        let mut b = ProgramBuilder::new();
        let l = b.read("t");
        let r = b.read("t");
        let u = b.union(l, r);
        let run = run_lineage(&b.build(u), &ctx(), cfg()).unwrap();
        let ids: Vec<ItemId> = run.output.rows.iter().map(|r| r.id).collect();
        let lineage = trace_back(&run, &ids);
        assert_eq!(lineage.len(), 2);
        assert_eq!(lineage[0].indices, [0, 1, 2]);
        assert_eq!(lineage[1].indices, [0, 1, 2]);
    }

    #[test]
    fn lineage_bytes_positive_and_smaller_units() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::lit(true));
        let run = run_lineage(&b.build(f), &ctx(), cfg()).unwrap();
        assert!(run.bytes() > 0);
    }

    #[test]
    fn lineage_result_matches_plain_run() {
        let mut b = ProgramBuilder::new();
        let r = b.read("t");
        let f = b.filter(r, Expr::col("v").ge(Expr::lit(2i64)));
        let p = b.build(f);
        let c = ctx();
        let plain = run(&p, &c, cfg(), &pebble_dataflow::NoSink).unwrap();
        let lin = run_lineage(&p, &c, cfg()).unwrap();
        assert!(plain.iter_items().eq(lin.output.iter_items()));
    }
}
