//! Backend-conformance suite: every capture backend — the three built-ins
//! and the three baseline ports — answers its queries byte-identically
//! across the engine's whole determinism matrix (partitions × workers ×
//! columnar × spill budget), because backends consume only the assembled
//! `CapturedRun` and render identifier-free quantities.

use pebble_baselines::{LazyBackend, LipstickBackend, TitianBackend};
use pebble_core::{
    run_for_backend, CaptureBackend, CapturedRun, SemiringBackend, StructuralBackend, WhyNotBackend,
};
use pebble_dataflow::{Context, ExecConfig, Program, Result};
use pebble_nested::{Path, Value};
use pebble_workloads::{running_example, scenarios, twitter_context};

fn backends() -> Vec<&'static dyn CaptureBackend> {
    vec![
        &StructuralBackend,
        &WhyNotBackend,
        &SemiringBackend,
        &TitianBackend,
        &LazyBackend,
        &LipstickBackend,
    ]
}

/// The determinism matrix every answer must be byte-identical across.
fn shapes() -> Vec<(&'static str, ExecConfig)> {
    vec![
        ("p=1", ExecConfig::with_partitions(1)),
        ("p=2", ExecConfig::with_partitions(2)),
        ("p=7", ExecConfig::with_partitions(7)),
        (
            "w=2 morsel=3",
            ExecConfig::with_partitions(1).workers(2).morsel_rows(3),
        ),
        ("columnar", ExecConfig::with_partitions(1).columnar(true)),
        ("spill", ExecConfig::with_partitions(1).mem_budget(1)),
    ]
}

/// Renders an answer outcome (answers and errors both count — error text
/// must be shape-invariant too).
fn outcome(r: Result<Vec<String>>) -> String {
    match r {
        Ok(lines) => format!("ok:{}", lines.join("\n")),
        Err(e) => format!("err:{e}"),
    }
}

/// A why-not question derived from the baseline run: one condition a row
/// satisfies (the `found` answer) and one nothing satisfies.
fn whynot_queries(run: &CapturedRun) -> Vec<String> {
    let mut queries = Vec::new();
    if let Some(row) = run.output.rows.first() {
        for p in Path::path_set(&row.item) {
            let vals = p.eval_all(&row.item);
            if let Some(Value::Int(v)) = vals.first() {
                let sp = p.to_schema_level();
                queries.push(format!("WHYNOT {sp}={v}"));
                queries.push(format!("WHYNOT {sp}=-987654321"));
                break;
            }
        }
    }
    if queries.is_empty() {
        queries.push("WHYNOT absent_attr=1".to_string());
    }
    queries
}

fn queries_for(backend: &dyn CaptureBackend, baseline: &CapturedRun) -> Vec<String> {
    let last = baseline.output.rows.len().saturating_sub(1);
    match backend.name() {
        "structural" => vec!["BACKTRACE 0".into(), format!("BACKTRACE {last}")],
        "whynot" => whynot_queries(baseline),
        "semiring" => vec!["POLY 0".into(), "COUNT 0".into(), format!("PROB {last}")],
        "titian" | "lazy" => vec!["TRACE 0".into(), format!("TRACE {last}")],
        "lipstick" => vec!["ANNOTATIONS".into()],
        other => panic!("unknown backend `{other}`"),
    }
}

fn assert_conformance(name: &str, program: &Program, ctx: &Context) {
    let backends = backends();
    let baseline_runs: Vec<CapturedRun> = backends
        .iter()
        .map(|b| run_for_backend(program, ctx, ExecConfig::with_partitions(1), *b).unwrap())
        .collect();
    for (backend, baseline_run) in backends.iter().zip(&baseline_runs) {
        let queries = queries_for(*backend, baseline_run);
        let prepared = backend.prepare(baseline_run, ctx).unwrap();
        let expected: Vec<String> = queries
            .iter()
            .map(|q| outcome(prepared.answer(q)))
            .collect();
        // Every answer must produce output or a deliberate error, never an
        // accidental unknown-query rejection.
        for (q, e) in queries.iter().zip(&expected) {
            assert!(
                !e.contains("does not understand"),
                "{name}/{}: query `{q}` not understood: {e}",
                backend.name()
            );
        }
        for (shape, config) in shapes() {
            let run = run_for_backend(program, ctx, config, *backend).unwrap();
            let prepared = backend.prepare(&run, ctx).unwrap();
            for (q, want) in queries.iter().zip(&expected) {
                let got = outcome(prepared.answer(q));
                assert_eq!(
                    &got,
                    want,
                    "{name}/{}: query `{q}` diverges at shape {shape}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn running_example_conforms() {
    assert_conformance(
        "running-example",
        &running_example::program(),
        &running_example::context(),
    );
}

#[test]
fn twitter_t1_conforms() {
    let ctx = twitter_context(24);
    let s = scenarios::t1();
    assert_conformance("T1", &s.program, &ctx);
}

#[test]
fn twitter_t2_conforms() {
    let ctx = twitter_context(24);
    let s = scenarios::t2();
    assert_conformance("T2", &s.program, &ctx);
}

#[test]
fn lipstick_forces_row_path() {
    let ctx = running_example::context();
    let program = running_example::program();
    let run = run_for_backend(
        &program,
        &ctx,
        ExecConfig::with_partitions(1).columnar(true),
        &LipstickBackend,
    )
    .unwrap();
    // The columnar flag was cleared: no columnar stats on the report, and
    // the report records which backend drove the run.
    assert!(run.output.report.columnar.is_none());
    let stats = run.output.report.backend.as_ref().unwrap();
    assert_eq!(stats.name, "lipstick");
    assert!(stats.forces_row_path);

    // A backend that consumes columnar runs keeps the flag.
    let run = run_for_backend(
        &program,
        &ctx,
        ExecConfig::with_partitions(1).columnar(true),
        &StructuralBackend,
    )
    .unwrap();
    assert!(run.output.report.columnar.is_some());
    assert_eq!(
        run.output.report.backend.as_ref().unwrap().name,
        "structural"
    );
}
