//! Criterion bench for the zero-copy hot path: plain execution vs
//! structural provenance capture of the running example T3 (Twitter) and
//! the flatten/join-heavy D3 (DBLP) at the default scale.
//!
//! This is the regression guard behind `BENCH_1.json` (produced by the
//! `hotpath` binary): T3 exercises the fused filter→select chains, the
//! union pass-through, and the collect-list aggregation; D3 stresses
//! flatten expansion and the join build/probe sides.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use pebble_bench::{exec_config, DBLP_BASE, TWITTER_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{run, NoSink};
use pebble_workloads::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios};

fn bench(c: &mut Criterion) {
    let cfg = exec_config();
    let mut group = c.benchmark_group("hotpath");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));

    let tctx = twitter_context(TWITTER_BASE * pebble_bench::scale());
    let t3 = twitter_scenarios().remove(2);
    assert_eq!(t3.name, "T3");
    group.bench_function("T3/plain", |b| {
        b.iter(|| run(&t3.program, &tctx, cfg, &NoSink).unwrap())
    });
    group.bench_function("T3/capture", |b| {
        b.iter(|| run_captured(&t3.program, &tctx, cfg).unwrap())
    });

    let dctx = dblp_context(DBLP_BASE * pebble_bench::scale());
    let d3 = dblp_scenarios().remove(2);
    assert_eq!(d3.name, "D3");
    group.bench_function("D3/plain", |b| {
        b.iter(|| run(&d3.program, &dctx, cfg, &NoSink).unwrap())
    });
    group.bench_function("D3/capture", |b| {
        b.iter(|| run_captured(&d3.program, &dctx, cfg).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
