//! Criterion bench behind §7.3.4: flat-data capture overhead of the
//! lineage baseline (Titian) vs structural capture (Pebble) vs plain.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use pebble_baselines::run_lineage;
use pebble_bench::{exec_config, DBLP_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{run, Context, Expr, NoSink, Program, ProgramBuilder};
use pebble_nested::{json, DataItem, Value};
use pebble_workloads::{dblp, DblpConfig};

fn as_lines(items: &[DataItem]) -> Vec<DataItem> {
    items
        .iter()
        .map(|i| DataItem::from_fields([("line", Value::str(json::item_to_string(i)))]))
        .collect()
}

fn program() -> Program {
    let mut b = ProgramBuilder::new();
    let articles = b.read("article_lines");
    let fa = b.filter(articles, Expr::col("line").contains(Expr::lit("2015")));
    let inproc = b.read("inproceedings_lines");
    let fi = b.filter(inproc, Expr::col("line").contains(Expr::lit("2015")));
    let u = b.union(fa, fi);
    b.build(u)
}

fn bench(c: &mut Criterion) {
    let data = dblp::generate(&DblpConfig::sized(DBLP_BASE * 2));
    let mut ctx = Context::new();
    ctx.register("article_lines", as_lines(&data.articles));
    ctx.register("inproceedings_lines", as_lines(&data.inproceedings));
    let p = program();
    let cfg = exec_config();
    let mut group = c.benchmark_group("titian_cmp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    group.bench_function("plain", |b| b.iter(|| run(&p, &ctx, cfg, &NoSink).unwrap()));
    group.bench_function("titian_lineage", |b| {
        b.iter(|| run_lineage(&p, &ctx, cfg).unwrap())
    });
    group.bench_function("pebble_structural", |b| {
        b.iter(|| run_captured(&p, &ctx, cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
