//! Criterion bench behind Fig. 6: plain execution vs structural
//! provenance capture for Twitter scenarios T1–T5 across dataset sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pebble_bench::{exec_config, TWITTER_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{run, NoSink};
use pebble_workloads::{twitter_context, twitter_scenarios};

fn bench(c: &mut Criterion) {
    let cfg = exec_config();
    let mut group = c.benchmark_group("fig6_capture_twitter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for mult in [1usize, 3, 5] {
        let size = TWITTER_BASE * mult;
        let ctx = twitter_context(size);
        for s in twitter_scenarios() {
            group.bench_with_input(
                BenchmarkId::new(format!("{}/plain", s.name), size),
                &size,
                |b, _| b.iter(|| run(&s.program, &ctx, cfg, &NoSink).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}/capture", s.name), size),
                &size,
                |b, _| b.iter(|| run_captured(&s.program, &ctx, cfg).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
