//! Ablation benches for the design choices behind the lightweight capture:
//!
//! * `schema_level_vs_full_model` — the paper's core optimization
//!   (Sec. 5.1): record paths once per operator at schema level instead of
//!   materializing per-item provenance (the Sec. 4.3 model, which is also
//!   what an eager Lipstick-style system pays).
//! * `partitions` — engine scaling across partition counts (threads).
//! * `storage_codec` — cost of persisting captured pebbles with the
//!   varint/delta codec.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pebble_bench::DBLP_BASE;
use pebble_core::{model, run_captured, storage};
use pebble_dataflow::{run, ExecConfig, NoSink, OpKind};
use pebble_workloads::{dblp_context, dblp_scenarios, scenarios};

fn bench_schema_level_vs_full_model(c: &mut Criterion) {
    let ctx = dblp_context(DBLP_BASE);
    let cfg = ExecConfig::default();
    let mut group = c.benchmark_group("ablation_capture_granularity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));

    // D3 is the provenance-heaviest scenario: flatten early + join + nest.
    let s = scenarios::d3();
    group.bench_function("lightweight_schema_level", |b| {
        b.iter(|| run_captured(&s.program, &ctx, cfg).unwrap())
    });
    group.bench_function("full_model_per_item", |b| {
        b.iter(|| {
            // Eager full-model capture: evaluate the Sec. 4.3 inference
            // rules per operator, materializing concrete per-item paths.
            let mut outputs: Vec<Vec<pebble_nested::DataItem>> = Vec::new();
            let mut total = 0usize;
            for op in s.program.operators() {
                let result = match &op.kind {
                    OpKind::Read { source } => ctx.source(source).unwrap().to_vec(),
                    kind => {
                        let inputs: Vec<&[pebble_nested::DataItem]> = op
                            .inputs
                            .iter()
                            .map(|&i| outputs[i as usize].as_slice())
                            .collect();
                        let provs = model::apply(kind, &inputs).unwrap();
                        total += provs
                            .iter()
                            .map(|p| {
                                p.inputs
                                    .iter()
                                    .map(|i| i.accessed.as_ref().map_or(0, Vec::len))
                                    .sum::<usize>()
                                    + p.manipulations.as_ref().map_or(0, Vec::len)
                            })
                            .sum::<usize>();
                        provs.into_iter().map(|p| p.item).collect()
                    }
                };
                outputs.push(result);
            }
            std::hint::black_box(total)
        })
    });
    group.finish();
}

fn bench_partitions(c: &mut Criterion) {
    let ctx = dblp_context(DBLP_BASE);
    let s = scenarios::d4();
    let mut group = c.benchmark_group("ablation_partitions");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for parts in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("d4_plain", parts), &parts, |b, &p| {
            b.iter(|| run(&s.program, &ctx, ExecConfig::with_partitions(p), &NoSink).unwrap())
        });
    }
    group.finish();
}

fn bench_storage_codec(c: &mut Criterion) {
    let ctx = dblp_context(DBLP_BASE);
    let cfg = ExecConfig::default();
    let mut group = c.benchmark_group("ablation_storage_codec");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, cfg).unwrap();
        let encoded = storage::encode(&run.ops);
        group.bench_function(BenchmarkId::new("encode", s.name), |b| {
            b.iter(|| storage::encode(&run.ops))
        });
        group.bench_function(BenchmarkId::new("decode", s.name), |b| {
            b.iter(|| storage::decode(&encoded).unwrap())
        });
    }
    group.finish();
}

fn bench_prepared_backtrace(c: &mut Criterion) {
    use pebble_core::{backtrace, backtrace_with, BacktraceIndex};
    let ctx = dblp_context(DBLP_BASE);
    let cfg = ExecConfig::default();
    let s = scenarios::d4();
    let run = run_captured(&s.program, &ctx, cfg).unwrap();
    let b = s.query.match_rows(&run.output.rows);
    let index = BacktraceIndex::build(&run);
    let mut group = c.benchmark_group("ablation_prepared_backtrace");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    group.bench_function("one_off", |bench| {
        bench.iter(|| backtrace(&run, b.clone()).unwrap())
    });
    group.bench_function("prepared", |bench| {
        bench.iter(|| backtrace_with(&run, &index, b.clone()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schema_level_vs_full_model,
    bench_partitions,
    bench_storage_codec,
    bench_prepared_backtrace
);
criterion_main!(benches);
