//! Criterion bench behind Fig. 9: eager (holistic capture + backtrace) vs
//! fully lazy provenance querying for all ten scenarios.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pebble_baselines::lazy_query;
use pebble_bench::{exec_config, DBLP_BASE, TWITTER_BASE};
use pebble_core::{backtrace, run_captured};
use pebble_workloads::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios};

fn bench(c: &mut Criterion) {
    let cfg = exec_config();
    let mut group = c.benchmark_group("fig9_query");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let t_ctx = twitter_context(TWITTER_BASE);
    for s in twitter_scenarios() {
        // Eager: provenance captured during the run; query = match +
        // backtrace only.
        let run = run_captured(&s.program, &t_ctx, cfg).unwrap();
        group.bench_function(BenchmarkId::new(format!("{}/eager", s.name), ""), |b| {
            b.iter(|| {
                let bt = s.query.match_rows(&run.output.rows);
                backtrace(&run, bt).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new(format!("{}/lazy", s.name), ""), |b| {
            b.iter(|| lazy_query(&s.program, &t_ctx, cfg, &s.query).unwrap())
        });
    }
    let d_ctx = dblp_context(DBLP_BASE);
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &d_ctx, cfg).unwrap();
        group.bench_function(BenchmarkId::new(format!("{}/eager", s.name), ""), |b| {
            b.iter(|| {
                let bt = s.query.match_rows(&run.output.rows);
                backtrace(&run, bt).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new(format!("{}/lazy", s.name), ""), |b| {
            b.iter(|| lazy_query(&s.program, &d_ctx, cfg, &s.query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
