//! # pebble-bench — harness regenerating every table and figure
//!
//! Each evaluation artifact of the paper has a corresponding binary that
//! prints the same rows/series (we reproduce *shapes*, not the authors'
//! cluster absolute numbers — see EXPERIMENTS.md):
//!
//! | artifact | binary | criterion bench |
//! |---|---|---|
//! | Fig. 6 (capture overhead, Twitter) | `fig6` | `fig6_capture_twitter` |
//! | Fig. 7 (capture overhead, DBLP) | `fig7` | `fig7_capture_dblp` |
//! | Fig. 8 (provenance size) | `fig8` | — (size, not time) |
//! | Fig. 9 (eager vs lazy querying) | `fig9` | `fig9_query` |
//! | §7.3.4 (Titian comparison) | `titian_cmp` | `titian_cmp` |
//! | Fig. 10 (usage heatmap) | `fig10_heatmap` | — |
//! | Sec. 2 (annotation counts) | `annotations` | — |
//!
//! Scale is controlled by `PEBBLE_SCALE` (default 1): the five dataset
//! steps mirror the paper's 100…500 GB as `scale·(base, 2·base, …,
//! 5·base)` items.

use std::time::{Duration, Instant};

use pebble_dataflow::ExecConfig;

/// Base item count per "100 GB" step for the Twitter dataset.
pub const TWITTER_BASE: usize = 2_000;
/// Base item count per "100 GB" step for the DBLP dataset (narrower
/// records ⇒ many more items per gigabyte, as in the paper).
pub const DBLP_BASE: usize = 6_000;

/// Reads the scale factor from `PEBBLE_SCALE` (default 1).
pub fn scale() -> usize {
    std::env::var("PEBBLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// The five dataset sizes mirroring 100 GB … 500 GB.
pub fn steps(base: usize) -> Vec<usize> {
    (1..=5).map(|i| i * base * scale()).collect()
}

/// Executor configuration used across the harness.
pub fn exec_config() -> ExecConfig {
    ExecConfig::default()
}

/// Times `f`, returning the mean wall-clock duration over `repeats` runs
/// after one warm-up run.
pub fn time<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    let _warmup = f();
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(f());
    }
    start.elapsed() / repeats as u32
}

/// Times several alternatives *interleaved* (one round = one run of each,
/// in order), which cancels allocator/page-cache warm-up drift that makes
/// sequentially-measured later alternatives look faster. The first round
/// is a discarded warm-up. Returns median durations per alternative.
pub fn time_interleaved(rounds: usize, fns: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in fns.iter_mut() {
        f();
    }
    let mut samples: Vec<Vec<Duration>> = vec![Vec::with_capacity(rounds); fns.len()];
    for round in 0..rounds {
        // Alternate the visit order between rounds so that systematic
        // position effects (thermal drift, background load ramps) cancel.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..fns.len()).collect()
        } else {
            (0..fns.len()).rev().collect()
        };
        for idx in order {
            let start = Instant::now();
            fns[idx]();
            samples[idx].push(start.elapsed());
        }
    }
    // Median per alternative: robust against scheduler noise spikes.
    samples
        .into_iter()
        .map(|mut s| {
            s.sort_unstable();
            s[s.len() / 2]
        })
        .collect()
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Percentage overhead of `b` over `a`.
pub fn overhead_pct(a: Duration, b: Duration) -> f64 {
    if a.is_zero() {
        return 0.0;
    }
    (b.as_secs_f64() / a.as_secs_f64() - 1.0) * 100.0
}

/// Replaces (or appends) one top-level `"section": value` entry of a flat
/// JSON object document, preserving every other top-level entry verbatim.
///
/// This is what lets several bench binaries fold their numbers into one
/// report file (`BENCH_2.json`) without a JSON dependency: each binary owns
/// one top-level section and rewrites only that.
pub fn merge_json_section(existing: &str, section: &str, body: &str) -> String {
    let mut entries = top_level_entries(existing);
    let body = body.trim().to_string();
    if let Some(e) = entries.iter_mut().find(|(k, _)| k == section) {
        e.1 = body;
    } else {
        entries.push((section.to_string(), body));
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        // Indent nested lines of the value by two spaces for readability.
        let v = v.replace('\n', "\n  ");
        out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// Reads `path` (treating a missing/unreadable file as `{}`), merges
/// `section`, and writes the file back.
pub fn write_json_section(path: &str, section: &str, body: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{}".to_string());
    let merged = merge_json_section(&existing, section, body);
    std::fs::write(path, &merged).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Splits the top level of a JSON object into `(key, raw value)` pairs with
/// a depth/string-aware scanner (no full JSON parser needed — values are
/// kept verbatim).
fn top_level_entries(json: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let inner = match (json.find('{'), json.rfind('}')) {
        (Some(a), Some(b)) if a < b => &json[a + 1..b],
        _ => return entries,
    };
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Key: skip to the next quote.
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += if bytes[i] == b'\\' { 2 } else { 1 };
        }
        let key = inner[key_start..i].to_string();
        i += 1;
        while i < bytes.len() && bytes[i] != b':' {
            i += 1;
        }
        i += 1;
        // Value: scan until a top-level comma or the end.
        let val_start = i;
        let mut depth = 0i32;
        let mut in_str = false;
        while i < bytes.len() {
            let c = bytes[i];
            if in_str {
                if c == b'\\' {
                    i += 1;
                } else if c == b'"' {
                    in_str = false;
                }
            } else {
                match c {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        // Undo the two-space indent `merge_json_section` applied when the
        // value was last written, so repeated merges are idempotent.
        let value = inner[val_start..i].trim().replace("\n  ", "\n");
        entries.push((key, value));
        i += 1; // past the comma
    }
    entries
}

/// Formats a byte count human-readably.
pub fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.2} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.2} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_scale_linearly() {
        std::env::remove_var("PEBBLE_SCALE");
        assert_eq!(steps(100), [100, 200, 300, 400, 500]);
    }

    #[test]
    fn overhead_formula() {
        let a = Duration::from_millis(100);
        let b = Duration::from_millis(170);
        assert!((overhead_pct(a, b) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn json_section_merge_replaces_and_appends() {
        let v0 = merge_json_section("{}", "a", "{\"x\": 1}");
        assert_eq!(v0, "{\n  \"a\": {\"x\": 1}\n}\n");
        let v1 = merge_json_section(&v0, "b", "[1, 2]");
        assert!(v1.contains("\"a\": {\"x\": 1},"));
        assert!(v1.contains("\"b\": [1, 2]"));
        // Replacing a section keeps the others byte-identical.
        let v2 = merge_json_section(&v1, "a", "{\"x\": 2, \"y\": \"s,{}\"}");
        assert!(v2.contains("\"x\": 2"));
        assert!(v2.contains("\"y\": \"s,{}\""));
        assert!(v2.contains("\"b\": [1, 2]"));
        assert!(!v2.contains("\"x\": 1"));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert!(human_bytes(3 << 20).contains("MiB"));
    }
}
