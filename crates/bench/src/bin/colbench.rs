//! Columnar benchmark: vectorized column-at-a-time kernels vs the
//! row-at-a-time executor path (`ExecConfig::columnar`).
//!
//! Runs the Tab. 7 scenarios T1–T5 / D1–D5 plus two chain-dominated
//! scenarios (`T-chain`, `D-chain`: fused multi-stage filter/select
//! pipelines over the same Twitter/DBLP datasets — the shape the columnar
//! kernels target) and times four variants interleaved per scenario:
//!
//! * `row` / `columnar` — plain runs (no provenance capture);
//! * `row+capture` / `columnar+capture` — with structural provenance
//!   capture, where the columnar path additionally appends association
//!   *runs* (id ranges) instead of per-row pairs.
//!
//! Before timing, every scenario is checked bit-for-bit: the columnar run
//! must produce identical rows, identifiers and association tables, or the
//! numbers would be lies.
//!
//! Results are folded into the `"columnar"` section of `BENCH_4.json`.
//!
//! Usage: `colbench [--out FILE] [--assert]`
//!
//! `--assert` skips the report and instead runs T3 at the current scale,
//! exiting non-zero if the columnar path is slower than the row path
//! (beyond a small noise margin) — the CI regression gate.

use std::fmt::Write as _;

use pebble_bench::{scale, time_interleaved, write_json_section, DBLP_BASE, TWITTER_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{
    run, Context, ExecConfig, Expr, NamedExpr, NoSink, ObsConfig, Program, ProgramBuilder,
    SelectExpr,
};
use pebble_workloads::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios};

const ROUNDS: usize = 7;

/// Chain-dominated Twitter scenario: an eight-stage fused filter/select
/// pipeline (no flatten/join/aggregate), isolating the kernels the
/// columnar path vectorizes.
fn t_chain() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("tweets");
    let f1 = b.filter(r, Expr::col("text").contains(Expr::lit("e")));
    let s1 = b.select(
        f1,
        vec![
            NamedExpr::path("text"),
            NamedExpr::aliased("uid", "user.id_str"),
            NamedExpr::aliased("uname", "user.name"),
            NamedExpr::path("retweet_count"),
            NamedExpr::path("lang"),
        ],
    );
    let f2 = b.filter(s1, Expr::col("retweet_count").ge(Expr::lit(0i64)));
    let s2 = b.select(
        f2,
        vec![
            NamedExpr::new(
                "user",
                SelectExpr::strct([
                    ("id_str", SelectExpr::path("uid")),
                    ("name", SelectExpr::path("uname")),
                ]),
            ),
            NamedExpr::path("text"),
            NamedExpr::path("retweet_count"),
        ],
    );
    let f3 = b.filter(s2, Expr::col("retweet_count").le(Expr::lit(i64::MAX)));
    let s3 = b.select(
        f3,
        vec![
            NamedExpr::aliased("who", "user.name"),
            NamedExpr::path("text"),
            NamedExpr::path("retweet_count"),
        ],
    );
    let f4 = b.filter(s3, Expr::col("who").contains(Expr::lit("user")));
    let s4 = b.select(f4, vec![NamedExpr::path("who"), NamedExpr::path("text")]);
    b.build(s4)
}

/// Chain-dominated DBLP scenario over `inproceedings`, eight fused stages.
fn d_chain() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("inproceedings");
    let f1 = b.filter(r, Expr::col("year").ge(Expr::lit(2012i64)));
    let s1 = b.select(
        f1,
        vec![
            NamedExpr::path("key"),
            NamedExpr::path("title"),
            NamedExpr::path("year"),
            NamedExpr::path("booktitle"),
        ],
    );
    let f2 = b.filter(s1, Expr::col("key").contains(Expr::lit("conf/")));
    let s2 = b.select(
        f2,
        vec![
            NamedExpr::new(
                "paper",
                SelectExpr::strct([
                    ("title", SelectExpr::path("title")),
                    ("venue", SelectExpr::path("booktitle")),
                ]),
            ),
            NamedExpr::path("year"),
        ],
    );
    let f3 = b.filter(s2, Expr::col("year").ge(Expr::lit(2014i64)));
    let s3 = b.select(
        f3,
        vec![
            NamedExpr::aliased("title", "paper.title"),
            NamedExpr::aliased("venue", "paper.venue"),
            NamedExpr::path("year"),
        ],
    );
    let f4 = b.filter(s3, Expr::col("venue").contains(Expr::lit("c")));
    let s4 = b.select(f4, vec![NamedExpr::path("title"), NamedExpr::path("venue")]);
    b.build(s4)
}

struct Measured {
    name: String,
    row_ms: f64,
    col_ms: f64,
    row_cap_ms: f64,
    col_cap_ms: f64,
    id_ranges: u64,
    id_pairs: u64,
    selection_density: f64,
    fallback_units: u64,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Asserts row and columnar runs agree bit-for-bit (rows, ids, association
/// tables) before any timing, then measures the four variants interleaved.
fn measure(name: &str, program: &Program, ctx: &Context) -> Measured {
    let row_cfg = ExecConfig::default().columnar(false);
    let col_cfg = ExecConfig::default().columnar(true);

    let a = run_captured(program, ctx, row_cfg).expect("row run failed");
    let b = run_captured(program, ctx, col_cfg).expect("columnar run failed");
    assert_eq!(
        a.output.rows, b.output.rows,
        "{name}: columnar rows/ids diverge from row path"
    );
    for (x, y) in a.ops.iter().zip(&b.ops) {
        assert_eq!(
            x, y,
            "{name}: columnar association tables diverge from row path"
        );
    }

    let times = time_interleaved(
        ROUNDS,
        &mut [
            &mut || {
                run(program, ctx, row_cfg, &NoSink).unwrap();
            },
            &mut || {
                run(program, ctx, col_cfg, &NoSink).unwrap();
            },
            &mut || {
                run_captured(program, ctx, row_cfg).unwrap();
            },
            &mut || {
                run_captured(program, ctx, col_cfg).unwrap();
            },
        ],
    );

    // Columnar run-shape facts come from the engine's own report.
    let (_, report) =
        pebble_dataflow::run_observed(program, ctx, col_cfg, &NoSink, &ObsConfig::disabled());
    let stats = report.columnar.unwrap_or_default();

    Measured {
        name: name.to_string(),
        row_ms: ms(times[0]),
        col_ms: ms(times[1]),
        row_cap_ms: ms(times[2]),
        col_cap_ms: ms(times[3]),
        id_ranges: stats.id_ranges,
        id_pairs: stats.id_pairs,
        selection_density: stats.selection_density(),
        fallback_units: stats.fallback_units,
    }
}

fn assert_mode() {
    let ctx = twitter_context(TWITTER_BASE * scale());
    let s = twitter_scenarios()
        .into_iter()
        .find(|s| s.name == "T3")
        .expect("T3 scenario");
    let m = measure("T3", &s.program, &ctx);
    // Noise margin: interleaved medians still jitter a few percent on a
    // loaded CI box; a genuinely slower columnar path shows far more.
    let margin = 1.05;
    println!(
        "colbench --assert: T3 row {:.2} ms vs columnar {:.2} ms (capture {:.2} vs {:.2})",
        m.row_ms, m.col_ms, m.row_cap_ms, m.col_cap_ms
    );
    assert!(
        m.col_ms <= m.row_ms * margin,
        "columnar plain run slower than row path: {:.2} ms vs {:.2} ms",
        m.col_ms,
        m.row_ms
    );
    assert!(
        m.col_cap_ms <= m.row_cap_ms * margin,
        "columnar capture run slower than row path: {:.2} ms vs {:.2} ms",
        m.col_cap_ms,
        m.row_cap_ms
    );
    println!("colbench --assert: ok");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_4.json");
    let mut assert_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--assert" => assert_only = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    if assert_only {
        assert_mode();
        return;
    }

    let tweets = TWITTER_BASE * scale();
    let records = DBLP_BASE * scale();
    let t_ctx = twitter_context(tweets);
    let d_ctx = dblp_context(records);

    println!("colbench — row vs columnar, scale {}", scale());
    println!(
        "{:<10} {:>10} {:>12} {:>8} {:>12} {:>14} {:>8}",
        "scenario", "row ms", "columnar ms", "speedup", "row+cap ms", "col+cap ms", "speedup"
    );

    let mut results: Vec<Measured> = Vec::new();
    for s in twitter_scenarios() {
        results.push(measure(s.name, &s.program, &t_ctx));
    }
    results.push(measure("T-chain", &t_chain(), &t_ctx));
    for s in dblp_scenarios() {
        results.push(measure(s.name, &s.program, &d_ctx));
    }
    results.push(measure("D-chain", &d_chain(), &d_ctx));

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"tweets\": {tweets},");
    let _ = writeln!(body, "  \"dblp_records\": {records},");
    let _ = writeln!(body, "  \"scenarios\": [");
    for (i, m) in results.iter().enumerate() {
        let speed_plain = m.row_ms / m.col_ms;
        let speed_cap = m.row_cap_ms / m.col_cap_ms;
        println!(
            "{:<10} {:>10.2} {:>12.2} {:>7.2}x {:>12.2} {:>14.2} {:>7.2}x",
            m.name, m.row_ms, m.col_ms, speed_plain, m.row_cap_ms, m.col_cap_ms, speed_cap
        );
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"name\": \"{}\", \"row_ms\": {:.3}, \"columnar_ms\": {:.3}, \
             \"speedup\": {:.3}, \"row_capture_ms\": {:.3}, \"columnar_capture_ms\": {:.3}, \
             \"capture_speedup\": {:.3}, \"id_ranges\": {}, \"id_pairs\": {}, \
             \"selection_density\": {:.3}, \"fallback_units\": {}}}{sep}",
            m.name,
            m.row_ms,
            m.col_ms,
            speed_plain,
            m.row_cap_ms,
            m.col_cap_ms,
            speed_cap,
            m.id_ranges,
            m.id_pairs,
            m.selection_density,
            m.fallback_units,
        );
    }
    let _ = writeln!(body, "  ],");
    let best_t = results
        .iter()
        .filter(|m| m.name.starts_with('T'))
        .map(|m| m.row_ms / m.col_ms)
        .fold(0.0f64, f64::max);
    let best_d = results
        .iter()
        .filter(|m| m.name.starts_with('D'))
        .map(|m| m.row_ms / m.col_ms)
        .fold(0.0f64, f64::max);
    let _ = writeln!(body, "  \"best_twitter_speedup\": {best_t:.3},");
    let _ = writeln!(body, "  \"best_dblp_speedup\": {best_d:.3}");
    body.push('}');

    write_json_section(&out_path, "columnar", &body);
    eprintln!("wrote section \"columnar\" to {out_path}");
}
