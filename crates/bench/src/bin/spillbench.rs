//! Out-of-core benchmark: bounded-memory execution vs the in-memory path
//! (`ExecConfig::mem_budget`).
//!
//! Runs the T5 evaluation scenario (filter → flatten → self-join →
//! aggregation — every spillable structure at once: operator outputs,
//! grace-join buckets, group shuffle partitions, and the capture sink's
//! association tables) over 100× the Tab. 7 Twitter base, and walks a
//! budget ladder from "never spills" down to "spills everything":
//!
//! * `∞` — tracking enabled but never exceeded; measures the tracker's own
//!   overhead and records the run's high-water mark (`peak`);
//! * `peak/2`, `peak/4` — partial spilling, the realistic regime;
//! * `4 KiB` — everything spills: every operator output, all 8 grace
//!   buckets, every shuffle partition, every association chunk.
//!
//! Before timing, every budgeted run is checked bit-for-bit against the
//! unbudgeted capture (rows, identifiers, association tables) — the
//! budget may only move state to disk, never change what the run
//! computes. Results are folded into the `"spill"` section of
//! `BENCH_6.json`.
//!
//! Usage: `spillbench [--out FILE] [--assert] [--probe BUDGET]`
//!
//! `--probe BUDGET` runs the scenario once at the given budget (bytes)
//! and dumps the per-operator spill table — the diagnosis view.
//!
//! `--assert` is the CI regression gate: T5 at 100× Twitter must complete
//! under a `peak/2` budget bit-identically with at most a 2.5× slowdown,
//! and under the always-spill budget the join, the aggregation, and the
//! capture sink must each report nonzero spill traffic.

use std::fmt::Write as _;

use pebble_bench::{human_bytes, scale, time, write_json_section, TWITTER_BASE};
use pebble_core::{run_captured, CapturedRun};
use pebble_dataflow::ExecConfig;
use pebble_workloads::{twitter_context, twitter_scenarios, Scenario};

const ROUNDS: usize = 3;

/// Budget at which every eligible allocation spills (smaller than any
/// morsel of the 100× dataset), yet large enough to stay byte-countable.
const ALWAYS_SPILL_BUDGET: usize = 4096;

/// Slowdown the `--assert` gate tolerates at the `peak/2` budget.
const MAX_SLOWDOWN: f64 = 2.5;

fn t5() -> Scenario {
    twitter_scenarios()
        .into_iter()
        .find(|s| s.name == "T5")
        .expect("T5 scenario")
}

/// Bit-for-bit equality of two captured runs: rows with identifiers,
/// per-operator counts, and every association table.
fn verify(name: &str, baseline: &CapturedRun, alt: &CapturedRun) {
    assert_eq!(
        baseline.output.rows, alt.output.rows,
        "{name}: budgeted rows/ids diverge from in-memory run"
    );
    assert_eq!(
        baseline.output.op_counts, alt.output.op_counts,
        "{name}: operator counts diverge"
    );
    for (a, b) in baseline.ops.iter().zip(&alt.ops) {
        assert_eq!(
            a.assoc, b.assoc,
            "{name}: association table of op #{} diverges",
            a.oid
        );
    }
}

/// Sum of executor spill bytes attributed to operators of one type.
fn op_spill_bytes(run: &CapturedRun, op_type: &str) -> u64 {
    run.output
        .report
        .operators
        .iter()
        .filter(|o| o.op_type == op_type)
        .map(|o| o.spill_bytes)
        .sum()
}

struct Measured {
    label: String,
    budget: usize,
    wall_ms: f64,
    spills: u64,
    spill_bytes: u64,
    reloads: u64,
    capture_spills: u64,
    capture_spill_bytes: u64,
    peak_tracked: u64,
}

/// Verifies one budget bit-for-bit against the baseline, then times it.
fn measure(
    label: &str,
    budget: usize,
    scenario: &Scenario,
    ctx: &pebble_dataflow::Context,
    baseline: &CapturedRun,
) -> Measured {
    let cfg = ExecConfig::default().mem_budget(budget);
    let run = run_captured(&scenario.program, ctx, cfg).expect("budgeted run failed");
    verify(label, baseline, &run);
    let spill = run
        .output
        .report
        .spill
        .as_ref()
        .expect("budgeted run must report spill stats");
    let wall = time(ROUNDS, || {
        run_captured(&scenario.program, ctx, cfg).expect("budgeted run failed")
    });
    Measured {
        label: label.to_string(),
        budget,
        wall_ms: wall.as_secs_f64() * 1e3,
        spills: spill.spills,
        spill_bytes: spill.spill_bytes,
        reloads: spill.reloads,
        capture_spills: spill.capture_spills,
        capture_spill_bytes: spill.capture_spill_bytes,
        peak_tracked: spill.peak_tracked_bytes,
    }
}

fn assert_mode(scenario: &Scenario, ctx: &pebble_dataflow::Context, peak: usize) {
    let base_cfg = ExecConfig::default().mem_budget(0);
    let baseline = run_captured(&scenario.program, ctx, base_cfg).expect("in-memory run failed");

    // Gate 1: peak/2 budget — bit-identical and at most MAX_SLOWDOWN.
    let budget = (peak / 2).max(ALWAYS_SPILL_BUDGET);
    let budget_cfg = ExecConfig::default().mem_budget(budget);
    let budgeted = run_captured(&scenario.program, ctx, budget_cfg).expect("budgeted run failed");
    verify("peak/2", &baseline, &budgeted);
    let spill = budgeted.output.report.spill.expect("spill stats");
    assert!(
        spill.spills + spill.capture_spills > 0,
        "peak/2 budget ({}) produced no spill traffic",
        human_bytes(budget)
    );
    let base_ms = time(ROUNDS, || {
        run_captured(&scenario.program, ctx, base_cfg).expect("in-memory run failed")
    })
    .as_secs_f64()
        * 1e3;
    let spill_ms = time(ROUNDS, || {
        run_captured(&scenario.program, ctx, budget_cfg).expect("budgeted run failed")
    })
    .as_secs_f64()
        * 1e3;
    let slowdown = spill_ms / base_ms;
    println!(
        "spillbench --assert: T5 in-memory {base_ms:.2} ms vs budget {} {spill_ms:.2} ms \
         ({slowdown:.2}x, {} spills, {} reloads)",
        human_bytes(budget),
        spill.spills,
        spill.reloads
    );
    assert!(
        slowdown <= MAX_SLOWDOWN,
        "out-of-core slowdown {slowdown:.2}x exceeds {MAX_SLOWDOWN}x at budget {}",
        human_bytes(budget)
    );

    // Gate 2: always-spill budget — the join, the aggregation, and the
    // capture sink all actually hit their spill paths, bit-identically.
    let tight_cfg = ExecConfig::default().mem_budget(ALWAYS_SPILL_BUDGET);
    let tight = run_captured(&scenario.program, ctx, tight_cfg).expect("tight run failed");
    verify("always-spill", &baseline, &tight);
    let join = op_spill_bytes(&tight, "join");
    let agg = op_spill_bytes(&tight, "aggregation");
    let cap = tight
        .output
        .report
        .spill
        .as_ref()
        .map(|s| s.capture_spills)
        .unwrap_or(0);
    println!(
        "spillbench --assert: always-spill join {} / aggregation {} / capture chunks {cap}",
        human_bytes(join as usize),
        human_bytes(agg as usize),
    );
    assert!(join > 0, "join never spilled at the always-spill budget");
    assert!(
        agg > 0,
        "aggregation never spilled at the always-spill budget"
    );
    assert!(
        cap > 0,
        "capture sink never spilled at the always-spill budget"
    );
    println!("spillbench --assert: ok");
}

/// Runs once at `budget`, printing wall time and the per-operator spill
/// table.
fn probe_mode(scenario: &Scenario, ctx: &pebble_dataflow::Context, budget: usize) {
    let start = std::time::Instant::now();
    let run = run_captured(
        &scenario.program,
        ctx,
        ExecConfig::default().mem_budget(budget),
    )
    .expect("probe run failed");
    let wall = start.elapsed();
    println!(
        "probe: budget {} wall {:.2} ms",
        human_bytes(budget),
        wall.as_secs_f64() * 1e3
    );
    for o in &run.output.report.operators {
        println!(
            "  op #{:<2} {:<12} rows_out {:>9} spill_bytes {:>12}",
            o.op, o.op_type, o.rows_out, o.spill_bytes
        );
    }
    if let Some(s) = &run.output.report.spill {
        println!(
            "  spills {} spill_bytes {} reloads {} capture_spills {} capture_spill_bytes {} peak {}",
            s.spills, s.spill_bytes, s.reloads, s.capture_spills, s.capture_spill_bytes,
            human_bytes(s.peak_tracked_bytes as usize)
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_6.json");
    let mut assert_only = false;
    let mut probe_budget: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--assert" => assert_only = true,
            "--probe" => {
                probe_budget = Some(
                    args.next()
                        .expect("--probe needs a byte budget")
                        .parse()
                        .expect("--probe budget must be an integer"),
                )
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let tweets = TWITTER_BASE * 100 * scale();
    let ctx = twitter_context(tweets);
    let scenario = t5();

    if let Some(budget) = probe_budget {
        probe_mode(&scenario, &ctx, budget);
        return;
    }

    // Probe the run's high-water mark with tracking on but a budget no run
    // can exceed; the ladder is derived from it.
    let probe = run_captured(
        &scenario.program,
        &ctx,
        ExecConfig::default().mem_budget(usize::MAX / 2),
    )
    .expect("probe run failed");
    let peak = probe
        .output
        .report
        .spill
        .as_ref()
        .map(|s| s.peak_tracked_bytes as usize)
        .expect("tracked probe run must report spill stats");

    if assert_only {
        assert_mode(&scenario, &ctx, peak);
        return;
    }

    println!(
        "spillbench — T5 at {tweets} tweets (100× base, scale {}), peak resident {}",
        scale(),
        human_bytes(peak)
    );

    let base_cfg = ExecConfig::default().mem_budget(0);
    let baseline = run_captured(&scenario.program, &ctx, base_cfg).expect("in-memory run failed");
    let base_wall = time(ROUNDS, || {
        run_captured(&scenario.program, &ctx, base_cfg).expect("in-memory run failed")
    });
    let base_ms = base_wall.as_secs_f64() * 1e3;

    let ladder: Vec<(String, usize)> = vec![
        ("inf".into(), usize::MAX / 2),
        ("peak/2".into(), (peak / 2).max(ALWAYS_SPILL_BUDGET)),
        ("peak/4".into(), (peak / 4).max(ALWAYS_SPILL_BUDGET)),
        ("4KiB".into(), ALWAYS_SPILL_BUDGET),
    ];
    println!(
        "{:<8} {:>12} {:>10} {:>9} {:>7} {:>12} {:>8} {:>11} {:>13}",
        "budget",
        "bytes",
        "wall ms",
        "slowdown",
        "spills",
        "spill bytes",
        "reloads",
        "cap chunks",
        "cap bytes"
    );
    println!(
        "{:<8} {:>12} {:>10.2} {:>9} {:>7} {:>12} {:>8} {:>11} {:>13}",
        "none", "-", base_ms, "1.00x", "-", "-", "-", "-", "-"
    );

    let mut results: Vec<Measured> = Vec::new();
    for (label, budget) in &ladder {
        let m = measure(label, *budget, &scenario, &ctx, &baseline);
        println!(
            "{:<8} {:>12} {:>10.2} {:>8.2}x {:>7} {:>12} {:>8} {:>11} {:>13}",
            m.label,
            if *budget == usize::MAX / 2 {
                "inf".to_string()
            } else {
                budget.to_string()
            },
            m.wall_ms,
            m.wall_ms / base_ms,
            m.spills,
            m.spill_bytes,
            m.reloads,
            m.capture_spills,
            m.capture_spill_bytes,
        );
        results.push(m);
    }

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"tweets\": {tweets},");
    let _ = writeln!(body, "  \"scenario\": \"T5\",");
    let _ = writeln!(body, "  \"peak_tracked_bytes\": {peak},");
    let _ = writeln!(body, "  \"in_memory_ms\": {base_ms:.3},");
    let _ = writeln!(body, "  \"runs\": [");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"budget\": \"{}\", \"budget_bytes\": {}, \"wall_ms\": {:.3}, \
             \"slowdown\": {:.3}, \"spills\": {}, \"spill_bytes\": {}, \"reloads\": {}, \
             \"capture_spills\": {}, \"capture_spill_bytes\": {}, \
             \"peak_tracked_bytes\": {}}}{sep}",
            m.label,
            m.budget,
            m.wall_ms,
            m.wall_ms / base_ms,
            m.spills,
            m.spill_bytes,
            m.reloads,
            m.capture_spills,
            m.capture_spill_bytes,
            m.peak_tracked,
        );
    }
    let _ = writeln!(body, "  ]");
    body.push('}');

    write_json_section(&out_path, "spill", &body);
    eprintln!("wrote section \"spill\" to {out_path}");
}
