//! Observability smoke: runs the Twitter T3 scenario with metrics and
//! tracing enabled (via the `PEBBLE_METRICS` / `PEBBLE_TRACE` env gates,
//! as CI sets them) and validates the emitted run report and trace files
//! against the schema documented in DESIGN.md ("Observability: metrics,
//! spans, run reports"). Exits nonzero on any violation.
//!
//! Checks:
//!
//! * the report JSON parses with the in-tree parser and carries every
//!   documented top-level key with the documented type;
//! * per-operator `rows_out` agrees with the engine's own `op_counts`;
//! * the NDJSON trace has one well-formed span event per line, exactly one
//!   `run` span, and as many lines as the report's `spans` count;
//! * the chrome://tracing export is a JSON array of complete-events;
//! * span merging is deterministic: two identical runs produce the same
//!   logical span sequence (`kind`, `name`, `op`, `phase`, `task`);
//! * a memory-budgeted run emits the report's `spill` section with
//!   consistent accounting (per-operator `spill_bytes` sums to the
//!   section total) and byte-identical sink rows.

use pebble_bench::{exec_config, scale, TWITTER_BASE};
use pebble_core::run_captured_observed;
use pebble_dataflow::ObsConfig;
use pebble_nested::{json, DataItem, Value};
use pebble_workloads::{twitter_context, twitter_scenarios};

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke FAILED: {msg}");
    std::process::exit(1);
}

fn get<'a>(item: &'a DataItem, key: &str) -> &'a Value {
    item.get(key)
        .unwrap_or_else(|| fail(&format!("report is missing key \"{key}\"")))
}

fn get_int(item: &DataItem, key: &str) -> i64 {
    get(item, key)
        .as_int()
        .unwrap_or_else(|| fail(&format!("key \"{key}\" is not an integer")))
}

fn get_str<'a>(item: &'a DataItem, key: &str) -> &'a str {
    get(item, key)
        .as_str()
        .unwrap_or_else(|| fail(&format!("key \"{key}\" is not a string")))
}

fn get_obj<'a>(item: &'a DataItem, key: &str) -> &'a DataItem {
    match get(item, key) {
        Value::Item(d) => d,
        other => fail(&format!("key \"{key}\" is not an object: {other:?}")),
    }
}

fn get_array<'a>(item: &'a DataItem, key: &str) -> &'a [Value] {
    match get(item, key) {
        Value::Bag(v) | Value::Set(v) => v,
        other => fail(&format!("key \"{key}\" is not an array: {other:?}")),
    }
}

/// The logical (timing-free) identity of one NDJSON span line.
fn span_key(line: &str) -> (String, String, i64, i64, i64) {
    let item = match json::parse(line) {
        Ok(Value::Item(d)) => d,
        other => fail(&format!("trace line is not a JSON object: {other:?}")),
    };
    for key in ["worker", "start_ns", "dur_ns", "rows"] {
        if get_int(&item, key) < 0 {
            fail(&format!("span {key} is negative"));
        }
    }
    let kind = get_str(&item, "kind").to_string();
    if !matches!(
        kind.as_str(),
        "run" | "unit" | "phase" | "morsel" | "capture" | "backtrace"
    ) {
        fail(&format!("unknown span kind {kind:?}"));
    }
    (
        kind,
        get_str(&item, "name").to_string(),
        get_int(&item, "op"),
        get_int(&item, "phase"),
        get_int(&item, "task"),
    )
}

fn run_once(trace_path: &str) -> (pebble_core::CapturedRun, pebble_dataflow::RunReport) {
    let _ = std::fs::remove_file(trace_path);
    let ctx = twitter_context(TWITTER_BASE * scale());
    let t3 = twitter_scenarios().remove(2);
    assert_eq!(t3.name, "T3");
    let cfg = ObsConfig {
        metrics: true,
        trace_path: Some(trace_path.to_string()),
    };
    let (run, report) = run_captured_observed(&t3.program, &ctx, exec_config(), &cfg);
    let run = run.unwrap_or_else(|e| fail(&format!("T3 run failed: {e}")));
    (run, report)
}

fn main() {
    // CI drives this bin with PEBBLE_METRICS=1 PEBBLE_TRACE=<path>; both
    // gates must actually be on, otherwise the smoke validates nothing.
    let env_cfg = ObsConfig::from_env();
    if !env_cfg.metrics {
        fail("PEBBLE_METRICS is not enabled");
    }
    let Some(trace_path) = env_cfg.trace_path else {
        fail("PEBBLE_TRACE is not set");
    };

    let (run, report) = run_once(&trace_path);

    // The standalone report and the one embedded in the output agree.
    if &report != run.output.report() {
        fail("standalone report differs from RunOutput::report()");
    }

    // ---- Report JSON against the documented schema. ----
    let json_str = report.to_json();
    let root = match json::parse(&json_str) {
        Ok(Value::Item(d)) => d,
        Ok(other) => fail(&format!("report is not a JSON object: {other:?}")),
        Err(e) => fail(&format!("report JSON does not parse: {e}")),
    };
    if get_int(&root, "schema_version") != 2 {
        fail("schema_version != 2");
    }
    if get_str(&root, "executor") != "pool" {
        fail("executor != \"pool\"");
    }
    if get(&root, "metrics").as_bool() != Some(true) {
        fail("metrics flag is not true");
    }
    if get_str(&root, "outcome") != "ok" {
        fail("outcome != \"ok\"");
    }
    if !matches!(get(&root, "error"), Value::Null) {
        fail("error is not null on an ok run");
    }
    for key in ["partitions", "workers", "morsel_rows"] {
        let _ = get_int(&root, key);
    }
    if get_int(&root, "elapsed_ns") <= 0 {
        fail("elapsed_ns not populated on a metrics run");
    }
    let sources = get_array(&root, "sources");
    if sources.is_empty() {
        fail("sources is empty");
    }
    for s in sources {
        match s {
            Value::Item(d) => {
                let _ = get_str(d, "name");
                let _ = get_int(d, "rows");
            }
            other => fail(&format!("source entry is not an object: {other:?}")),
        }
    }

    let operators = get_array(&root, "operators");
    if operators.len() != run.program.operators().len() {
        fail("operators table length != program length");
    }
    for (i, o) in operators.iter().enumerate() {
        let Value::Item(d) = o else {
            fail(&format!("operator #{i} is not an object"));
        };
        if get_int(d, "op") != i as i64 {
            fail(&format!("operator #{i} has op id {}", get_int(d, "op")));
        }
        let _ = get_str(d, "type");
        if get(d, "udf").as_bool().is_none() {
            fail(&format!("operator #{i}: udf is not a bool"));
        }
        for key in [
            "rows_in",
            "rows_out",
            "morsels",
            "udf_panics",
            "busy_ns",
            "assoc_entries",
            "assoc_bytes",
        ] {
            let _ = get_int(d, key);
        }
        if get_int(d, "rows_out") != run.output.op_counts[i] as i64 {
            fail(&format!("operator #{i}: rows_out disagrees with op_counts"));
        }
        if get_int(d, "udf_panics") != 0 {
            fail(&format!("operator #{i}: panics on a clean run"));
        }
    }

    let morsels = get_obj(&root, "morsels");
    if get_int(morsels, "executed") <= 0 {
        fail("morsels.executed is zero");
    }
    for key in ["min_rows", "max_rows", "total_rows"] {
        let _ = get_int(morsels, key);
    }
    let durations = get_obj(&root, "morsel_durations");
    if get_int(durations, "count") != get_int(morsels, "executed") {
        fail("morsel_durations.count != morsels.executed");
    }
    if report.workers > 1 {
        let pool = get_obj(&root, "pool");
        if get_int(pool, "workers") <= 0 {
            fail("pool.workers not populated");
        }
    }
    let prov = get_obj(&root, "provenance");
    if get_int(prov, "entries") <= 0 || get_int(prov, "lineage_bytes") <= 0 {
        fail("provenance sizes not populated on a captured run");
    }
    let spans = get_int(&root, "spans");
    if spans <= 0 {
        fail("spans count is zero on a traced run");
    }

    // ---- NDJSON trace. ----
    let trace = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| fail(&format!("cannot read trace {trace_path}: {e}")));
    let keys: Vec<_> = trace.lines().map(span_key).collect();
    if keys.len() as i64 != spans {
        fail(&format!(
            "trace has {} lines, report says {spans} spans",
            keys.len()
        ));
    }
    if keys.iter().filter(|k| k.0 == "run").count() != 1 {
        fail("trace must contain exactly one run span");
    }
    if !keys.iter().any(|k| k.0 == "morsel") {
        fail("trace contains no morsel spans");
    }

    // ---- chrome://tracing export. ----
    let chrome_path = format!("{trace_path}.chrome.json");
    let (_run2, report2) = run_once(&chrome_path);
    let chrome = std::fs::read_to_string(&chrome_path)
        .unwrap_or_else(|e| fail(&format!("cannot read chrome export: {e}")));
    match json::parse(&chrome) {
        Ok(Value::Bag(events)) | Ok(Value::Set(events)) => {
            if events.len() as u64 != report2.spans {
                fail("chrome export event count != report spans");
            }
            for ev in &events {
                let Value::Item(d) = ev else {
                    fail("chrome event is not an object");
                };
                if get_str(d, "ph") != "X" {
                    fail("chrome event is not a complete-event");
                }
                let _ = get_str(d, "name");
                let _ = get_str(d, "cat");
                let _ = get_int(d, "pid");
                let _ = get_int(d, "tid");
                let _ = get_obj(d, "args");
            }
        }
        other => fail(&format!("chrome export is not a JSON array: {other:?}")),
    }

    // ---- Deterministic span merge across identical runs. ----
    let second_path = format!("{trace_path}.second.ndjson");
    let (_run3, _report3) = run_once(&second_path);
    let second = std::fs::read_to_string(&second_path)
        .unwrap_or_else(|e| fail(&format!("cannot read second trace: {e}")));
    let keys2: Vec<_> = second.lines().map(span_key).collect();
    if keys != keys2 {
        fail("span merge is not deterministic across identical runs");
    }
    let _ = std::fs::remove_file(&chrome_path);
    let _ = std::fs::remove_file(&second_path);

    // ---- Spill section on a memory-budgeted run. ----
    // An unbudgeted report must omit the section entirely.
    if report.spill.is_some() {
        fail("unbudgeted run emitted a spill section");
    }
    let budget = 64 * 1024;
    let ctx = twitter_context(TWITTER_BASE * scale());
    let t3 = twitter_scenarios().remove(2);
    let cfg = ObsConfig {
        metrics: true,
        trace_path: None,
    };
    let (budgeted, breport) =
        run_captured_observed(&t3.program, &ctx, exec_config().mem_budget(budget), &cfg);
    let budgeted = budgeted.unwrap_or_else(|e| fail(&format!("budgeted T3 run failed: {e}")));
    if budgeted.output.rows != run.output.rows {
        fail("budgeted run rows differ from unbudgeted run");
    }
    let broot = match json::parse(&breport.to_json()) {
        Ok(Value::Item(d)) => d,
        other => fail(&format!("budgeted report does not parse: {other:?}")),
    };
    let spill = get_obj(&broot, "spill");
    if get_int(spill, "budget_bytes") != budget as i64 {
        fail("spill.budget_bytes != configured budget");
    }
    if get_int(spill, "peak_tracked_bytes") <= 0 {
        fail("spill.peak_tracked_bytes not populated");
    }
    if get_int(spill, "spills") <= 0 || get_int(spill, "spill_bytes") <= 0 {
        fail("tight budget forced no spills — smoke validates nothing");
    }
    if get_int(spill, "reloads") <= 0 {
        fail("spill.reloads is zero despite spills");
    }
    for key in ["capture_spills", "capture_spill_bytes"] {
        let _ = get_int(spill, key);
    }
    let op_spill_sum: i64 = get_array(&broot, "operators")
        .iter()
        .map(|o| match o {
            Value::Item(d) => get_int(d, "spill_bytes"),
            other => fail(&format!("operator entry is not an object: {other:?}")),
        })
        .sum();
    if op_spill_sum != get_int(spill, "spill_bytes") {
        fail("per-operator spill_bytes do not sum to spill.spill_bytes");
    }

    println!(
        "obs smoke OK: {} operators, {} morsels, {spans} spans, report schema v{}",
        operators.len(),
        get_int(morsels, "executed"),
        get_int(&root, "schema_version"),
    );
}
