//! Backend bench: why-not query latency and semiring polynomial size,
//! contrasted with the Lipstick annotation count the paper argues against
//! (Sec. 2's 35-vs-5) — folded into the `"backends"` section of
//! `BENCH_7.json`.
//!
//! Usage: `backendbench [--out FILE] [--assert]`
//!
//! `--assert` runs a reduced workload and enforces the structural
//! invariants instead of reporting: Lipstick's per-value annotations
//! outnumber Pebble's top-level identifiers at least 5x, why-not answers
//! are byte-identical across repeated runs, and every sampled output row
//! has a non-trivial provenance polynomial.

use std::fmt::Write as _;
use std::time::Duration;

use pebble_baselines::{annotation_count, pebble_annotation_count};
use pebble_bench::{exec_config, ms, scale, time, write_json_section, TWITTER_BASE};
use pebble_core::whynot::{parse_whynot_query, why_not};
use pebble_core::{run_captured, semiring, CapturedRun};
use pebble_dataflow::Context;
use pebble_nested::{Path, Value};
use pebble_workloads::{scenarios, twitter_context};

/// Sampled output rows for polynomial statistics.
const POLY_SAMPLE: usize = 16;

struct Measured {
    rows: usize,
    whynot_found: Duration,
    whynot_missing: Duration,
    poly_rows: usize,
    poly_monomials_max: usize,
    poly_degree_max: u32,
    poly_count_max: u64,
    lipstick_annotations: usize,
    pebble_ids: usize,
}

/// A `path=value` pair a row of the run satisfies, for the `found` query.
fn found_condition(run: &CapturedRun) -> Option<(Path, i64)> {
    let row = run.output.rows.first()?;
    Path::path_set(&row.item).into_iter().find_map(|p| {
        if let Some(Value::Int(v)) = p.eval_all(&row.item).first() {
            Some((p.to_schema_level(), *v))
        } else {
            None
        }
    })
}

fn measure(tweets: usize, repeats: usize) -> Measured {
    let ctx: Context = twitter_context(tweets);
    let t1 = scenarios::t1();
    let run = run_captured(&t1.program, &ctx, exec_config()).expect("T1 run failed");

    let (path, value) = found_condition(&run).expect("T1 output has no integer-valued path");
    let found_conds = parse_whynot_query(&format!("{path}={value}")).unwrap();
    let missing_conds = parse_whynot_query(&format!("{path}=-987654321")).unwrap();

    let whynot_found = time(repeats, || {
        why_not(&run, &ctx, &found_conds).expect("why-not (found) failed")
    });
    let whynot_missing = time(repeats, || {
        why_not(&run, &ctx, &missing_conds).expect("why-not (missing) failed")
    });

    let poly_rows = run.output.rows.len().min(POLY_SAMPLE);
    let mut poly_monomials_max = 0usize;
    let mut poly_degree_max = 0u32;
    let mut poly_count_max = 0u64;
    for i in 0..poly_rows {
        let p = semiring::polynomial_of(&run, i).expect("polynomial failed");
        poly_monomials_max = poly_monomials_max.max(p.terms.len());
        poly_count_max = poly_count_max.max(p.count());
        for m in p.terms.keys() {
            poly_degree_max = poly_degree_max.max(m.iter().map(|&(_, e)| e).sum());
        }
    }

    let items = ctx.source("tweets").expect("tweets source");
    Measured {
        rows: run.output.rows.len(),
        whynot_found,
        whynot_missing,
        poly_rows,
        poly_monomials_max,
        poly_degree_max,
        poly_count_max,
        lipstick_annotations: annotation_count(items),
        pebble_ids: pebble_annotation_count(items),
    }
}

fn assert_mode() {
    let m = measure(TWITTER_BASE / 4, 3);
    let ratio = m.lipstick_annotations as f64 / m.pebble_ids as f64;
    println!(
        "backendbench --assert: {} rows, why-not found {} ms / missing {} ms, \
         poly max {} monomials (count {}), lipstick {} vs pebble {} ({ratio:.1}x)",
        m.rows,
        ms(m.whynot_found),
        ms(m.whynot_missing),
        m.poly_monomials_max,
        m.poly_count_max,
        m.lipstick_annotations,
        m.pebble_ids,
    );
    assert!(
        ratio >= 5.0,
        "lipstick annotation ratio below the 5x floor: {ratio:.2}x"
    );
    assert!(
        m.poly_monomials_max >= 1 && m.poly_count_max >= 1,
        "sampled rows have trivial polynomials"
    );
    assert!(
        m.poly_degree_max >= 2,
        "T1 groups mentions across tweets; an aggregated row must multiply \
         at least two source variables (got degree {})",
        m.poly_degree_max
    );
    // Why-not answers are deterministic across repeated evaluation.
    let ctx = twitter_context(TWITTER_BASE / 4);
    let t1 = scenarios::t1();
    let run = run_captured(&t1.program, &ctx, exec_config()).expect("T1 run failed");
    let (path, _) = found_condition(&run).expect("T1 output has no integer-valued path");
    let conds = parse_whynot_query(&format!("{path}=-987654321")).unwrap();
    let a = why_not(&run, &ctx, &conds).unwrap().render(&run);
    let b = why_not(&run, &ctx, &conds).unwrap().render(&run);
    assert_eq!(a, b, "why-not answers differ across evaluations");
    println!("backendbench --assert: ok");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_7.json");
    let mut assert_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--assert" => assert_only = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    if assert_only {
        assert_mode();
        return;
    }

    let tweets = TWITTER_BASE * scale();
    let m = measure(tweets, 5);
    let ratio = m.lipstick_annotations as f64 / m.pebble_ids as f64;

    println!("backendbench — capture backends, scale {}", scale());
    println!("T1 over {tweets} tweets, {} result rows", m.rows);
    println!(
        "why-not latency: found {} ms / missing {} ms (mean of 5)",
        ms(m.whynot_found),
        ms(m.whynot_missing)
    );
    println!(
        "semiring polynomials over {} rows: max {} monomials, max degree {}, max count {}",
        m.poly_rows, m.poly_monomials_max, m.poly_degree_max, m.poly_count_max
    );
    println!(
        "lipstick {} annotations vs pebble {} ids — {ratio:.1}x",
        m.lipstick_annotations, m.pebble_ids
    );

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"tweets\": {tweets},");
    let _ = writeln!(body, "  \"result_rows\": {},", m.rows);
    let _ = writeln!(body, "  \"whynot_found_ms\": {},", ms(m.whynot_found));
    let _ = writeln!(body, "  \"whynot_missing_ms\": {},", ms(m.whynot_missing));
    let _ = writeln!(body, "  \"poly_sample_rows\": {},", m.poly_rows);
    let _ = writeln!(body, "  \"poly_monomials_max\": {},", m.poly_monomials_max);
    let _ = writeln!(body, "  \"poly_degree_max\": {},", m.poly_degree_max);
    let _ = writeln!(body, "  \"poly_count_max\": {},", m.poly_count_max);
    let _ = writeln!(
        body,
        "  \"lipstick_annotations\": {},",
        m.lipstick_annotations
    );
    let _ = writeln!(body, "  \"pebble_ids\": {},", m.pebble_ids);
    let _ = writeln!(body, "  \"annotation_ratio\": {ratio:.2}");
    body.push('}');

    write_json_section(&out_path, "backends", &body);
    eprintln!("wrote section \"backends\" to {out_path}");
}
