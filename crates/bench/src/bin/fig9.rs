//! Fig. 9 — runtime of structural provenance querying: the holistic eager
//! approach (capture during the run, then tree-pattern match + backtrace)
//! vs a PROVision-style fully lazy approach (re-run with capture once per
//! input dataset at query time).

use pebble_baselines::lazy_query;
use pebble_bench::{exec_config, ms, scale, DBLP_BASE, TWITTER_BASE};
use pebble_core::{backtrace, run_captured};
use pebble_workloads::{
    dblp_context, dblp_scenarios, twitter_context, twitter_scenarios, Scenario,
};

fn report(title: &str, scenarios: &[Scenario], ctx: &pebble_dataflow::Context) {
    let cfg = exec_config();
    println!("{title}");
    println!(
        "{:<8} {:>12} {:>12} {:>8}",
        "scen.", "eager ms", "lazy ms", "ratio"
    );
    for s in scenarios {
        // Holistic/eager: the provenance was captured during the pipeline
        // run; query time is tree-pattern matching + backtracing only.
        let run = run_captured(&s.program, ctx, cfg).unwrap();
        let times = pebble_bench::time_interleaved(
            5,
            &mut [
                &mut || {
                    let b = s.query.match_rows(&run.output.rows);
                    backtrace(&run, b).unwrap();
                },
                &mut || {
                    lazy_query(&s.program, ctx, cfg, &s.query).unwrap();
                },
            ],
        );
        let (eager, lazy) = (times[0], times[1]);
        println!(
            "{:<8} {:>12} {:>12} {:>7.1}x",
            s.name,
            ms(eager),
            ms(lazy),
            lazy.as_secs_f64() / eager.as_secs_f64()
        );
    }
}

fn main() {
    report(
        &format!(
            "Fig. 9(a) — query runtime eager vs lazy, Twitter ({} tweets)",
            TWITTER_BASE * scale()
        ),
        &twitter_scenarios(),
        &twitter_context(TWITTER_BASE * scale()),
    );
    println!();
    report(
        &format!(
            "Fig. 9(b) — query runtime eager vs lazy, DBLP ({} records)",
            DBLP_BASE * scale()
        ),
        &dblp_scenarios(),
        &dblp_context(DBLP_BASE * scale()),
    );
}
