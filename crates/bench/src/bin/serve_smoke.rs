//! CI smoke for the persistent store and query service: two workload
//! scenarios (one Twitter, one DBLP) are captured, persisted to
//! `$PEBBLE_STORE_DIR` (temp dir by default), cold-opened from disk, and
//! queried both directly and through a live server — every answer must
//! be byte-identical to the in-memory run.

use std::sync::Arc;

use pebble_bench::{DBLP_BASE, TWITTER_BASE};
use pebble_core::{
    backtrace, canonical_provenance, run_captured, Backtrace, CapturedRun, ProvTree,
};
use pebble_dataflow::{Context, ExecConfig};
use pebble_nested::Path;
use pebble_serve::{persist_file, query, ProvStore, ServeConfig, Server};
use pebble_workloads::{
    dblp_context, dblp_scenarios, twitter_context, twitter_scenarios, Scenario,
};

fn store_dir() -> std::path::PathBuf {
    match std::env::var("PEBBLE_STORE_DIR") {
        Ok(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => std::env::temp_dir().join(format!("pebble-serve-smoke-{}", std::process::id())),
    }
}

fn whole_item(run: &CapturedRun, idx: usize) -> Backtrace {
    let row = &run.output.rows[idx];
    let paths = Path::path_set(&row.item);
    Backtrace {
        entries: vec![(row.id, ProvTree::from_paths(paths.iter()))],
    }
}

/// Picks the first scenario of the batch whose run yields result rows.
fn pick(scenarios: Vec<Scenario>, ctx: &Context) -> (Scenario, CapturedRun) {
    for s in scenarios {
        let run = run_captured(&s.program, ctx, ExecConfig::default()).expect("capture failed");
        if !run.output.rows.is_empty() {
            return (s, run);
        }
    }
    panic!("no scenario produced result rows");
}

fn smoke(label: &str, scenario: &Scenario, run: &CapturedRun, dir: &std::path::Path) {
    let path = dir.join(format!("{label}.seg"));
    let written = persist_file(run, &path).expect("persist failed");

    // Cold-open: decoded tables bit-identical to the in-memory run.
    let store = Arc::new(ProvStore::open(&path).expect("cold open failed"));
    assert_eq!(store.on_disk_bytes(), written);
    assert_eq!(store.ops(), run.ops.as_slice(), "{label}: operator tables");
    assert_eq!(store.rows(), run.output.rows.as_slice(), "{label}: rows");
    assert_eq!(
        store.op_schemas(),
        run.output.op_schemas.as_slice(),
        "{label}: schemas"
    );

    // Direct query equality: sampled whole-item backtraces plus the
    // scenario's own tree-pattern question.
    let n = run.output.rows.len();
    for idx in (0..n).step_by((n / 5).max(1)) {
        let mem = backtrace(run, whole_item(run, idx)).expect("memory backtrace");
        let stored = store
            .backtrace(whole_item(run, idx))
            .expect("store backtrace");
        assert_eq!(mem, stored, "{label}: backtrace of row {idx}");
    }
    let mem = backtrace(run, scenario.query.match_rows(&run.output.rows)).expect("memory pattern");
    let stored = store
        .backtrace(scenario.query.match_rows(store.rows()))
        .expect("store pattern");
    assert_eq!(mem, stored, "{label}: pattern backtrace");

    // Live service: the DATA frames for row 0 carry exactly the canonical
    // source triples the in-memory referee computes.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        debug_panic: false,
        trace_path: None,
    };
    let mut server = Server::start(Arc::clone(&store), &cfg).expect("server start");
    let addr = server.local_addr();
    let frames = query(addr, "BACKTRACE 0").expect("server query");
    let triples = canonical_provenance(&backtrace(run, whole_item(run, 0)).unwrap());
    assert_eq!(*frames.last().unwrap(), format!("DONE {}", triples.len()));
    let data: Vec<&String> = frames.iter().filter(|f| f.starts_with("DATA ")).collect();
    assert_eq!(data.len(), triples.len(), "{label}: DATA frame count");
    for ((source, index, _), frame) in triples.iter().zip(&data) {
        assert!(frame.contains(&format!("\"source\": \"{source}\"")));
        assert!(frame.contains(&format!("\"index\": {index}")));
    }
    assert!(query(addr, "AUDIT")
        .expect("audit query")
        .last()
        .unwrap()
        .starts_with("DONE "));
    server.shutdown();

    println!(
        "serve smoke: {label} ({} rows, {written} B on disk) ok",
        store.rows().len()
    );
}

fn main() {
    let dir = store_dir();
    std::fs::create_dir_all(&dir).expect("create store dir");

    let (ts, trun) = pick(twitter_scenarios(), &twitter_context(TWITTER_BASE));
    smoke(&format!("twitter-{}", ts.name), &ts, &trun, &dir);

    let (ds, drun) = pick(dblp_scenarios(), &dblp_context(DBLP_BASE));
    smoke(&format!("dblp-{}", ds.name), &ds, &drun, &dir);

    if std::env::var("PEBBLE_STORE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("serve smoke: ok");
}
