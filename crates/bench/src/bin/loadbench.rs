//! Load benchmark: offered-load sweep over the query service — the
//! latency/throughput curve that turns BENCH numbers from point samples
//! into curves.
//!
//! Persists a captured DBLP run, serves it, and then:
//!
//! 1. records a **serial baseline** — frames and latency of every mix
//!    query over one connection at a time. Every response observed later
//!    (calibration, sweep, guards) is byte-compared against these frames,
//!    so the curve is only reported for answers identical to the serial
//!    baseline;
//! 2. calibrates peak capacity with an unthrottled **closed-loop** run
//!    (tenants also interleave local engine runs — mixed run+query
//!    traffic);
//! 3. sweeps **open-loop** offered rates (fractions of the calibrated
//!    peak, or `PEBBLE_LOAD_RATES`) and records per-rate client-side
//!    p50/p99 and achieved throughput — past the saturation knee the
//!    achieved rate flattens while p99 explodes, which is the point of
//!    measuring open-loop;
//! 4. under `--assert`, additionally gates (a) low-load p99 against the
//!    serial baseline latency and (b) the metrics-on serve-path overhead
//!    (<2%, frames byte-identical to metrics-off).
//!
//! Results are folded into the `"load"` section of `BENCH_8.json`.
//!
//! Usage: `loadbench [--out FILE] [--assert]`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pebble_bench::{overhead_pct, scale, time_interleaved, write_json_section, DBLP_BASE};
use pebble_core::{run_captured, CapturedRun};
use pebble_dataflow::ExecConfig;
use pebble_obs::LogHistogram;
use pebble_serve::{persist_file, query, ProvStore, ServeConfig, Server};
use pebble_workloads::{
    dblp_context, dblp_scenarios, rates_from_env, run_closed_loop, run_open_loop, ClosedLoopConfig,
    OpenLoopConfig,
};

/// Serve-side query workers.
const WORKERS: usize = 8;
/// Open-loop sender threads (must exceed the service's concurrency so the
/// measured queue is the service's, not the generator's).
const SENDERS: usize = 32;
/// Offered-load sweep, as fractions of the calibrated closed-loop peak.
const SWEEP_FRACTIONS: [f64; 6] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.25];
/// Wall-clock target per sweep point, seconds.
const POINT_SECONDS: f64 = 1.2;
/// Per-point request cap (keeps a runaway rate estimate bounded).
const MAX_POINT_REQUESTS: usize = 2_000;
/// Serial-latency rounds per mix query for the baseline distribution.
const SERIAL_ROUNDS: usize = 5;
/// Maximum tolerated metrics-on overhead on the serve path, percent.
const GUARD_PCT: f64 = 2.0;
/// Absolute wall-clock epsilon for the overhead guard: below this delta
/// the paths are indistinguishable from noise on a TCP roundtrip bench.
const GUARD_EPSILON: Duration = Duration::from_millis(3);
/// Measurement attempts for the `--assert` gates; noise only ever inflates
/// the measured numbers, so passing any attempt clears the gate.
const ATTEMPTS: usize = 3;
/// Low-load p99 must stay within this factor of the serial p99 (plus a
/// scheduling epsilon) — at 20% of peak there is no queue to speak of.
const LOW_LOAD_P99_FACTOR: u64 = 4;
const LOW_LOAD_P99_EPSILON_NS: u64 = 25_000_000;

fn store_dir() -> std::path::PathBuf {
    match std::env::var("PEBBLE_STORE_DIR") {
        Ok(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => std::env::temp_dir().join(format!("pebble-loadbench-{}", std::process::id())),
    }
}

/// First DBLP scenario with a non-empty result at the given record count.
fn build_run(records: usize) -> (String, CapturedRun) {
    let ctx = dblp_context(records);
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, ExecConfig::with_partitions(2).workers(2))
            .expect("capture run failed");
        if !run.output.rows.is_empty() {
            return (s.name.to_string(), run);
        }
    }
    panic!("no DBLP scenario produced result rows at {records} records");
}

/// The query mix: backtraces across the row range, a pattern probe
/// derived from the data itself, plus the two whole-store scans.
fn query_mix(store: &ProvStore) -> Vec<String> {
    let n = store.rows().len();
    let mut mix: Vec<String> = vec!["HEATMAP 10".into(), "AUDIT".into()];
    if let Some(row) = store.rows().first() {
        if let Some((label, _)) = row.item.fields().next() {
            mix.push(format!("PATTERN //{label}"));
        }
    }
    for idx in (0..n).step_by((n / 8).max(1)) {
        mix.push(format!("BACKTRACE {idx}"));
    }
    mix
}

struct Point {
    offered: f64,
    achieved: f64,
    completed: u64,
    errors: u64,
    p50_ns: u64,
    p99_ns: u64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_8.json");
    let mut assert_mode = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    // The measured path is the metrics-off serve path; the overhead gate
    // flips metrics on explicitly.
    std::env::remove_var("PEBBLE_TRACE");
    std::env::remove_var("PEBBLE_METRICS");
    pebble_obs::force_metrics(false);

    let records = if assert_mode {
        DBLP_BASE
    } else {
        DBLP_BASE * scale()
    };
    let (scenario, run) = build_run(records);
    let dir = store_dir();
    std::fs::create_dir_all(&dir).expect("create store dir");
    let path = dir.join("loadbench.seg");
    persist_file(&run, &path).expect("persist failed");
    let store = Arc::new(ProvStore::open(&path).expect("cold open failed"));

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: WORKERS,
        debug_panic: false,
        trace_path: None,
    };
    let mut server = Server::start(Arc::clone(&store), &cfg).expect("server start failed");
    let addr = server.local_addr();
    let mix = query_mix(&store);

    // Serial baseline: reference frames + serial latency distribution.
    // One warm-up pass first so listener and pool are hot.
    for q in &mix {
        query(addr, q).expect("warm-up query failed");
    }
    let mut baseline: HashMap<String, Vec<String>> = HashMap::new();
    let serial_hist = LogHistogram::new();
    for q in &mix {
        for round in 0..SERIAL_ROUNDS {
            let t = Instant::now();
            let frames = query(addr, q).expect("serial baseline query failed");
            serial_hist.record(t.elapsed().as_nanos() as u64);
            assert!(
                !frames.last().is_none_or(|f| f.starts_with("ERROR ")),
                "baseline query {q:?} failed: {frames:?}"
            );
            if round == 0 {
                baseline.insert(q.clone(), frames);
            } else {
                assert_eq!(
                    baseline[q], frames,
                    "serial re-issue of {q:?} is not deterministic"
                );
            }
        }
    }
    let serial = serial_hist.snapshot();
    let (serial_p50, _, serial_p99, _) = serial.percentiles();

    // Every subsequent response must be byte-identical to the baseline.
    let checked = |req: &str| -> std::io::Result<Vec<String>> {
        let frames = query(addr, req)?;
        if let Some(expected) = baseline.get(req) {
            assert_eq!(
                expected, &frames,
                "response for {req:?} diverged from the serial baseline"
            );
        }
        Ok(frames)
    };

    // Closed-loop calibration: unthrottled tenants, mixed run+query
    // traffic — "RUN" ops execute a small engine run client-side, the
    // rest hit the service.
    let run_ctx = dblp_context(300);
    let run_scenario = dblp_scenarios().remove(0);
    let mixed_transport = |req: &str| -> std::io::Result<Vec<String>> {
        if req == "RUN" {
            let local = run_captured(
                &run_scenario.program,
                &run_ctx,
                ExecConfig::with_partitions(2).workers(2),
            )
            .expect("tenant engine run failed");
            return Ok(vec![format!("DONE {}", local.output.rows.len())]);
        }
        checked(req)
    };
    let mut calib_mix = mix.clone();
    calib_mix.push("RUN".into());
    let calib_cfg = ClosedLoopConfig {
        tenants: 16,
        requests_per_tenant: if assert_mode { 8 } else { 16 },
        think: Duration::ZERO,
    };
    let calib = run_closed_loop(mixed_transport, &calib_mix, &calib_cfg);
    assert_eq!(calib.transport_errors, 0, "calibration transport errors");
    assert_eq!(calib.errors, 0, "calibration saw ERROR frames");
    let peak = calib.achieved_rate().max(20.0);

    // Open-loop sweep: offered rate vs achieved throughput and latency.
    let default_rates: Vec<f64> = SWEEP_FRACTIONS.iter().map(|f| f * peak).collect();
    let rates = rates_from_env(&default_rates);
    let mut points = Vec::new();
    for &rate in &rates {
        let total = ((rate * POINT_SECONDS) as usize).clamp(60, MAX_POINT_REQUESTS);
        let r = run_open_loop(
            checked,
            &mix,
            &OpenLoopConfig {
                rate_per_sec: rate,
                total_requests: total,
                senders: SENDERS,
            },
        );
        assert_eq!(r.transport_errors, 0, "sweep transport errors at {rate}/s");
        assert_eq!(r.errors, 0, "sweep saw ERROR frames at {rate}/s");
        let s = r.summary();
        eprintln!(
            "  rate {rate:8.1}/s -> achieved {:8.1}/s  p50 {:7.2} ms  p99 {:7.2} ms  ({} reqs)",
            r.achieved_rate(),
            s.p50_ns as f64 / 1e6,
            s.p99_ns as f64 / 1e6,
            r.completed,
        );
        points.push(Point {
            offered: rate,
            achieved: r.achieved_rate(),
            completed: r.completed,
            errors: r.errors,
            p50_ns: s.p50_ns,
            p99_ns: s.p99_ns,
        });
    }
    assert!(
        points.len() >= 5,
        "the load curve needs at least 5 offered-load points, got {}",
        points.len()
    );

    // --assert gate (a): at low load (first sweep fraction) the open-loop
    // p99 — which includes queueing — must stay within a small factor of
    // the serial p99. Re-measure on failure; noise only inflates it.
    let mut low_p99 = points[0].p99_ns;
    if assert_mode {
        let bound = serial_p99
            .saturating_mul(LOW_LOAD_P99_FACTOR)
            .saturating_add(LOW_LOAD_P99_EPSILON_NS);
        for attempt in 1..=ATTEMPTS {
            if low_p99 <= bound {
                break;
            }
            if attempt == ATTEMPTS {
                eprintln!(
                    "loadbench FAILED: low-load p99 {low_p99} ns exceeds bound {bound} ns \
                     (serial p99 {serial_p99} ns)"
                );
                std::process::exit(1);
            }
            eprintln!(
                "attempt {attempt}/{ATTEMPTS}: low-load p99 {low_p99} ns over bound \
                 {bound} ns, re-measuring"
            );
            let r = run_open_loop(
                checked,
                &mix,
                &OpenLoopConfig {
                    rate_per_sec: rates[0],
                    total_requests: 60,
                    senders: SENDERS,
                },
            );
            low_p99 = r.summary().p99_ns;
        }
    }

    // --assert gate (b): metrics-on serve path must stay within GUARD_PCT
    // of metrics-off, with byte-identical frames. Flip the global gate
    // around serial passes over the same connection-per-query transport.
    let mut on_pct = 0.0;
    if assert_mode {
        let serial_pass = || {
            let mut all = Vec::new();
            for q in &mix {
                all.push(query(addr, q).expect("guard query failed"));
            }
            all
        };
        pebble_obs::force_metrics(false);
        let frames_off = serial_pass();
        pebble_obs::force_metrics(true);
        let frames_on = serial_pass();
        pebble_obs::force_metrics(false);
        assert_eq!(
            frames_off, frames_on,
            "metrics-on frames differ from metrics-off frames"
        );
        for attempt in 1..=ATTEMPTS {
            let times = time_interleaved(
                5,
                &mut [
                    &mut || {
                        pebble_obs::force_metrics(false);
                        serial_pass();
                    },
                    &mut || {
                        pebble_obs::force_metrics(true);
                        serial_pass();
                    },
                ],
            );
            pebble_obs::force_metrics(false);
            on_pct = overhead_pct(times[0], times[1]);
            let delta = times[1].saturating_sub(times[0]);
            if on_pct < GUARD_PCT || delta < GUARD_EPSILON {
                break;
            }
            if attempt == ATTEMPTS {
                eprintln!(
                    "loadbench FAILED: metrics-on serve path adds {on_pct:.2}% \
                     (limit {GUARD_PCT}%, delta {delta:?})"
                );
                std::process::exit(1);
            }
            eprintln!(
                "attempt {attempt}/{ATTEMPTS}: metrics-on at {on_pct:.2}% \
                 (limit {GUARD_PCT}%), re-measuring"
            );
        }
    }

    let stats = server.stats();
    assert_eq!(stats.panics_contained, 0);
    server.shutdown();
    if std::env::var("PEBBLE_STORE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("loadbench — offered-load sweep, scale {}", scale());
    println!(
        "scenario {scenario} ({} result rows, {records} dblp records), {} mix queries",
        store.rows().len(),
        mix.len()
    );
    println!(
        "serial p50 {:.2} ms, p99 {:.2} ms; closed-loop peak {peak:.1} req/s \
         ({} tenants, mixed run+query)",
        serial_p50 as f64 / 1e6,
        serial_p99 as f64 / 1e6,
        calib.tenants,
    );

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(body, "  \"dblp_records\": {records},");
    let _ = writeln!(body, "  \"result_rows\": {},", store.rows().len());
    let _ = writeln!(body, "  \"workers\": {WORKERS},");
    let _ = writeln!(body, "  \"mix_queries\": {},", mix.len());
    let _ = writeln!(body, "  \"serial_p50_ns\": {serial_p50},");
    let _ = writeln!(body, "  \"serial_p99_ns\": {serial_p99},");
    let _ = writeln!(
        body,
        "  \"closed_loop\": {{\"tenants\": {}, \"requests\": {}, \
         \"achieved_per_sec\": {:.1}, \"run_ops\": {}}},",
        calib.tenants,
        calib.completed,
        calib.achieved_rate(),
        calib.completed_for(pebble_obs::RequestKind::Other),
    );
    body.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"offered_per_sec\": {:.1}, \"achieved_per_sec\": {:.1}, \
             \"completed\": {}, \"errors\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}",
            p.offered,
            p.achieved,
            p.completed,
            p.errors,
            p.p50_ns,
            p.p99_ns,
            if i + 1 < points.len() { "," } else { "" },
        );
    }
    body.push_str("  ],\n");
    let _ = writeln!(body, "  \"metrics_on_pct\": {on_pct:.2},");
    let _ = writeln!(body, "  \"guard_pct\": {GUARD_PCT:.1}");
    body.push('}');

    write_json_section(&out_path, "load", &body);
    eprintln!("wrote section \"load\" to {out_path}");
    if assert_mode {
        println!("loadbench --assert: ok (low-load p99 {low_p99} ns, metrics-on {on_pct:.2}%)");
    }
}
