//! Store/serve benchmark: persistent-segment size and cold-open latency,
//! plus query-service throughput under concurrent clients.
//!
//! Persists a captured DBLP run to `$PEBBLE_STORE_DIR` (a temp directory
//! by default), then measures:
//!
//! * `persist_ms` / `cold_open_ms` — write and read-back latency of the
//!   compressed segment file;
//! * `compression_ratio` — naive in-memory dump bytes over on-disk bytes
//!   (the RLE + delta encoding must win by ≥3×);
//! * `queries_per_sec` — sustained throughput with 64 concurrent client
//!   connections issuing a backtrace/heatmap/audit mix.
//!
//! Before any timing, the cold-opened store is checked bit-for-bit
//! against the in-memory run (tables and sampled backtraces), or the
//! numbers would be lies.
//!
//! Results are folded into the `"serve"` section of `BENCH_5.json`.
//!
//! Usage: `servebench [--out FILE] [--assert]`
//!
//! `--assert` skips the report and instead runs a reduced workload,
//! exiting non-zero if store answers diverge from memory or the
//! compression ratio drops below 3× — the CI regression gate.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pebble_bench::{scale, write_json_section, DBLP_BASE};
use pebble_core::{backtrace, run_captured, Backtrace, CapturedRun, ProvTree};
use pebble_dataflow::ExecConfig;
use pebble_nested::Path;
use pebble_serve::{naive_dump_bytes, persist_file, query, ProvStore, ServeConfig, Server};
use pebble_workloads::dblp_scenarios;

const CLIENTS: usize = 64;
const QUERIES_PER_CLIENT: usize = 24;
const COLD_OPEN_ROUNDS: usize = 9;

fn store_dir() -> std::path::PathBuf {
    match std::env::var("PEBBLE_STORE_DIR") {
        Ok(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => std::env::temp_dir().join(format!("pebble-servebench-{}", std::process::id())),
    }
}

/// First DBLP scenario with a non-empty result at the given record count.
fn build_run(records: usize) -> (String, CapturedRun) {
    let ctx = pebble_workloads::dblp_context(records);
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, ExecConfig::with_partitions(2).workers(2))
            .expect("capture run failed");
        if !run.output.rows.is_empty() {
            return (s.name.to_string(), run);
        }
    }
    panic!("no DBLP scenario produced result rows at {records} records");
}

fn whole_item(run: &CapturedRun, idx: usize) -> Backtrace {
    let row = &run.output.rows[idx];
    let paths = Path::path_set(&row.item);
    Backtrace {
        entries: vec![(row.id, ProvTree::from_paths(paths.iter()))],
    }
}

/// Equality check before timing: the cold-opened store must be
/// indistinguishable from the in-memory run.
fn check_equality(run: &CapturedRun, store: &ProvStore) {
    assert_eq!(store.ops(), run.ops.as_slice(), "operator tables diverge");
    assert_eq!(store.rows(), run.output.rows.as_slice(), "rows diverge");
    assert_eq!(
        store.op_schemas(),
        run.output.op_schemas.as_slice(),
        "schemas diverge"
    );
    let n = run.output.rows.len();
    for idx in (0..n).step_by((n / 7).max(1)) {
        let mem = backtrace(run, whole_item(run, idx)).expect("memory backtrace failed");
        let stored = store
            .backtrace(whole_item(run, idx))
            .expect("store backtrace failed");
        assert_eq!(mem, stored, "backtrace of row {idx} diverges");
    }
}

struct Measured {
    scenario: String,
    rows: usize,
    persist_ms: f64,
    cold_open_ms: f64,
    on_disk_bytes: usize,
    naive_bytes: usize,
    queries: usize,
    seconds: f64,
}

fn measure(records: usize) -> Measured {
    let (scenario, run) = build_run(records);
    let dir = store_dir();
    std::fs::create_dir_all(&dir).expect("create store dir");
    let path = dir.join("servebench.seg");

    let t = Instant::now();
    let written = persist_file(&run, &path).expect("persist failed");
    let persist_ms = t.elapsed().as_secs_f64() * 1e3;

    // Median cold-open latency.
    let mut opens: Vec<f64> = (0..COLD_OPEN_ROUNDS)
        .map(|_| {
            let t = Instant::now();
            let s = ProvStore::open(&path).expect("cold open failed");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(s.on_disk_bytes(), written);
            ms
        })
        .collect();
    opens.sort_by(|a, b| a.total_cmp(b));
    let cold_open_ms = opens[COLD_OPEN_ROUNDS / 2];

    let store = Arc::new(ProvStore::open(&path).expect("cold open failed"));
    check_equality(&run, &store);
    let naive_bytes = naive_dump_bytes(&run);

    // Throughput: CLIENTS concurrent connections, each walking a
    // backtrace-heavy query mix from its own offset.
    let n = store.rows().len();
    let mut mix: Vec<String> = vec!["HEATMAP 10".into(), "AUDIT".into()];
    for idx in (0..n).step_by((n / 10).max(1)) {
        mix.push(format!("BACKTRACE {idx}"));
    }
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 8,
        debug_panic: false,
        trace_path: None,
    };
    let mut server = Server::start(Arc::clone(&store), &cfg).expect("server start failed");
    let addr = server.local_addr();

    // Warm-up: one serial pass so listener and pool are hot.
    for q in &mix {
        query(addr, q).expect("warm-up query failed");
    }

    let t = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let mix = mix.clone();
            std::thread::spawn(move || {
                for round in 0..QUERIES_PER_CLIENT {
                    let q = &mix[(client + round) % mix.len()];
                    let frames = query(addr, q).expect("bench query failed");
                    assert!(!frames.is_empty());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let seconds = t.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.panics_contained, 0);
    server.shutdown();

    if std::env::var("PEBBLE_STORE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    Measured {
        scenario,
        rows: n,
        persist_ms,
        cold_open_ms,
        on_disk_bytes: written,
        naive_bytes,
        queries: CLIENTS * QUERIES_PER_CLIENT,
        seconds,
    }
}

fn assert_mode() {
    let m = measure(DBLP_BASE);
    let ratio = m.naive_bytes as f64 / m.on_disk_bytes as f64;
    println!(
        "servebench --assert: {} ({} rows) segment {} B vs naive {} B ({ratio:.2}x), \
         cold open {:.2} ms, {:.0} queries/s at {CLIENTS} clients",
        m.scenario,
        m.rows,
        m.on_disk_bytes,
        m.naive_bytes,
        m.cold_open_ms,
        m.queries as f64 / m.seconds,
    );
    assert!(
        ratio >= 3.0,
        "segment compression below the 3x floor: {ratio:.2}x \
         ({} on disk vs {} naive)",
        m.on_disk_bytes,
        m.naive_bytes
    );
    println!("servebench --assert: ok");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_5.json");
    let mut assert_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--assert" => assert_only = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    if assert_only {
        assert_mode();
        return;
    }

    let records = DBLP_BASE * scale();
    let m = measure(records);
    let ratio = m.naive_bytes as f64 / m.on_disk_bytes as f64;
    let qps = m.queries as f64 / m.seconds;

    println!(
        "servebench — persistent store & query service, scale {}",
        scale()
    );
    println!(
        "scenario {} ({} result rows, {} dblp records)",
        m.scenario, m.rows, records
    );
    println!(
        "persist {:.2} ms, cold open {:.2} ms (median of {COLD_OPEN_ROUNDS})",
        m.persist_ms, m.cold_open_ms
    );
    println!(
        "segment {} B vs naive dump {} B — {ratio:.2}x smaller",
        m.on_disk_bytes, m.naive_bytes
    );
    println!(
        "{} queries over {CLIENTS} concurrent clients in {:.2} s — {qps:.0} queries/s",
        m.queries, m.seconds
    );

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"dblp_records\": {records},");
    let _ = writeln!(body, "  \"scenario\": \"{}\",", m.scenario);
    let _ = writeln!(body, "  \"result_rows\": {},", m.rows);
    let _ = writeln!(body, "  \"persist_ms\": {:.3},", m.persist_ms);
    let _ = writeln!(body, "  \"cold_open_ms\": {:.3},", m.cold_open_ms);
    let _ = writeln!(body, "  \"on_disk_bytes\": {},", m.on_disk_bytes);
    let _ = writeln!(body, "  \"naive_dump_bytes\": {},", m.naive_bytes);
    let _ = writeln!(body, "  \"compression_ratio\": {ratio:.3},");
    let _ = writeln!(body, "  \"clients\": {CLIENTS},");
    let _ = writeln!(body, "  \"queries\": {},", m.queries);
    let _ = writeln!(body, "  \"seconds\": {:.3},", m.seconds);
    let _ = writeln!(body, "  \"queries_per_sec\": {qps:.1}");
    body.push('}');

    write_json_section(&out_path, "serve", &body);
    eprintln!("wrote section \"serve\" to {out_path}");
}
