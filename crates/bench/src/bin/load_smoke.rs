//! Load-generator smoke gate: a closed-loop multi-tenant run against a
//! **live** server (mixed request kinds, including `WHYNOT` and local
//! engine runs), reconciled exactly against the server's `STATS`
//! accounting and the exported query spans.
//!
//! Checks, in order:
//!
//! 1. a `STATS` snapshot parses as versioned JSON with the documented
//!    shape (schema version, pool gauges, per-kind request sections);
//! 2. after a closed-loop run, the **delta** between the post- and
//!    pre-load snapshots matches the client-side [`LoadReport`] count for
//!    every server-bound request kind *exactly* — the server completed
//!    precisely the requests the clients observed, none lost, none
//!    double-counted (`finish` happens before the terminal frame is
//!    written, so a client that saw `DONE` is guaranteed counted);
//! 3. local `RUN` operations (tenant engine runs, classified `other`
//!    client-side) never reach the server;
//! 4. with tracing enabled, the exported NDJSON trace carries one
//!    `kind:"query"` span per server-bound request, each stamped with a
//!    distinct query id in `task`.
//!
//! Non-zero exit on any violation — the CI gate for the service
//! observability stack. Usage: `load_smoke`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pebble_core::run_captured;
use pebble_dataflow::ExecConfig;
use pebble_nested::{json, DataItem, Value};
use pebble_obs::RequestKind;
use pebble_serve::{persist_file, query, query_with_id, ProvStore, ServeConfig, Server};
use pebble_workloads::{dblp_context, dblp_scenarios, run_closed_loop, ClosedLoopConfig};

const DBLP_RECORDS: usize = 1_200;
const TENANTS: usize = 8;
const REQUESTS_PER_TENANT: usize = 24;

/// Server-bound request kinds the mix exercises (everything but `stats`,
/// issued out-of-band, and `other`, which stays client-local).
const SERVER_KINDS: [RequestKind; 5] = [
    RequestKind::Backtrace,
    RequestKind::Pattern,
    RequestKind::Heatmap,
    RequestKind::Audit,
    RequestKind::WhyNot,
];

fn fail(msg: &str) -> ! {
    eprintln!("load_smoke FAILED: {msg}");
    std::process::exit(1);
}

fn get<'a>(item: &'a DataItem, key: &str) -> &'a Value {
    item.get(key)
        .unwrap_or_else(|| fail(&format!("STATS document is missing key \"{key}\"")))
}

fn get_int(item: &DataItem, key: &str) -> i64 {
    get(item, key)
        .as_int()
        .unwrap_or_else(|| fail(&format!("key \"{key}\" is not an integer")))
}

fn get_obj<'a>(item: &'a DataItem, key: &str) -> &'a DataItem {
    match get(item, key) {
        Value::Item(d) => d,
        other => fail(&format!("key \"{key}\" is not an object: {other:?}")),
    }
}

/// Parses the single `DATA` frame of a `STATS` response.
fn stats_doc(addr: std::net::SocketAddr) -> DataItem {
    let frames = query(addr, "STATS").unwrap_or_else(|e| fail(&format!("STATS failed: {e}")));
    let payload = frames
        .iter()
        .find_map(|f| f.strip_prefix("DATA "))
        .unwrap_or_else(|| fail(&format!("STATS returned no DATA frame: {frames:?}")));
    match json::parse(payload) {
        Ok(Value::Item(d)) => d,
        other => fail(&format!("STATS payload is not a JSON object: {other:?}")),
    }
}

fn kind_completed(doc: &DataItem, kind: RequestKind) -> i64 {
    get_int(get_obj(get_obj(doc, "requests"), kind.name()), "completed")
}

fn kind_errors(doc: &DataItem, kind: RequestKind) -> i64 {
    get_int(get_obj(get_obj(doc, "requests"), kind.name()), "errors")
}

fn main() {
    std::env::remove_var("PEBBLE_TRACE");
    std::env::remove_var("PEBBLE_METRICS");
    pebble_obs::force_metrics(false);

    // Live run: WHYNOT needs the captured run and its source context.
    let ctx = dblp_context(DBLP_RECORDS);
    let (scenario, run) = dblp_scenarios()
        .into_iter()
        .find_map(|s| {
            let run = run_captured(&s.program, &ctx, ExecConfig::with_partitions(2).workers(2))
                .unwrap_or_else(|e| fail(&format!("capture run failed: {e}")));
            (!run.output.rows.is_empty()).then_some((s.name, run))
        })
        .unwrap_or_else(|| fail("no DBLP scenario produced result rows"));

    let dir = std::env::temp_dir().join(format!("pebble-load-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("create temp dir: {e}")));
    let seg = dir.join("smoke.seg");
    let trace_path = dir.join("smoke.trace.ndjson");
    persist_file(&run, &seg).unwrap_or_else(|e| fail(&format!("persist failed: {e}")));
    let store =
        Arc::new(ProvStore::open(&seg).unwrap_or_else(|e| fail(&format!("cold open: {e}"))));

    let label = store
        .rows()
        .first()
        .and_then(|r| r.item.fields().next())
        .map(|(l, _)| l.to_string())
        .unwrap_or_else(|| fail("store has no rows"));
    let n = store.rows().len();

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        debug_panic: false,
        trace_path: Some(trace_path.to_string_lossy().into_owned()),
    };
    let mut server = Server::start_live(Arc::clone(&store), run, ctx, &cfg)
        .unwrap_or_else(|e| fail(&format!("server start failed: {e}")));
    let addr = server.local_addr();

    // 1. Shape of a fresh snapshot.
    let s0 = stats_doc(addr);
    if get_int(&s0, "stats_version") != pebble_obs::STATS_SCHEMA_VERSION as i64 {
        fail("STATS stats_version mismatch");
    }
    if get_int(&s0, "uptime_ns") <= 0 {
        fail("STATS uptime_ns not positive");
    }
    if get_int(get_obj(&s0, "pool"), "workers") != 4 {
        fail("STATS pool.workers does not match the configured pool size");
    }
    // The snapshot is taken while the STATS request itself is in flight.
    if get_int(&s0, "in_flight") < 1 {
        fail("STATS in_flight should include the STATS request itself");
    }
    for kind in SERVER_KINDS {
        // Shape only; counts are reconciled as deltas below.
        let _ = kind_completed(&s0, kind);
    }

    // 2. Closed-loop mixed load. `RUN` executes a tenant-local engine
    // run; everything else goes to the server. Query ids must be present
    // and distinct across server-bound requests.
    let run_ctx = dblp_context(200);
    let run_prog = dblp_scenarios().remove(0).program;
    let qid_seen = AtomicU64::new(0);
    let transport = |req: &str| -> std::io::Result<Vec<String>> {
        if req == "RUN" {
            let local = run_captured(
                &run_prog,
                &run_ctx,
                ExecConfig::with_partitions(2).workers(2),
            )
            .unwrap_or_else(|e| fail(&format!("tenant engine run failed: {e}")));
            return Ok(vec![format!("DONE {}", local.output.rows.len())]);
        }
        let (qid, frames) = query_with_id(addr, req)?;
        match qid {
            Some(id) => {
                qid_seen.fetch_max(id, Ordering::Relaxed);
            }
            None => fail(&format!("response to {req:?} carried no QID frame")),
        }
        Ok(frames)
    };
    let mix: Vec<String> = vec![
        "BACKTRACE 0".into(),
        format!("BACKTRACE {}", n / 2),
        "HEATMAP 4".into(),
        "AUDIT".into(),
        format!("PATTERN //{label}"),
        format!("WHYNOT {label}=\"__load_smoke_missing__\""),
        "RUN".into(),
    ];
    let report = run_closed_loop(
        transport,
        &mix,
        &ClosedLoopConfig {
            tenants: TENANTS,
            requests_per_tenant: REQUESTS_PER_TENANT,
            think: Duration::from_micros(200),
        },
    );
    if report.transport_errors != 0 {
        fail(&format!("{} transport errors", report.transport_errors));
    }
    if report.errors != 0 {
        fail(&format!("{} ERROR frames under load", report.errors));
    }
    if report.completed != (TENANTS * REQUESTS_PER_TENANT) as u64 {
        fail(&format!(
            "closed loop completed {} of {} requests",
            report.completed,
            TENANTS * REQUESTS_PER_TENANT
        ));
    }

    // 3. Exact reconciliation: server-side deltas == client-side counts.
    let s1 = stats_doc(addr);
    let mut server_bound = 0u64;
    for kind in SERVER_KINDS {
        let delta = kind_completed(&s1, kind) - kind_completed(&s0, kind);
        let client = report.completed_for(kind);
        if delta != client as i64 {
            fail(&format!(
                "kind {}: server completed {delta}, clients observed {client}",
                kind.name()
            ));
        }
        if kind_errors(&s1, kind) - kind_errors(&s0, kind) != 0 {
            fail(&format!("kind {}: server recorded errors", kind.name()));
        }
        server_bound += client;
    }
    let other_delta =
        kind_completed(&s1, RequestKind::Other) - kind_completed(&s0, RequestKind::Other);
    if other_delta != 0 {
        fail("local RUN operations leaked to the server");
    }
    if report.completed_for(RequestKind::Other) == 0 {
        fail("mix produced no tenant-local RUN operations");
    }
    if get_int(&s1, "panics_contained") != 0 {
        fail("server contained worker panics during the smoke run");
    }

    // 4. Trace: one query span per server-bound request, distinct qids.
    server.shutdown();
    let trace =
        std::fs::read_to_string(&trace_path).unwrap_or_else(|e| fail(&format!("read trace: {e}")));
    let mut tasks: Vec<i64> = Vec::new();
    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let item = match json::parse(line) {
            Ok(Value::Item(d)) => d,
            other => fail(&format!("trace line is not a JSON object: {other:?}")),
        };
        if get(&item, "kind").as_str() == Some("query") {
            tasks.push(get_int(&item, "task"));
        }
    }
    // Both STATS probes are server requests too, hence + 2.
    let expected_spans = server_bound + 2;
    if (tasks.len() as u64) < expected_spans {
        fail(&format!(
            "trace has {} query spans, expected at least {expected_spans}",
            tasks.len()
        ));
    }
    tasks.sort_unstable();
    let before = tasks.len();
    tasks.dedup();
    if tasks.len() != before {
        fail("query ids in the trace are not distinct");
    }
    if qid_seen.load(Ordering::Relaxed) == 0 {
        fail("clients never observed a query id");
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "load_smoke: ok — scenario {scenario}, {TENANTS} tenants x {REQUESTS_PER_TENANT} requests, \
         {server_bound} server-bound ({} run ops), {} query spans, per-kind STATS deltas exact",
        report.completed_for(RequestKind::Other),
        before,
    );
}
