//! Sec. 2 — annotation-count contrast: Lipstick-style per-value
//! annotations vs Pebble's top-level identifiers, on the running example
//! (35 vs 5) and at dataset scale.

use pebble_baselines::{annotation_count, pebble_annotation_count};
use pebble_bench::scale;
use pebble_workloads::running_example;
use pebble_workloads::twitter::{generate, TwitterConfig};

fn main() {
    let example = running_example::input();
    println!("Sec. 2 — annotations needed on the running example input");
    println!(
        "  Lipstick (per nested value): {}",
        annotation_count(&example)
    );
    println!(
        "  Pebble (top-level items):    {}",
        pebble_annotation_count(&example)
    );

    let tweets = generate(&TwitterConfig::sized(2_000 * scale()));
    let lip = annotation_count(&tweets);
    let peb = pebble_annotation_count(&tweets);
    println!();
    println!("At scale ({} synthetic tweets):", tweets.len());
    println!("  Lipstick annotations: {lip}");
    println!("  Pebble annotations:   {peb}");
    println!("  ratio:                {:.1}x", lip as f64 / peb as f64);
}
