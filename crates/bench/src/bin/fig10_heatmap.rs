//! Fig. 10 — usage heatmap for 25 DBLP inproceedings items after running
//! scenarios D1–D5, with the merged provenance of all five structural
//! queries. The leftmost column counts tuple contributions; the attribute
//! columns distinguish contributing counts from influencing-only accesses
//! (rendered with an `i` suffix); `.` marks cold cells.

use pebble_bench::{exec_config, scale, DBLP_BASE};
use pebble_core::{backtrace, run_captured, Heatmap};
use pebble_workloads::{dblp_context, dblp_scenarios};

fn main() {
    let size = DBLP_BASE * scale();
    let ctx = dblp_context(size);
    let cfg = exec_config();
    let mut heatmap = Heatmap::new();
    for s in dblp_scenarios() {
        let run = run_captured(&s.program, &ctx, cfg).unwrap();
        let b = s.query.match_rows(&run.output.rows);
        for source in backtrace(&run, b).unwrap() {
            if source.source == "inproceedings" {
                heatmap.absorb(&source);
            }
        }
    }
    let attributes: Vec<String> = [
        "key",
        "type",
        "title",
        "year",
        "crossref",
        "authors",
        "pages",
        "booktitle",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("Fig. 10 — heatmap for 25 inproceedings items after D1-D5 ({size} records)");
    println!("{}", heatmap.render(25, &attributes));
    let cold = heatmap.cold_attributes(&attributes);
    println!("cold attributes (vertical partitioning candidates): {cold:?}");
    println!("cold items within the sample: {:?}", heatmap.cold_items(25));
}
