//! §7.3.4 — comparison with Titian: capture overhead for a flat-data
//! program supported by both systems.
//!
//! The paper's test program reads DBLP article and inproceedings records
//! as flat string lines, filters lines containing "2015", and unions the
//! two branches. Titian captures lineage; Pebble captures structural
//! provenance. Both run on the identical engine, so the difference is the
//! capture mechanism alone (paper: 5.89% vs 6.98% over plain Spark).

use pebble_baselines::run_lineage;
use pebble_bench::{exec_config, ms, overhead_pct, scale, DBLP_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{run, Context, Expr, NoSink, Program, ProgramBuilder};
use pebble_nested::{json, DataItem, Value};
use pebble_workloads::{dblp, DblpConfig};

/// Flattens records to single-string lines, as the paper's test reads
/// them ("reads each record as a long string value").
fn as_lines(items: &[DataItem]) -> Vec<DataItem> {
    items
        .iter()
        .map(|i| DataItem::from_fields([("line", Value::str(json::item_to_string(i)))]))
        .collect()
}

fn program() -> Program {
    let mut b = ProgramBuilder::new();
    let articles = b.read("article_lines");
    let fa = b.filter(articles, Expr::col("line").contains(Expr::lit("2015")));
    let inproc = b.read("inproceedings_lines");
    let fi = b.filter(inproc, Expr::col("line").contains(Expr::lit("2015")));
    let u = b.union(fa, fi);
    b.build(u)
}

fn main() {
    let data = dblp::generate(&DblpConfig::sized(DBLP_BASE * 20 * scale()));
    let mut ctx = Context::new();
    ctx.register("article_lines", as_lines(&data.articles));
    ctx.register("inproceedings_lines", as_lines(&data.inproceedings));
    let p = program();
    let cfg = exec_config();

    let times = pebble_bench::time_interleaved(
        9,
        &mut [
            &mut || {
                run(&p, &ctx, cfg, &NoSink).unwrap();
            },
            &mut || {
                run_lineage(&p, &ctx, cfg).unwrap();
            },
            &mut || {
                run_captured(&p, &ctx, cfg).unwrap();
            },
        ],
    );
    let (plain, titian, pebble) = (times[0], times[1], times[2]);

    println!("§7.3.4 — flat-data capture overhead (filter \"2015\" + union)");
    println!("{:<22} {:>12} {:>10}", "system", "time ms", "overhead");
    println!("{:<22} {:>12} {:>10}", "plain (Spark)", ms(plain), "-");
    println!(
        "{:<22} {:>12} {:>9.2}%",
        "Titian (lineage)",
        ms(titian),
        overhead_pct(plain, titian)
    );
    println!(
        "{:<22} {:>12} {:>9.2}%",
        "Pebble (structural)",
        ms(pebble),
        overhead_pct(plain, pebble)
    );
}
