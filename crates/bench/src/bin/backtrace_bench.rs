//! Backtrace micro-benchmark: prepared [`BacktraceIndex`] vs per-query
//! index build.
//!
//! [`backtrace`] rebuilds the per-operator hash indexes over the
//! association tables on every call; [`backtrace_with`] reuses one
//! prepared index across many questions. This bench quantifies the
//! amortization on the Twitter T3 workload: a batch of whole-item
//! backtraces for sampled output rows, answered both ways.
//!
//! Results are folded into the `"backtrace"` section of `BENCH_2.json`,
//! so the perf trajectory covers provenance *query* cost, not just
//! capture overhead.
//!
//! Usage: `backtrace_bench [--out FILE]` (default `BENCH_2.json`).

use std::fmt::Write as _;

use pebble_bench::{exec_config, scale, time_interleaved, write_json_section, TWITTER_BASE};
use pebble_core::{backtrace, backtrace_with, run_captured, Backtrace, BacktraceIndex, ProvTree};
use pebble_nested::Path;
use pebble_workloads::{twitter_context, twitter_scenarios};

const ROUNDS: usize = 9;
/// Whole-item backtrace questions per batch.
const QUERIES: usize = 32;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_2.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let ctx = twitter_context(TWITTER_BASE * scale());
    let t3 = twitter_scenarios().remove(2);
    assert_eq!(t3.name, "T3");
    let run = run_captured(&t3.program, &ctx, exec_config()).unwrap();
    let n = run.output.rows.len();
    assert!(n > 0, "T3 produced no rows");

    // Evenly spread sample of output rows; each question is the whole-item
    // provenance tree of one row (the Sec. 6 backtracing entry point).
    let questions: Vec<Backtrace> = (0..QUERIES.min(n))
        .map(|q| {
            let row = &run.output.rows[q * n / QUERIES.min(n)];
            let tree = ProvTree::from_paths(Path::path_set(&row.item).iter());
            Backtrace {
                entries: vec![(row.id, tree)],
            }
        })
        .collect();

    // The per-phase numbers come from the engine's own instrumentation:
    // with metrics forced on, `BacktraceIndex::build` and `backtrace_with`
    // record into the process-wide histograms, which we read as deltas.
    pebble_obs::force_metrics(true);
    let build_before = pebble_obs::global().backtrace_build_ns.snapshot();
    let probe_before = pebble_obs::global().backtrace_probe_ns.snapshot();

    let times = time_interleaved(
        ROUNDS,
        &mut [
            // Per-query build: every question pays a full index build.
            &mut || {
                for q in &questions {
                    std::hint::black_box(backtrace(&run, q.clone()).unwrap());
                }
            },
            // Prepared: one build amortized over the whole batch.
            &mut || {
                let index = BacktraceIndex::build(&run);
                for q in &questions {
                    std::hint::black_box(backtrace_with(&run, &index, q.clone()).unwrap());
                }
            },
        ],
    );
    let per_query_ms = times[0].as_secs_f64() * 1e3;
    let prepared_ms = times[1].as_secs_f64() * 1e3;
    let speedup = per_query_ms / prepared_ms.max(1e-9);

    let build = pebble_obs::global()
        .backtrace_build_ns
        .snapshot()
        .delta_since(&build_before);
    let probe = pebble_obs::global()
        .backtrace_probe_ns
        .snapshot()
        .delta_since(&probe_before);

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"scenario\": \"T3 whole-item backtraces\",");
    let _ = writeln!(body, "  \"queries\": {},", questions.len());
    let _ = writeln!(body, "  \"per_query_build_ms\": {per_query_ms:.3},");
    let _ = writeln!(body, "  \"prepared_index_ms\": {prepared_ms:.3},");
    let _ = writeln!(body, "  \"prepared_speedup_x\": {speedup:.2},");
    let _ = writeln!(body, "  \"index_builds\": {},", build.count);
    let _ = writeln!(
        body,
        "  \"index_build_mean_us\": {:.2},",
        build.mean() / 1e3
    );
    let _ = writeln!(body, "  \"probes\": {},", probe.count);
    let _ = writeln!(body, "  \"probe_mean_us\": {:.2},", probe.mean() / 1e3);
    let _ = writeln!(
        body,
        "  \"probe_p99_us\": {:.2}",
        probe.quantile(0.99) as f64 / 1e3
    );
    body.push('}');

    write_json_section(&out_path, "backtrace", &body);
    println!("\"backtrace\": {body}");
    eprintln!("wrote section \"backtrace\" to {out_path}");
}
