//! Backend smoke for CI: every capture backend — the three built-ins and
//! the three baseline ports — prepared over the Twitter T1 scenario and
//! the running example, answering its queries byte-identically across a
//! reduced shape matrix (p=1 / p=2 / columnar / spilled), plus the
//! `PEBBLE_BACKEND` env selection path. Exits nonzero on any violation.

use pebble_baselines::{LazyBackend, LipstickBackend, TitianBackend};
use pebble_core::{
    backend_from_env, run_for_backend, CaptureBackend, CapturedRun, SemiringBackend,
    StructuralBackend, WhyNotBackend,
};
use pebble_dataflow::{Context, ExecConfig, Program, Result};
use pebble_nested::{Path, Value};
use pebble_workloads::{running_example, scenarios, twitter_context};

fn fail(msg: &str) -> ! {
    eprintln!("backend_smoke FAILED: {msg}");
    std::process::exit(1);
}

fn backends() -> Vec<&'static dyn CaptureBackend> {
    vec![
        &StructuralBackend,
        &WhyNotBackend,
        &SemiringBackend,
        &TitianBackend,
        &LazyBackend,
        &LipstickBackend,
    ]
}

fn outcome(r: Result<Vec<String>>) -> String {
    match r {
        Ok(lines) => format!("ok:{}", lines.join("\n")),
        Err(e) => format!("err:{e}"),
    }
}

/// Queries every backend understands on this run (see the conformance
/// suite; kept identifier-free by construction).
fn queries_for(backend: &dyn CaptureBackend, baseline: &CapturedRun) -> Vec<String> {
    let mut whynot = Vec::new();
    if let Some(row) = baseline.output.rows.first() {
        for p in Path::path_set(&row.item) {
            if let Some(Value::Int(v)) = p.eval_all(&row.item).first() {
                let sp = p.to_schema_level();
                whynot.push(format!("WHYNOT {sp}={v}"));
                whynot.push(format!("WHYNOT {sp}=-987654321"));
                break;
            }
        }
    }
    if whynot.is_empty() {
        whynot.push("WHYNOT absent_attr=1".to_string());
    }
    match backend.name() {
        "structural" => vec!["BACKTRACE 0".into()],
        "whynot" => whynot,
        "semiring" => vec!["POLY 0".into(), "COUNT 0".into(), "PROB 0".into()],
        "titian" | "lazy" => vec!["TRACE 0".into()],
        "lipstick" => vec!["ANNOTATIONS".into()],
        other => fail(&format!("unknown backend `{other}`")),
    }
}

fn smoke(name: &str, program: &Program, ctx: &Context) {
    let shapes: Vec<(&str, ExecConfig)> = vec![
        ("p=2", ExecConfig::with_partitions(2)),
        ("columnar", ExecConfig::with_partitions(1).columnar(true)),
        ("spill", ExecConfig::with_partitions(1).mem_budget(1)),
    ];
    let mut answers = 0usize;
    for backend in backends() {
        let baseline = run_for_backend(program, ctx, ExecConfig::with_partitions(1), backend)
            .unwrap_or_else(|e| fail(&format!("{name}: baseline run failed: {e}")));
        let queries = queries_for(backend, &baseline);
        let prepared = backend
            .prepare(&baseline, ctx)
            .unwrap_or_else(|e| fail(&format!("{name}/{}: prepare failed: {e}", backend.name())));
        let expected: Vec<String> = queries
            .iter()
            .map(|q| outcome(prepared.answer(q)))
            .collect();
        for (q, e) in queries.iter().zip(&expected) {
            if e.contains("does not understand") {
                fail(&format!(
                    "{name}/{}: query `{q}` not understood: {e}",
                    backend.name()
                ));
            }
        }
        for (shape, config) in &shapes {
            let run = run_for_backend(program, ctx, *config, backend)
                .unwrap_or_else(|e| fail(&format!("{name}: {shape} run failed: {e}")));
            let prepared = backend
                .prepare(&run, ctx)
                .unwrap_or_else(|e| fail(&format!("{name}: prepare at {shape} failed: {e}")));
            for (q, want) in queries.iter().zip(&expected) {
                let got = outcome(prepared.answer(q));
                if &got != want {
                    fail(&format!(
                        "{name}/{}: `{q}` diverges at {shape}:\n  {got}\n  vs\n  {want}",
                        backend.name()
                    ));
                }
            }
        }
        answers += queries.len() * (1 + shapes.len());
    }
    println!("backend_smoke: {name}: {answers} answers byte-identical across shapes");
}

fn main() {
    // Env selection: default, explicit, and unknown-name fallback.
    if backend_from_env().name() != "structural" {
        fail("default backend is not `structural`");
    }
    std::env::set_var("PEBBLE_BACKEND", "semiring");
    if backend_from_env().name() != "semiring" {
        fail("PEBBLE_BACKEND=semiring not honored");
    }
    std::env::set_var("PEBBLE_BACKEND", "no-such-backend");
    if backend_from_env().name() != "structural" {
        fail("unknown PEBBLE_BACKEND must fall back to `structural`");
    }
    std::env::remove_var("PEBBLE_BACKEND");

    smoke(
        "running-example",
        &running_example::program(),
        &running_example::context(),
    );
    let ctx = twitter_context(48);
    let t1 = scenarios::t1();
    smoke("T1", &t1.program, &ctx);
    println!("backend smoke OK");
}
