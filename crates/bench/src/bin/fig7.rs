//! Fig. 7 — capture runtime overhead on the DBLP dataset (D1–D5; the
//! paper plots D3 separately because its absolute runtime dominates).

use pebble_bench::{exec_config, ms, overhead_pct, steps, DBLP_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{run, NoSink};
use pebble_workloads::{dblp_context, dblp_scenarios};

fn main() {
    let cfg = exec_config();
    println!("Fig. 7 — capture runtime overhead, DBLP scenarios");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "size", "scen.", "plain ms", "capture ms", "overhead", "+persist ms", "overhead"
    );
    for size in steps(DBLP_BASE) {
        let ctx = dblp_context(size);
        for s in dblp_scenarios() {
            let times = pebble_bench::time_interleaved(
                7,
                &mut [
                    &mut || {
                        run(&s.program, &ctx, cfg, &NoSink).unwrap();
                    },
                    &mut || {
                        run_captured(&s.program, &ctx, cfg).unwrap();
                    },
                    &mut || {
                        // Capture and persist the pebbles, as the paper's
                        // deployment does (provenance is stored for later
                        // querying; cf. Sec. 7.3.2).
                        let r = run_captured(&s.program, &ctx, cfg).unwrap();
                        std::hint::black_box(pebble_core::storage::encode(&r.ops));
                    },
                ],
            );
            let (plain, captured, persisted) = (times[0], times[1], times[2]);
            println!(
                "{:<8} {:>8} {:>12} {:>12} {:>9.0}% {:>12} {:>9.0}%",
                size,
                s.name,
                ms(plain),
                ms(captured),
                overhead_pct(plain, captured),
                ms(persisted),
                overhead_pct(plain, persisted)
            );
        }
    }
}
