//! Fig. 8 — size of collected provenance per scenario: lineage (dark bars)
//! vs the structural additions (stacked textured bars).
//!
//! Lineage bytes count the identifier association tables alone; structural
//! bytes add the flatten position columns and the schema-level path sets.

use pebble_bench::{exec_config, human_bytes, scale, DBLP_BASE, TWITTER_BASE};
use pebble_core::run_captured;
use pebble_workloads::{
    dblp_context, dblp_scenarios, twitter_context, twitter_scenarios, Scenario,
};

fn report(title: &str, scenarios: &[Scenario], ctx: &pebble_dataflow::Context) {
    println!("{title}");
    println!(
        "{:<8} {:>14} {:>16} {:>12}",
        "scen.", "lineage", "structural", "extra"
    );
    for s in scenarios {
        let run = run_captured(&s.program, ctx, exec_config()).unwrap();
        let lineage = run.lineage_bytes();
        let structural = run.structural_bytes();
        println!(
            "{:<8} {:>14} {:>16} {:>12}",
            s.name,
            human_bytes(lineage),
            human_bytes(structural),
            human_bytes(structural - lineage)
        );
    }
}

fn main() {
    // One "100 GB" step, like the paper's default experiment size.
    let t_size = TWITTER_BASE * scale();
    let d_size = DBLP_BASE * scale();
    report(
        &format!("Fig. 8(a) — provenance size, Twitter ({t_size} tweets)"),
        &twitter_scenarios(),
        &twitter_context(t_size),
    );
    println!();
    report(
        &format!("Fig. 8(b) — provenance size, DBLP ({d_size} records)"),
        &dblp_scenarios(),
        &dblp_context(d_size),
    );
}
