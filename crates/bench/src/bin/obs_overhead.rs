//! Observability overhead guard: the disabled telemetry path must be free.
//!
//! Everything in `pebble-obs` is compiled in unconditionally and gated at
//! run time, so the guarded property is that the *metrics-off* path — a
//! branch on a relaxed atomic, no allocation, no locks — adds nothing
//! measurable to the hotpath bench. Three alternatives are timed
//! interleaved on the Twitter T3 scenario:
//!
//! * `hotpath` — plain [`run`], the env-gated default (metrics off): the
//!   PR-1 hotpath bench measurement;
//! * `metrics_off` — [`run_observed`] with an explicit disabled
//!   [`ObsConfig`]: the same disabled path entered through the telemetry
//!   API;
//! * `metrics_on` — [`run_observed`] with metrics enabled, reported
//!   informationally (per-morsel timing + histograms, no tracing).
//!
//! The guard asserts `metrics_off` stays within 2% of `hotpath`; if the
//! disabled path ever grows a per-run allocation or a lock, the gap shows
//! up here. Scheduler noise only ever *inflates* the measured gap, so
//! under `--assert` the measurement is retried (up to three attempts) and
//! the guard passes if any attempt lands under the limit — a real
//! regression fails all of them. Results fold into the `"obs_overhead"`
//! section of `BENCH_3.json`.
//!
//! Usage: `obs_overhead [--out FILE] [--assert]` (default `BENCH_3.json`).

use std::fmt::Write as _;

use pebble_bench::{
    exec_config, overhead_pct, scale, time_interleaved, write_json_section, TWITTER_BASE,
};
use pebble_dataflow::{run, run_observed, NoSink, ObsConfig};
use pebble_workloads::{twitter_context, twitter_scenarios};

const ROUNDS: usize = 15;
/// Maximum tolerated metrics-off overhead over the plain hotpath, percent.
const GUARD_PCT: f64 = 2.0;
/// Measurement attempts under `--assert` before the guard is declared
/// failed; noise can only push the measured gap up, never hide a real one.
const ATTEMPTS: usize = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_3.json");
    let mut assert_guard = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--assert" => assert_guard = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    // The baseline must be the metrics-off path whatever the caller's
    // environment says: neutralize the env gates before the first run.
    std::env::remove_var("PEBBLE_TRACE");
    std::env::remove_var("PEBBLE_METRICS");
    pebble_obs::force_metrics(false);

    let ctx = twitter_context(TWITTER_BASE * scale());
    let t3 = twitter_scenarios().remove(2);
    assert_eq!(t3.name, "T3");
    let cfg = exec_config();

    let attempts = if assert_guard { ATTEMPTS } else { 1 };
    let mut times = Vec::new();
    let mut off_pct = f64::INFINITY;
    for attempt in 1..=attempts {
        times = time_interleaved(
            ROUNDS,
            &mut [
                &mut || {
                    run(&t3.program, &ctx, cfg, &NoSink).unwrap();
                },
                &mut || {
                    run_observed(&t3.program, &ctx, cfg, &NoSink, &ObsConfig::disabled())
                        .0
                        .unwrap();
                },
                &mut || {
                    run_observed(&t3.program, &ctx, cfg, &NoSink, &ObsConfig::metrics())
                        .0
                        .unwrap();
                },
            ],
        );
        off_pct = overhead_pct(times[0], times[1]);
        if off_pct < GUARD_PCT {
            break;
        }
        if attempt < attempts {
            eprintln!(
                "attempt {attempt}/{attempts}: metrics-off at {off_pct:.2}% \
                 (limit {GUARD_PCT}%), re-measuring"
            );
        }
    }
    let hotpath_ms = times[0].as_secs_f64() * 1e3;
    let off_ms = times[1].as_secs_f64() * 1e3;
    let on_ms = times[2].as_secs_f64() * 1e3;
    let on_pct = overhead_pct(times[0], times[2]);

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"scenario\": \"T3\",");
    let _ = writeln!(body, "  \"hotpath_ms\": {hotpath_ms:.3},");
    let _ = writeln!(body, "  \"metrics_off_ms\": {off_ms:.3},");
    let _ = writeln!(body, "  \"metrics_on_ms\": {on_ms:.3},");
    let _ = writeln!(body, "  \"metrics_off_pct\": {off_pct:.2},");
    let _ = writeln!(body, "  \"metrics_on_pct\": {on_pct:.2},");
    let _ = writeln!(body, "  \"guard_pct\": {GUARD_PCT:.1}");
    body.push('}');

    write_json_section(&out_path, "obs_overhead", &body);
    println!("\"obs_overhead\": {body}");
    eprintln!("wrote section \"obs_overhead\" to {out_path}");

    if assert_guard && off_pct >= GUARD_PCT {
        eprintln!(
            "overhead guard FAILED: metrics-off path adds {off_pct:.2}% \
             to the hotpath bench (limit {GUARD_PCT}%)"
        );
        std::process::exit(1);
    }
}
