//! Scheduler benchmark: morsel-driven worker pool vs the legacy
//! per-operator spawning executor.
//!
//! The scenario is a skewed fan-out pipeline in the style of Twitter T3 /
//! DBLP D3: a small fraction of source items carry a very fat nested bag,
//! so after `flatten` one partition is ~10× the others — exactly the shape
//! where per-operator spawn/join barriers leave workers idle behind the
//! fattest partition, and where skew-aware morsels keep them fed.
//!
//! Alternatives measured (interleaved, median of `ROUNDS`):
//!
//! * `spawn` — the legacy executor ([`run_spawn`]): fresh scoped threads
//!   per operator, full inter-stage barriers;
//! * `pool_w1` — the morsel scheduler, single worker (inline path);
//! * `pool_w4` — the morsel scheduler at 4 pool workers;
//! * `pool_w4_capture` — ditto with structural provenance capture, for the
//!   paper's few-percent capture-overhead envelope (Figs. 6/7).
//!
//! Results are folded into the `"scheduler"` section of `BENCH_2.json`.
//!
//! Usage: `sched [--out FILE]` (default `BENCH_2.json`).

use std::fmt::Write as _;

use pebble_bench::{overhead_pct, scale, time_interleaved, write_json_section};
use pebble_core::run_captured;
use pebble_dataflow::context::items_of;
use pebble_dataflow::{
    run, run_observed, run_spawn, AggFunc, AggSpec, Context, ExecConfig, Expr, GroupKey, NoSink,
    ObsConfig, Program, ProgramBuilder,
};
use pebble_nested::{Path, Value};

const ROUNDS: usize = 9;
/// Source items at scale 1.
const BASE_ITEMS: usize = 3_000;
/// Every `SKEW_EVERY`-th item carries a `FAT_BAG`-element bag; the rest
/// carry `i % 6` elements.
const SKEW_EVERY: usize = 101;
const FAT_BAG: usize = 256;

fn skewed_context(items: usize) -> Context {
    let mut c = Context::new();
    let rows: Vec<Vec<(&str, Value)>> = (0..items)
        .map(|i| {
            let tags = if i % SKEW_EVERY == 0 { FAT_BAG } else { i % 6 };
            vec![
                ("id", Value::Int((i % 257) as i64)),
                ("v", Value::Int(i as i64)),
                (
                    "tags",
                    Value::Bag((0..tags as i64).map(Value::Int).collect()),
                ),
            ]
        })
        .collect();
    c.register("events", items_of(rows));
    c.register(
        "dim",
        items_of(
            (0..257i64)
                .map(|i| vec![("key", Value::Int(i)), ("bucket", Value::Int(i % 16))])
                .collect(),
        ),
    );
    c
}

fn skewed_pipeline() -> Program {
    let mut b = ProgramBuilder::new();
    let r = b.read("events");
    let fl = b.flatten(r, "tags", "tag");
    let f = b.filter(fl, Expr::col("tag").ge(Expr::lit(1i64)));
    let d = b.read("dim");
    let j = b.join(f, d, vec![(Path::attr("id"), Path::attr("key"))]);
    let g = b.group_aggregate(
        j,
        vec![GroupKey::new("bucket")],
        vec![
            AggSpec::new(AggFunc::Count, "", "n"),
            AggSpec::new(AggFunc::Sum, "tag", "tag_sum"),
        ],
    );
    b.build(g)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_2.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let ctx = skewed_context(BASE_ITEMS * scale());
    let program = skewed_pipeline();
    let parts = 8;
    let spawn_cfg = ExecConfig::with_partitions(parts).workers(1);
    let w1_cfg = ExecConfig::with_partitions(parts).workers(1);
    let w4_cfg = ExecConfig::with_partitions(parts).workers(4);

    // Sanity: both executors agree bit-for-bit before we time them.
    let a = run_spawn(&program, &ctx, spawn_cfg, &NoSink).unwrap();
    let b = run(&program, &ctx, w4_cfg, &NoSink).unwrap();
    assert_eq!(a.rows, b.rows, "executors disagree; numbers would be lies");

    let times = time_interleaved(
        ROUNDS,
        &mut [
            &mut || {
                run_spawn(&program, &ctx, spawn_cfg, &NoSink).unwrap();
            },
            &mut || {
                run(&program, &ctx, w1_cfg, &NoSink).unwrap();
            },
            &mut || {
                run(&program, &ctx, w4_cfg, &NoSink).unwrap();
            },
            &mut || {
                run_captured(&program, &ctx, w4_cfg).unwrap();
            },
        ],
    );
    let (spawn_ms, w1_ms, w4_ms, w4_cap_ms) = (
        times[0].as_secs_f64() * 1e3,
        times[1].as_secs_f64() * 1e3,
        times[2].as_secs_f64() * 1e3,
        times[3].as_secs_f64() * 1e3,
    );
    let pool_win_pct = 100.0 * (spawn_ms - w4_ms) / spawn_ms;
    let capture_overhead = overhead_pct(times[2], times[3]);

    // Skew and pool-utilization facts now come from the engine's own run
    // report (one metrics-on run) instead of private bench-side counters.
    let (_, report) = run_observed(&program, &ctx, w4_cfg, &NoSink, &ObsConfig::metrics());
    let pool_stats = report.pool.clone().unwrap_or_default();

    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(body, "  \"scale\": {},", scale());
    let _ = writeln!(body, "  \"partitions\": {parts},");
    let _ = writeln!(body, "  \"scenario\": \"skewed_flatten_join_group\",");
    let _ = writeln!(body, "  \"spawn_ms\": {spawn_ms:.3},");
    let _ = writeln!(body, "  \"pool_w1_ms\": {w1_ms:.3},");
    let _ = writeln!(body, "  \"pool_w4_ms\": {w4_ms:.3},");
    let _ = writeln!(body, "  \"pool_w4_capture_ms\": {w4_cap_ms:.3},");
    let _ = writeln!(body, "  \"pool_w4_vs_spawn_pct\": {pool_win_pct:.1},");
    let _ = writeln!(body, "  \"capture_overhead_pct\": {capture_overhead:.1},");
    let _ = writeln!(body, "  \"morsels\": {},", report.morsels.executed);
    let _ = writeln!(body, "  \"morsel_skew\": {:.3},", report.morsels.skew());
    let _ = writeln!(body, "  \"pool_jobs\": {},", pool_stats.jobs);
    let _ = writeln!(
        body,
        "  \"pool_max_queue_depth\": {},",
        pool_stats.max_queue_depth
    );
    let _ = writeln!(body, "  \"pool_max_active\": {}", pool_stats.max_active);
    body.push('}');

    write_json_section(&out_path, "scheduler", &body);
    println!("\"scheduler\": {body}");
    eprintln!("wrote section \"scheduler\" to {out_path}");
}
