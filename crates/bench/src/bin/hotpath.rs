//! Hot-path harness: plain and captured execution times for the running
//! example T3 (Twitter) and the provenance-heavy D3 (DBLP) at the default
//! scale, written as JSON so before/after comparisons are reproducible.
//!
//! Usage:
//!
//! ```text
//! hotpath [--out FILE] [--baseline FILE]
//! ```
//!
//! With `--baseline`, the written report embeds the baseline numbers and
//! the relative improvement of plain execution per scenario.

use std::fmt::Write as _;

use pebble_bench::{exec_config, time_interleaved, DBLP_BASE, TWITTER_BASE};
use pebble_core::run_captured;
use pebble_dataflow::{run, run_observed, NoSink, ObsConfig};
use pebble_workloads::{dblp_context, dblp_scenarios, twitter_context, twitter_scenarios};

const ROUNDS: usize = 9;

struct Measurement {
    scenario: &'static str,
    plain_ms: f64,
    capture_ms: f64,
    /// Structural facts from the engine's own run report (one metrics-on
    /// run), replacing bench-private recounting of the workload shape.
    rows_out: u64,
    morsels: u64,
}

fn measure() -> Vec<Measurement> {
    let cfg = exec_config();
    let mut out = Vec::new();

    let tctx = twitter_context(TWITTER_BASE * pebble_bench::scale());
    let t3 = twitter_scenarios().remove(2);
    assert_eq!(t3.name, "T3");
    let times = time_interleaved(
        ROUNDS,
        &mut [
            &mut || {
                run(&t3.program, &tctx, cfg, &NoSink).unwrap();
            },
            &mut || {
                run_captured(&t3.program, &tctx, cfg).unwrap();
            },
        ],
    );
    let (_, t3_report) = run_observed(&t3.program, &tctx, cfg, &NoSink, &ObsConfig::metrics());
    out.push(Measurement {
        scenario: "T3",
        plain_ms: times[0].as_secs_f64() * 1e3,
        capture_ms: times[1].as_secs_f64() * 1e3,
        rows_out: t3_report.operators.last().map_or(0, |o| o.rows_out),
        morsels: t3_report.morsels.executed,
    });

    let dctx = dblp_context(DBLP_BASE * pebble_bench::scale());
    let d3 = dblp_scenarios().remove(2);
    assert_eq!(d3.name, "D3");
    let times = time_interleaved(
        ROUNDS,
        &mut [
            &mut || {
                run(&d3.program, &dctx, cfg, &NoSink).unwrap();
            },
            &mut || {
                run_captured(&d3.program, &dctx, cfg).unwrap();
            },
        ],
    );
    let (_, d3_report) = run_observed(&d3.program, &dctx, cfg, &NoSink, &ObsConfig::metrics());
    out.push(Measurement {
        scenario: "D3",
        plain_ms: times[0].as_secs_f64() * 1e3,
        capture_ms: times[1].as_secs_f64() * 1e3,
        rows_out: d3_report.operators.last().map_or(0, |o| o.rows_out),
        morsels: d3_report.morsels.executed,
    });

    out
}

/// Minimal reader for the flat JSON this harness writes: pulls
/// `"<scenario>": {"plain_ms": X` pairs back out by string scanning.
fn baseline_plain_ms(json: &str, scenario: &str) -> Option<f64> {
    let key = format!("\"{scenario}\"");
    let obj = &json[json.find(&key)? + key.len()..];
    let field = "\"plain_ms\":";
    let rest = &obj[obj.find(field)? + field.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_1.json");
    let mut baseline_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let baseline = baseline_path
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read {p}: {e}")));

    let results = measure();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"hotpath\",");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(
        json,
        "  \"scale\": {},",
        std::env::var("PEBBLE_SCALE").unwrap_or_else(|_| "1".into())
    );
    let _ = writeln!(json, "  \"scenarios\": {{");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let mut extra = String::new();
        if let Some(b) = baseline
            .as_deref()
            .and_then(|b| baseline_plain_ms(b, m.scenario))
        {
            let improvement = 100.0 * (b - m.plain_ms) / b;
            let _ = write!(
                extra,
                ", \"baseline_plain_ms\": {b}, \"plain_improvement_pct\": {improvement:.1}"
            );
        }
        let _ = writeln!(
            json,
            "    \"{}\": {{\"plain_ms\": {:.3}, \"capture_ms\": {:.3}, \
             \"rows_out\": {}, \"morsels\": {}{extra}}}{sep}",
            m.scenario, m.plain_ms, m.capture_ms, m.rows_out, m.morsels
        );
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
    eprintln!("wrote {out_path}");
}
